"""Recompute PBS scheme evaluations (v2 search) on all evaluated pairs."""
import sys
from repro import medium_config
from repro.experiments.common import ExperimentContext
from repro.workloads.generator import EVALUATED_PAIRS

schemes = sys.argv[1:] or ["pbs-offline-ws", "pbs-offline-fi", "pbs-offline-hs",
                           "pbs-ws", "pbs-fi", "pbs-hs"]
ctx = ExperimentContext(config=medium_config())
for names in EVALUATED_PAIRS:
    apps = ctx.pair_apps(*names)
    line = []
    for s in schemes:
        r = ctx.scheme(apps, s)
        line.append(f"{s}={r.ws:.2f}/{r.fi:.2f}")
    print(f"{'_'.join(names):10s} " + " ".join(line), flush=True)
