#!/usr/bin/env python
"""Run the repo's static invariant checker (same as ``repro lint``).

Usage: python scripts/lint.py [paths...] [--format json] [--select R001]
Defaults to linting ``src tests scripts``.  Exit code 0 means clean;
see docs/devtools.md for the rule catalog and suppression syntax.
"""

import sys
from pathlib import Path

# Allow running straight from a checkout without an editable install.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.devtools.linter import main  # noqa: E402  (path setup first)

if __name__ == "__main__":
    raise SystemExit(main())
