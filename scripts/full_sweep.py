"""Full evaluation sweep: all schemes on all 25 evaluated pairs."""
import math
import time

from repro import medium_config
from repro.experiments.common import ExperimentContext
from repro.workloads.generator import EVALUATED_PAIRS

SCHEMES = ("besttlp", "maxtlp", "dyncta", "ccws", "modbypass",
           "pbs-ws", "pbs-fi", "pbs-hs",
           "pbs-offline-ws", "pbs-offline-fi", "pbs-offline-hs",
           "bf-ws", "bf-fi", "bf-hs",
           "opt-ws", "opt-fi", "opt-hs")

def main():
    ctx = ExperimentContext(config=medium_config())
    rows = {}
    for pair_names in EVALUATED_PAIRS:
        name = "_".join(pair_names)
        apps = ctx.pair_apps(*pair_names)
        t0 = time.time()
        rows[name] = ctx.schemes(apps, SCHEMES)
        r = rows[name]
        print(f"{name:10s} ({time.time()-t0:5.1f}s) "
              f"WS: base={r['besttlp'].ws:.2f} pbs={r['pbs-ws'].ws:.2f} "
              f"off={r['pbs-offline-ws'].ws:.2f} bf={r['bf-ws'].ws:.2f} opt={r['opt-ws'].ws:.2f} | "
              f"FI: base={r['besttlp'].fi:.2f} pbs={r['pbs-fi'].fi:.2f} "
              f"bf={r['bf-fi'].fi:.2f} opt={r['opt-fi'].fi:.2f}", flush=True)
    print("\n=== normalized gmeans (vs besttlp) ===")
    for metric, attr in (("WS", "ws"), ("FI", "fi"), ("HS", "hs")):
        print(f"--- {metric} ---")
        for s in SCHEMES:
            vals = [getattr(rows[w][s], attr) / max(getattr(rows[w]["besttlp"], attr), 1e-9)
                    for w in rows]
            g = math.exp(sum(math.log(max(v, 1e-9)) for v in vals) / len(vals))
            print(f"  {s:16s} {g:.3f}")

if __name__ == "__main__":
    main()
