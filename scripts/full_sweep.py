"""Full evaluation sweep: all schemes on all 25 evaluated pairs.

Pass ``--trace`` to record the sweep (JSONL trace + Perfetto export +
manifest under ``results/traces/``); summarize it afterwards with
``python -m repro trace summarize <run-id>``.
"""
import argparse
import dataclasses
import math
import sys
import time
from pathlib import Path

from repro import medium_config
from repro.experiments.common import CACHE_FORMAT, ExperimentContext
from repro.obs import (
    MetricsRegistry,
    RunManifest,
    Tracer,
    get_metrics,
    set_metrics,
    tracing,
    write_chrome_trace,
)
from repro.workloads.generator import EVALUATED_PAIRS

SCHEMES = ("besttlp", "maxtlp", "dyncta", "ccws", "modbypass",
           "pbs-ws", "pbs-fi", "pbs-hs",
           "pbs-offline-ws", "pbs-offline-fi", "pbs-offline-hs",
           "bf-ws", "bf-fi", "bf-hs",
           "opt-ws", "opt-fi", "opt-hs")

def run_sweep(ctx):
    rows = {}
    for pair_names in EVALUATED_PAIRS:
        name = "_".join(pair_names)
        apps = ctx.pair_apps(*pair_names)
        t0 = time.time()
        rows[name] = ctx.schemes(apps, SCHEMES)
        r = rows[name]
        print(f"{name:10s} ({time.time()-t0:5.1f}s) "
              f"WS: base={r['besttlp'].ws:.2f} pbs={r['pbs-ws'].ws:.2f} "
              f"off={r['pbs-offline-ws'].ws:.2f} bf={r['bf-ws'].ws:.2f} opt={r['opt-ws'].ws:.2f} | "
              f"FI: base={r['besttlp'].fi:.2f} pbs={r['pbs-fi'].fi:.2f} "
              f"bf={r['bf-fi'].fi:.2f} opt={r['opt-fi'].fi:.2f}", flush=True)
    print("\n=== normalized gmeans (vs besttlp) ===")
    for metric, attr in (("WS", "ws"), ("FI", "fi"), ("HS", "hs")):
        print(f"--- {metric} ---")
        for s in SCHEMES:
            vals = [getattr(rows[w][s], attr) / max(getattr(rows[w]["besttlp"], attr), 1e-9)
                    for w in rows]
            g = math.exp(sum(math.log(max(v, 1e-9)) for v in vals) / len(vals))
            print(f"  {s:16s} {g:.3f}")

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--trace", action="store_true",
                        help="record a structured trace of the sweep")
    parser.add_argument("--trace-dir", default="results/traces", metavar="DIR")
    args = parser.parse_args(argv)
    config = medium_config()
    ctx = ExperimentContext(config=config, seed=args.seed)
    if not args.trace:
        run_sweep(ctx)
        return
    run_id = f"full_sweep-{time.strftime('%Y%m%d-%H%M%S')}-seed{args.seed}"
    out_dir = Path(args.trace_dir) / run_id
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest = RunManifest.start(
        run_id=run_id, command="full_sweep", argv=list(sys.argv[1:]),
        config_name="medium", config_dict=dataclasses.asdict(config),
        seed=args.seed, quick=False, n_jobs=ctx.n_jobs,
        cache_format=CACHE_FORMAT,
        repo_root=Path(__file__).resolve().parents[1],
    )
    tracer = Tracer(run_id)
    previous = set_metrics(MetricsRegistry())
    try:
        with tracing(tracer):
            run_sweep(ctx)
    finally:
        snapshot = get_metrics().snapshot()
        set_metrics(previous)
        tracer.write(out_dir / "trace.jsonl")
        write_chrome_trace(out_dir / "trace.chrome.json", tracer.events, run_id)
        manifest.finish(phases=tracer.phase_totals(), metrics=snapshot,
                        files=["trace.jsonl", "trace.chrome.json"])
        manifest.write(out_dir)
        print(f"trace written to {out_dir}", file=sys.stderr)

if __name__ == "__main__":
    main()
