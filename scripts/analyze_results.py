"""Dashboard over the results cache.

Loads every cached scheme evaluation and prints, per workload and in
aggregate, the normalized WS/FI/HS of each scheme — a quick way to
inspect the campaign without re-rendering individual figures.

Usage: python scripts/analyze_results.py [--metric ws|fi|hs]
"""

from __future__ import annotations

import argparse

from repro import medium_config
from repro.experiments.common import ExperimentContext
from repro.experiments.report import geomean, render_table
from repro.workloads.generator import EVALUATED_PAIRS

SCHEMES = ("besttlp", "maxtlp", "dyncta", "modbypass",
           "pbs-ws", "pbs-fi", "pbs-hs",
           "pbs-offline-ws", "pbs-offline-fi", "pbs-offline-hs",
           "bf-ws", "bf-fi", "bf-hs", "opt-ws", "opt-fi", "opt-hs")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metric", choices=("ws", "fi", "hs"), default="ws")
    args = parser.parse_args()

    ctx = ExperimentContext(config=medium_config())
    rows = []
    per_scheme: dict[str, list[float]] = {s: [] for s in SCHEMES}
    for names in EVALUATED_PAIRS:
        apps = ctx.pair_apps(*names)
        results = {s: ctx.scheme(apps, s) for s in SCHEMES}
        base = getattr(results["besttlp"], args.metric)
        row = ["_".join(names)]
        for s in SCHEMES:
            value = getattr(results[s], args.metric) / max(base, 1e-12)
            per_scheme[s].append(value)
            row.append(value)
        rows.append(tuple(row))
    rows.append(("Gmean",) + tuple(geomean(per_scheme[s]) for s in SCHEMES))
    print(render_table(
        ("workload",) + SCHEMES, rows,
        title=f"All schemes, normalized {args.metric.upper()} "
              f"(base: bestTLP+bestTLP)",
    ))


if __name__ == "__main__":
    main()
