#!/usr/bin/env python
"""Engine hot-path throughput benchmark -> ``BENCH_engine.json``.

Measures simulated-cycles/sec and events/sec on three representative
workloads:

* ``alone``       — one application, fixed TLP (the profiling unit);
* ``corun``       — two co-running applications, fixed combination
                    (the surface-sweep unit, the refactor's 2x target);
* ``pbs-dynamic`` — a co-run driven by the online PBS controller
                    (the long dynamic-scheme unit).

Usage::

    PYTHONPATH=src python scripts/bench_report.py                 # full run
    PYTHONPATH=src python scripts/bench_report.py --quick         # CI smoke
    PYTHONPATH=src python scripts/bench_report.py --set-baseline  # (re)record

Results are written to ``BENCH_engine.json`` at the repo root.  The
file keeps one section per mode (``full``/``quick``), each holding a
``baseline`` (recorded once, pre-refactor, via ``--set-baseline``), the
``current`` measurement, and the per-case ``speedup`` ratio of current
over baseline cycles/sec.  Ratios are only meaningful when baseline and
current were measured on the same machine.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.config import small_config  # noqa: E402
from repro.core.pbs import PBSController  # noqa: E402
from repro.core.runner import run_combo  # noqa: E402
from repro.obs.io import atomic_write_text  # noqa: E402
from repro.sim import Simulator  # noqa: E402
from repro.workloads.table4 import app_by_abbr  # noqa: E402

DEFAULT_OUT = ROOT / "BENCH_engine.json"
SCHEMA = 1

#: case name -> (apps, combo, controller factory or None)
CASES = ("alone", "corun", "pbs-dynamic")

#: simulated cycles per case, per mode
LENGTHS = {
    "full": {"alone": 200_000, "corun": 200_000, "pbs-dynamic": 200_000},
    "quick": {"alone": 30_000, "corun": 30_000, "pbs-dynamic": 40_000},
}


def _build(case: str, cycles: int):
    """(simulator, run kwargs) for one benchmark case."""
    cfg = small_config()
    if case == "alone":
        sim = Simulator(cfg, [app_by_abbr("BLK")], seed=7)
        initial = {0: 8}
    elif case == "corun":
        sim = Simulator(cfg, [app_by_abbr("BLK"), app_by_abbr("TRD")], seed=7)
        initial = {0: 8, 1: 8}
    elif case == "pbs-dynamic":
        controller = PBSController("ws", n_apps=2, sample_period=800)
        sim = Simulator(
            cfg, [app_by_abbr("BFS"), app_by_abbr("BLK")],
            controller=controller, seed=9,
        )
        initial = {0: 24, 1: 24}
    else:  # pragma: no cover - guarded by CASES
        raise ValueError(f"unknown case {case!r}")
    return sim, {"warmup": cycles // 10, "initial_tlp": initial}


def _events_processed(sim: Simulator) -> int:
    """Events executed so far: total scheduled minus still queued."""
    return sim.events._seq - len(sim.events)


def measure_case(case: str, cycles: int, repeat: int) -> dict:
    """Best-of-``repeat`` wall time for one case at ``cycles`` cycles."""
    best = None
    events = 0
    for _ in range(repeat):
        sim, kwargs = _build(case, cycles)
        t0 = time.perf_counter()
        sim.run(cycles, **kwargs)
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
            events = _events_processed(sim)
    return {
        "cycles": cycles,
        "events": events,
        "wall_s": round(best, 6),
        "cycles_per_sec": round(cycles / best, 1),
        "events_per_sec": round(events / best, 1),
    }


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or None
    except OSError:
        return None


def run_mode(mode: str, repeat: int) -> dict:
    cases = {}
    for case in CASES:
        cycles = LENGTHS[mode][case]
        cases[case] = measure_case(case, cycles, repeat)
        print(
            f"{mode:5s} {case:12s} {cases[case]['cycles_per_sec']:>12,.0f} cyc/s"
            f" {cases[case]['events_per_sec']:>12,.0f} ev/s"
        )
    return {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git": _git_rev(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": cases,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short runs (CI smoke); records the 'quick' mode")
    parser.add_argument("--set-baseline", action="store_true",
                        help="record this measurement as the mode's baseline")
    parser.add_argument("--repeat", type=int, default=None,
                        help="best-of repetitions (default: 3 full, 2 quick)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT.name})")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeat = args.repeat if args.repeat is not None else (2 if args.quick else 3)

    report = {"schema": SCHEMA, "modes": {}}
    if args.out.exists():
        try:
            report = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} unreadable, starting fresh", file=sys.stderr)
    report.setdefault("schema", SCHEMA)
    modes = report.setdefault("modes", {})
    section = modes.setdefault(mode, {})

    measured = run_mode(mode, repeat)
    if args.set_baseline or "baseline" not in section:
        section["baseline"] = measured
    section["current"] = measured
    baseline_cases = section["baseline"]["cases"]
    section["speedup"] = {
        case: round(
            measured["cases"][case]["cycles_per_sec"]
            / baseline_cases[case]["cycles_per_sec"],
            3,
        )
        for case in CASES
        if case in baseline_cases
    }

    atomic_write_text(args.out, json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    for case, ratio in section["speedup"].items():
        print(f"  speedup[{mode}/{case}] = {ratio:.3f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
