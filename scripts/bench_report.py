#!/usr/bin/env python
"""Engine hot-path throughput benchmark -> ``BENCH_engine.json``.

Measures simulated-cycles/sec and events/sec on three representative
workloads:

* ``alone``       — one application, fixed TLP (the profiling unit);
* ``corun``       — two co-running applications, fixed combination
                    (the surface-sweep unit, the refactor's 2x target);
* ``pbs-dynamic`` — a co-run driven by the online PBS controller
                    (the long dynamic-scheme unit).

Usage::

    PYTHONPATH=src python scripts/bench_report.py                 # full run
    PYTHONPATH=src python scripts/bench_report.py --quick         # CI smoke
    PYTHONPATH=src python scripts/bench_report.py --set-baseline  # (re)record

Results are written to ``BENCH_engine.json`` at the repo root.  The
file keeps one section per mode (``full``/``quick``), each holding a
``baseline`` (recorded once, pre-refactor, via ``--set-baseline``), the
``current`` measurement, and the per-case ``speedup`` ratio of current
over baseline cycles/sec.  Ratios are only meaningful when baseline and
current were measured on the same machine.

Every run is additionally appended to ``results/bench_history.jsonl``
(one record per mode, schema-stamped); ``repro bench history`` renders
the trend against the committed baseline.  ``--no-history`` skips the
append for throwaway measurements.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.config import small_config  # noqa: E402
from repro.core.pbs import PBSController  # noqa: E402
from repro.core.runner import run_combo  # noqa: E402
from repro.obs.bench import append_bench_history  # noqa: E402
from repro.obs.io import atomic_write_text  # noqa: E402
from repro.sim import Simulator  # noqa: E402
from repro.workloads.table4 import app_by_abbr  # noqa: E402

DEFAULT_OUT = ROOT / "BENCH_engine.json"
DEFAULT_HISTORY = ROOT / "results" / "bench_history.jsonl"
SCHEMA = 1

#: case name -> (apps, combo, controller factory or None)
CASES = ("alone", "corun", "pbs-dynamic")

#: simulated cycles per case, per mode
LENGTHS = {
    "full": {"alone": 200_000, "corun": 200_000, "pbs-dynamic": 200_000},
    "quick": {"alone": 30_000, "corun": 30_000, "pbs-dynamic": 40_000},
}


def _build(case: str, cycles: int):
    """(simulator, run kwargs) for one benchmark case."""
    cfg = small_config()
    if case == "alone":
        sim = Simulator(cfg, [app_by_abbr("BLK")], seed=7)
        initial = {0: 8}
    elif case == "corun":
        sim = Simulator(cfg, [app_by_abbr("BLK"), app_by_abbr("TRD")], seed=7)
        initial = {0: 8, 1: 8}
    elif case == "pbs-dynamic":
        controller = PBSController("ws", n_apps=2, sample_period=800)
        sim = Simulator(
            cfg, [app_by_abbr("BFS"), app_by_abbr("BLK")],
            controller=controller, seed=9,
        )
        initial = {0: 24, 1: 24}
    else:  # pragma: no cover - guarded by CASES
        raise ValueError(f"unknown case {case!r}")
    return sim, {"warmup": cycles // 10, "initial_tlp": initial}


def _events_processed(sim: Simulator) -> int:
    """Events executed so far: total scheduled minus still queued."""
    return sim.events._seq - len(sim.events)


def measure_case(case: str, cycles: int, repeat: int) -> dict:
    """Best-of-``repeat`` wall time for one case at ``cycles`` cycles."""
    best = None
    events = 0
    for _ in range(repeat):
        sim, kwargs = _build(case, cycles)
        t0 = time.perf_counter()
        sim.run(cycles, **kwargs)
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
            events = _events_processed(sim)
    return {
        "cycles": cycles,
        "events": events,
        "wall_s": round(best, 6),
        "cycles_per_sec": round(cycles / best, 1),
        "events_per_sec": round(events / best, 1),
    }


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or None
    except OSError:
        return None


def run_mode(mode: str, repeat: int) -> dict:
    cases = {}
    for case in CASES:
        cycles = LENGTHS[mode][case]
        cases[case] = measure_case(case, cycles, repeat)
        print(
            f"{mode:5s} {case:12s} {cases[case]['cycles_per_sec']:>12,.0f} cyc/s"
            f" {cases[case]['events_per_sec']:>12,.0f} ev/s"
        )
    return {
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git": _git_rev(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cases": cases,
    }


def _baseline_conflicts(
    modes: dict, mode: str, measured: dict
) -> list[tuple[str, list[str]]]:
    """Cross-mode provenance conflicts for recording ``measured`` as the
    ``mode`` baseline: ``(other_mode, [difference, ...])`` for every other
    mode whose baseline was taken at a different git revision or on a
    different machine/interpreter."""
    conflicts: list[tuple[str, list[str]]] = []
    for other_mode, other in sorted(modes.items()):
        if other_mode == mode or not isinstance(other, dict):
            continue
        base = other.get("baseline")
        if not isinstance(base, dict):
            continue
        diffs = [
            f"{key}: baseline {base.get(key)!r} vs this run "
            f"{measured.get(key)!r}"
            for key in ("git", "machine", "python")
            if base.get(key) is not None
            and base.get(key) != measured.get(key)
        ]
        if diffs:
            conflicts.append((other_mode, diffs))
    return conflicts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short runs (CI smoke); records the 'quick' mode")
    parser.add_argument("--set-baseline", action="store_true",
                        help="record this measurement as the mode's baseline")
    parser.add_argument("--force", action="store_true",
                        help="with --set-baseline: record even when another "
                             "mode's baseline has conflicting git/machine "
                             "provenance")
    parser.add_argument("--repeat", type=int, default=None,
                        help="best-of repetitions (default: 3 full, 2 quick)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT.name})")
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY,
                        help="perf-history ledger to append to "
                             f"(default {DEFAULT_HISTORY.relative_to(ROOT)})")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the bench_history.jsonl append")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    repeat = args.repeat if args.repeat is not None else (2 if args.quick else 3)

    report = {"schema": SCHEMA, "modes": {}}
    if args.out.exists():
        try:
            report = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {args.out} unreadable, starting fresh", file=sys.stderr)
    report.setdefault("schema", SCHEMA)
    modes = report.setdefault("modes", {})
    section = modes.setdefault(mode, {})

    measured = run_mode(mode, repeat)
    if args.set_baseline and not args.force:
        # Ratios are only meaningful same-machine (see module docstring),
        # and the modes are compared side by side: a --quick baseline
        # recorded on a different machine or commit than the full-mode
        # one silently corrupts the file's provenance story.  Refuse
        # cross-mode conflicts; re-recording the *same* mode's baseline
        # is always an explicit act and stays allowed.
        conflicts = _baseline_conflicts(modes, mode, measured)
        if conflicts:
            for other_mode, diffs in conflicts:
                print(
                    f"refusing --set-baseline: the existing {other_mode!r} "
                    f"baseline's provenance disagrees with this {mode!r} run:",
                    file=sys.stderr,
                )
                for diff in diffs:
                    print(f"  {diff}", file=sys.stderr)
            print(
                "re-record that baseline on this machine/commit first, or "
                "pass --force to record the conflict anyway.",
                file=sys.stderr,
            )
            return 2
    if args.set_baseline or "baseline" not in section:
        section["baseline"] = measured
    section["current"] = measured
    baseline_cases = section["baseline"]["cases"]
    section["speedup"] = {
        case: round(
            measured["cases"][case]["cycles_per_sec"]
            / baseline_cases[case]["cycles_per_sec"],
            3,
        )
        for case in CASES
        if case in baseline_cases
    }

    atomic_write_text(args.out, json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")
    for case, ratio in section["speedup"].items():
        print(f"  speedup[{mode}/{case}] = {ratio:.3f}x")

    if not args.no_history:
        append_bench_history(
            args.history, {"mode": mode, **measured, "speedup": section["speedup"]}
        )
        print(f"appended {mode!r} run to {args.history}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
