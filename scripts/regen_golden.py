#!/usr/bin/env python
"""Regenerate (or verify) the golden-equivalence fixtures.

Usage::

    PYTHONPATH=src python scripts/regen_golden.py            # rewrite all
    PYTHONPATH=src python scripts/regen_golden.py --check    # verify only
    PYTHONPATH=src python scripts/regen_golden.py --only corun-blk-trd ...

The fixtures under ``tests/golden/`` pin the simulator's exact output —
samples, window log, TLP timeline, DRAM utilization — for the case
matrix in ``tests/golden_cases.py``.  Rewrite them only when a semantic
engine change is intended; performance refactors must reproduce the
existing fixtures bit-for-bit (see ``tests/test_golden_equivalence.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))  # makes the `tests` package importable

from repro.obs.io import atomic_write_text  # noqa: E402

from tests.golden_cases import (  # noqa: E402
    CASES,
    GOLDEN_DIR,
    case_payload,
    fixture_path,
    result_payload,
    run_case,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="restrict to these case names (default: all)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify fixtures against a fresh run instead of rewriting",
    )
    args = parser.parse_args(argv)

    names = {c.name for c in CASES}
    if args.only:
        unknown = sorted(set(args.only) - names)
        if unknown:
            parser.error(f"unknown case names: {', '.join(unknown)}")
    selected = [c for c in CASES if args.only is None or c.name in args.only]

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    failures = []
    for case in selected:
        path = fixture_path(case)
        payload = {"case": case_payload(case), "result": result_payload(run_case(case))}
        if args.check:
            if not path.exists():
                failures.append(f"{case.name}: fixture missing ({path})")
                print(f"MISSING  {case.name}")
                continue
            recorded = json.loads(path.read_text())
            ok = recorded.get("result") == payload["result"]
            print(f"{'ok      ' if ok else 'MISMATCH'} {case.name}")
            if not ok:
                failures.append(f"{case.name}: result diverges from fixture")
        else:
            atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True))
            print(f"wrote    {path.relative_to(ROOT)}")
    if failures:
        print("\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
