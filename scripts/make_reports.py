"""Regenerate every figure/table report into results/reports/.

Usage: python scripts/make_reports.py
Relies on the disk cache in results/; cold runs simulate everything.
"""
from pathlib import Path

from repro import medium_config, paper_config
from repro.experiments.common import ExperimentContext, atomic_write_text
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.fig9 import run_fig9, run_fig10, run_hs
from repro.experiments.fig11 import run_fig11
from repro.experiments.table4 import run_table4

OUT = Path(__file__).resolve().parents[1] / "results" / "reports"


def main() -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    ctx = ExperimentContext(config=medium_config())
    jobs = [
        ("fig01_motivation", lambda: run_fig1(ctx).render()),
        ("fig02_tlp_effects", lambda: run_fig2(ctx).render()),
        ("fig03_eb_hierarchy", lambda: run_fig3(ctx).render()),
        ("table4_appchar", lambda: run_table4(ctx).render()),
        ("fig04_resource_split", lambda: run_fig4(ctx).render()),
        ("fig05_alone_ratios", lambda: run_fig5(ctx).render()),
        ("fig06_patterns", lambda: run_fig6(ctx).render()),
        ("fig07_pbs_fi_hs", lambda: run_fig7(ctx).render()),
        ("fig08_overheads", lambda: run_fig8(paper_config()).render()),
        ("fig09_ws", lambda: run_fig9(ctx).render()),
        ("fig10_fi", lambda: run_fig10(ctx).render()),
        ("hs_comparison", lambda: run_hs(ctx).render()),
        ("fig11_tlp_timeline", lambda: (
            run_fig11(ctx, ("BLK", "BFS"), "pbs-ws").render()
            + "\n\n" + run_fig11(ctx, ("BLK", "BFS"), "pbs-fi").render()
        )),
    ]
    for name, job in jobs:
        text = job()
        atomic_write_text(OUT / f"{name}.txt", text + "\n")
        print(f"=== {name} ===")
        print(text)
        print()


if __name__ == "__main__":
    main()
