#!/usr/bin/env python
"""Quickstart: co-schedule two GPGPU applications and let PBS manage TLP.

Runs the paper's BLK_TRD workload three ways — each application at its
alone-best TLP (the baseline), at maximum TLP, and under the online
PBS-WS controller — and reports system throughput (WS), fairness (FI),
and per-application effective bandwidth.

Usage:
    python examples/quickstart.py [APP_A APP_B]
"""

import sys

from repro import (
    RunLengths,
    evaluate_scheme,
    medium_config,
    pair,
    profile_alone,
    workload_name,
)


def main(argv: list[str]) -> None:
    names = (argv[1], argv[2]) if len(argv) >= 3 else ("BLK", "TRD")
    config = medium_config()
    apps = list(pair(*names))
    lengths = RunLengths()

    print(f"Profiling {names[0]} and {names[1]} alone to find bestTLP...")
    alone = [
        profile_alone(config, app, config.n_cores // 2, lengths=lengths)
        for app in apps
    ]
    for profile in alone:
        print(
            f"  {profile.abbr}: bestTLP={profile.best_tlp}, "
            f"alone IPC={profile.ipc_alone:.3f}, alone EB={profile.eb_alone:.3f}"
        )

    print(f"\nCo-scheduling {workload_name(names)} "
          f"on a {config.n_cores}-core GPU:")
    header = f"{'scheme':>10s} {'TLP combo':>12s} {'WS':>6s} {'FI':>6s} " \
             f"{'EB-1':>6s} {'EB-2':>6s}"
    print(header)
    print("-" * len(header))
    for scheme in ("besttlp", "maxtlp", "pbs-ws"):
        result = evaluate_scheme(config, apps, scheme, alone, lengths=lengths)
        print(
            f"{scheme:>10s} {str(result.combo):>12s} {result.ws:6.3f} "
            f"{result.fi:6.3f} {result.ebs[0]:6.3f} {result.ebs[1]:6.3f}"
        )

    print(
        "\nPBS finds the TLP combination that maximizes total effective "
        "bandwidth,\nrecovering throughput the bestTLP combination leaves "
        "on the table."
    )


if __name__ == "__main__":
    main(sys.argv)
