#!/usr/bin/env python
"""Bring your own workload: define a custom application profile.

An :class:`repro.AppProfile` is a memory-system signature — memory
intensity, coalescing, footprint, temporal/spatial locality, inter-warp
sharing.  This example builds a synthetic "graph analytics" kernel that
is not in the Table IV zoo, characterizes it alone, and co-schedules it
against BLK under PBS-WS.

Usage:
    python examples/custom_app.py
"""

from repro import (
    AppProfile,
    RunLengths,
    app_by_abbr,
    evaluate_scheme,
    medium_config,
    profile_alone,
)


def main() -> None:
    # A divergent, cache-sensitive kernel: each memory instruction touches
    # several irregular lines; half of its accesses revisit a small hot
    # set, and a fifth land in a graph-wide shared region.
    graph = AppProfile(
        abbr="GRPH",
        name="custom graph analytics kernel",
        r_m=0.30,
        coalesce=4,
        divergent=True,
        footprint_lines=16,
        p_reuse=0.50,
        p_seq=0.05,
        shared_frac=0.20,
        shared_lines=2048,
    )
    config = medium_config()
    lengths = RunLengths()

    profile = profile_alone(config, graph, config.n_cores // 2,
                            lengths=lengths)
    print(f"{graph.abbr} alone: bestTLP={profile.best_tlp}, "
          f"IPC={profile.ipc_alone:.3f}, EB={profile.eb_alone:.3f}")
    print("TLP sweep (alone):")
    for level in sorted(profile.sweep):
        s = profile.sweep[level]
        marker = " <- bestTLP" if level == profile.best_tlp else ""
        print(f"  TLP={level:2d}: IPC={s.ipc:.3f} EB={s.eb:.3f} "
              f"CMR={s.cmr:.3f}{marker}")

    blk = app_by_abbr("BLK")
    apps = [graph, blk]
    alone = [profile,
             profile_alone(config, blk, config.n_cores // 2, lengths=lengths)]
    print(f"\nCo-scheduling {graph.abbr} with BLK:")
    for scheme in ("besttlp", "pbs-ws"):
        r = evaluate_scheme(config, apps, scheme, alone, lengths=lengths)
        print(f"  {scheme:>8s}: combo={r.combo} WS={r.ws:.3f} FI={r.fi:.3f}")


if __name__ == "__main__":
    main()
