#!/usr/bin/env python
"""Sweep a single application's TLP and watch IPC, BW, CMR and EB move.

Reproduces the Figure 2 analysis for any application in the Table IV
zoo: with rising TLP, attained bandwidth and IPC climb while memory
latency is being hidden, then the combined miss rate catches up and
effective bandwidth — which tracks IPC — rolls over at the inflection
point.  That inflection is what pattern-based searching exploits.

Usage:
    python examples/tlp_sweep.py [APP] [APP...]
"""

import sys

from repro import Simulator, app_by_abbr, medium_config


def sweep(abbr: str) -> None:
    config = medium_config()
    app = app_by_abbr(abbr)
    print(f"\n=== {app.abbr}: {app.name} ===")
    print(f"r_m={app.r_m} coalesce={app.coalesce} divergent={app.divergent} "
          f"reuse={app.p_reuse} seq={app.p_seq}")
    header = (f"{'TLP':>4s} {'IPC':>8s} {'BW':>7s} {'L1MR':>6s} {'L2MR':>6s} "
              f"{'CMR':>6s} {'EB':>7s} {'mem lat':>8s} {'row hits':>8s}")
    print(header)
    print("-" * len(header))
    best_tlp, best_ipc = None, -1.0
    for tlp in config.tlp_levels:
        sim = Simulator(config, [app], core_split=(config.n_cores // 2,))
        result = sim.run(30_000, warmup=6_000, initial_tlp={0: tlp})
        s = result.samples[0]
        if s.ipc > best_ipc:
            best_tlp, best_ipc = tlp, s.ipc
        print(
            f"{tlp:4d} {s.ipc:8.3f} {s.bw:7.3f} {s.l1_miss_rate:6.3f} "
            f"{s.l2_miss_rate:6.3f} {s.cmr:6.3f} {s.eb:7.3f} "
            f"{s.avg_mem_latency:8.1f} {s.row_hit_rate:8.2f}"
        )
    print(f"bestTLP({app.abbr}) = {best_tlp} (IPC {best_ipc:.3f})")


def main(argv: list[str]) -> None:
    targets = argv[1:] or ["BFS", "BLK"]
    for abbr in targets:
        sweep(abbr)


if __name__ == "__main__":
    main(sys.argv)
