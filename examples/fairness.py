#!/usr/bin/env python
"""Fairness case study: when one application monopolizes the memory system.

Co-schedules a cache-friendly application (JPEG by default) with a
bandwidth hog (TRD) and compares the bestTLP baseline, the online PBS-FI
controller, and the optFI oracle.  PBS-FI balances the two applications'
*scaled* effective bandwidths — it estimates each application's alone-EB
by sampling with the co-runner throttled to TLP=1, then searches for the
TLP combination that equalizes EB_i / aloneEB_i.

Usage:
    python examples/fairness.py [APP_A APP_B]
"""

import sys

from repro import (
    RunLengths,
    evaluate_scheme,
    medium_config,
    pair,
    profile_alone,
    profile_surface,
    workload_name,
)


def main(argv: list[str]) -> None:
    names = (argv[1], argv[2]) if len(argv) >= 3 else ("JPEG", "TRD")
    config = medium_config()
    apps = list(pair(*names))
    lengths = RunLengths()

    alone = [
        profile_alone(config, app, config.n_cores // 2, lengths=lengths)
        for app in apps
    ]
    print(f"Workload {workload_name(names)}; alone bestTLPs: "
          + ", ".join(f"{p.abbr}={p.best_tlp}" for p in alone))

    print("Profiling the 64-combination surface for the oracle...")
    surface = profile_surface(config, apps, lengths=lengths)

    header = (f"{'scheme':>10s} {'combo':>10s} {'FI':>6s} {'WS':>6s} "
              f"{'SD-' + names[0]:>8s} {'SD-' + names[1]:>8s}")
    print(header)
    print("-" * len(header))
    for scheme in ("besttlp", "pbs-fi", "opt-fi"):
        r = evaluate_scheme(config, apps, scheme, alone, surface,
                            lengths=lengths)
        print(f"{scheme:>10s} {str(r.combo):>10s} {r.fi:6.3f} {r.ws:6.3f} "
              f"{r.sds[0]:8.3f} {r.sds[1]:8.3f}")

    print(
        "\nAn FI of 1.0 means both applications suffer equally; the "
        "baseline lets\nthe bandwidth hog starve its neighbour, and PBS-FI "
        "closes most of the gap\nto the exhaustive-search oracle with a "
        "handful of runtime samples."
    )


if __name__ == "__main__":
    main(sys.argv)
