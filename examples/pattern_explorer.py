#!/usr/bin/env python
"""Explore the EB-WS patterns that make pattern-based searching work.

Prints the full 8x8 EB-WS surface for a two-application workload and
marks, for each iso-co-runner-TLP row, where the inflection point of the
other application sits.  The paper's observation (§V): those inflection
points line up in a column — they do not move when the co-runner's TLP
changes — so PBS can locate them with a single probe sweep instead of an
exhaustive search.

Usage:
    python examples/pattern_explorer.py [APP_A APP_B]
"""

import sys

from repro import (
    TLP_LEVELS,
    RunLengths,
    medium_config,
    pair,
    profile_surface,
    workload_name,
)
from repro.experiments.fig6 import inflection_level


def main(argv: list[str]) -> None:
    names = (argv[1], argv[2]) if len(argv) >= 3 else ("BLK", "TRD")
    config = medium_config()
    apps = list(pair(*names))

    print(f"Profiling all {len(TLP_LEVELS)**2} TLP combinations of "
          f"{workload_name(names)}...")
    surface = profile_surface(config, apps, lengths=RunLengths())

    levels = list(TLP_LEVELS)
    print(f"\nEB-WS surface (rows: TLP-{names[1]}, cols: TLP-{names[0]}); "
          f"* marks the row's inflection point of {names[0]}")
    print(f"{'':>12s}" + "".join(f"{lv:>8d}" for lv in levels))
    for co in levels:
        series = [
            surface[(lv, co)].samples[0].eb + surface[(lv, co)].samples[1].eb
            for lv in levels
        ]
        inflection = inflection_level(levels, series)
        cells = "".join(
            f"{v:>7.3f}{'*' if lv == inflection else ' '}"
            for lv, v in zip(levels, series)
        )
        print(f"TLP-{names[1]}={co:>3d} {cells}")

    inflections = [
        inflection_level(
            levels,
            [surface[(lv, co)].samples[0].eb + surface[(lv, co)].samples[1].eb
             for lv in levels],
        )
        for co in levels
    ]
    mode = max(set(inflections), key=inflections.count)
    consistency = inflections.count(mode) / len(inflections)
    print(
        f"\nInflection of {names[0]} sits at TLP={mode} in "
        f"{consistency:.0%} of the iso-TLP rows — this consistency is the "
        f"'pattern' PBS exploits."
    )


if __name__ == "__main__":
    main(sys.argv)
