#!/usr/bin/env python
"""Record an address trace, save it, and replay it in the simulator.

Traces decouple workload generation from simulation: record once from
the synthetic models (or convert your own captures into the same JSON
format — one (instruction-gap, [line addresses]) pair per request per
warp), then replay deterministically, co-scheduled against anything.

Usage:
    python examples/trace_replay.py [APP] [trace.json]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    Simulator,
    Trace,
    TraceProfile,
    app_by_abbr,
    medium_config,
    record_trace,
)


def main(argv: list[str]) -> None:
    abbr = argv[1] if len(argv) > 1 else "BFS"
    config = medium_config()
    profile = app_by_abbr(abbr)

    print(f"Recording {abbr}: 512 requests per warp on "
          f"{config.n_cores // 2} cores...")
    trace = record_trace(
        profile, config, n_cores=config.n_cores // 2, requests_per_warp=512
    )
    path = Path(argv[2]) if len(argv) > 2 else (
        Path(tempfile.gettempdir()) / f"{abbr.lower()}.trace.json"
    )
    trace.save(path)
    print(f"  {len(trace)} requests -> {path} "
          f"({path.stat().st_size / 1024:.0f} KiB)")

    reloaded = Trace.load(path)
    print(f"Replaying {reloaded.abbr} against TRD at TLP (8, 8)...")
    sim = Simulator(config, [TraceProfile(reloaded), app_by_abbr("TRD")])
    result = sim.run(40_000, warmup=8_000, initial_tlp={0: 8, 1: 8})
    for app, label in ((0, f"{abbr} (replayed)"), (1, "TRD (live)")):
        s = result.samples[app]
        print(f"  {label}: IPC={s.ipc:.3f} BW={s.bw:.3f} "
              f"CMR={s.cmr:.3f} EB={s.eb:.3f}")

    print("\nReplays are bit-for-bit deterministic; the same trace file "
          "reproduces\nthe same interference, which makes traces handy "
          "as golden regression inputs.")


if __name__ == "__main__":
    main(sys.argv)
