#!/usr/bin/env python
"""Phase changes and PBS adaptivity.

Builds an application that alternates between a streaming (BLK-like)
phase and a cache-sensitive (BFS-like) phase, co-schedules it with TRD,
and runs the online PBS-WS controller.  When the phase flips, the EB the
settled combination delivers collapses; the controller's drift detector
notices and re-runs the pattern search — the behaviour behind the
mid-run TLP changes in the paper's Figure 11.

Usage:
    python examples/phased_workload.py
"""

from repro import Simulator, app_by_abbr, medium_config
from repro.core.pbs import PBSController
from repro.workloads.phases import PhasedProfile


def main() -> None:
    config = medium_config()
    phased = PhasedProfile(
        abbr="PHZ",
        phases=(app_by_abbr("BLK"), app_by_abbr("BFS")),
        iterations_per_phase=800,
    )
    controller = PBSController("ws", n_apps=2, sample_period=3000)
    sim = Simulator(config, [phased, app_by_abbr("TRD")],
                    controller=controller, seed=7)
    result = sim.run(1_200_000, warmup=40_000,
                     initial_tlp={0: 24, 1: 24})

    print(f"searches run: {controller.search_count} "
          f"(1 initial + {controller.search_count - 1} drift-triggered)")
    print(f"TLP actuations: {len(result.tlp_timeline)}")
    print("\nlast ten TLP changes (cycle, app, new TLP):")
    for entry in result.tlp_timeline[-10:]:
        print(f"  {entry}")
    print(f"\nfinal combination: {result.final_tlp}")
    for app, label in ((0, phased.name), (1, "TRD")):
        s = result.samples[app]
        print(f"  app{app} ({label}): IPC={s.ipc:.3f} EB={s.eb:.3f}")


if __name__ == "__main__":
    main()
