"""Unit and clock-domain annotation vocabulary for the quantity algebra.

The paper's arithmetic lives in a handful of physical dimensions — sim
cycles, DRAM lines, bytes, instructions, host wall-clock time — and the
headline quantities are ratios of them: IPC (inst/cycle), attained
bandwidth as a *fraction of peak* (dimensionless), CMR (dimensionless),
EB = BW/CMR.  A single mixed-unit expression (cycles added to wall
seconds, a fraction-of-peak compared against absolute lines-per-cycle)
silently corrupts fidelity in a way no golden fixture pinpoints.

These aliases are ``typing.Annotated`` wrappers: at runtime they are
*exactly* ``float``/``int`` (zero cost — every annotated module also has
``from __future__ import annotations``, so the annotations are never
even evaluated), but the static checker in
:mod:`repro.devtools.semantic.units` recognizes them by name and
propagates them flow-sensitively through the tree.  Rules R012
(unit-confusion) and R013 (clock-domain separation) consume the result;
see ``docs/devtools.md`` for the annotation guide.

Compound units are derived, not declared: ``Lines / Cycles`` is
lines-per-cycle, ``Lines * BytesPerLine`` is bytes, ``Insts / Cycles``
is IPC.  Add a new base dimension here *and* in the checker's
``_BASE_DIMS`` table; add compound aliases freely (they are recognized
by their dimension formula).
"""

from __future__ import annotations

from typing import Annotated

__all__ = [
    "Bytes",
    "BytesPerCycle",
    "BytesPerLine",
    "Count",
    "Cycles",
    "Fraction",
    "FractionOfPeak",
    "Insts",
    "InstsPerCycle",
    "Ipc",
    "Lines",
    "LinesPerCycle",
    "TraceTicks",
    "WallMicroseconds",
    "WallSeconds",
    "WholeCycles",
]

# --- clock domains ----------------------------------------------------------

#: Simulated time, in cycles of the (single) simulator clock domain.
Cycles = Annotated[float, "unit:cycle"]

#: Same dimension as :data:`Cycles` for integer-valued quantities
#: (cycle budgets, warmup boundaries).
WholeCycles = Annotated[int, "unit:cycle"]

#: Host wall-clock time in seconds (``time.perf_counter`` deltas).
WallSeconds = Annotated[float, "unit:wall"]

#: Host wall-clock time in microseconds (the tracer's native scale).
#: Scale is *not* tracked — the checker treats seconds and microseconds
#: as the same wall dimension; the distinction documents intent.
WallMicroseconds = Annotated[float, "unit:wall"]

#: A trace event timestamp whose clock is named by ``Event.clock`` —
#: wall microseconds *or* sim cycles depending on the event.  Its own
#: dimension: mixing raw ticks with either clock is flagged until the
#: event's clock has been inspected.
TraceTicks = Annotated[float, "unit:tick"]

# --- counts ------------------------------------------------------------------

#: Bytes (sizes and byte addresses).
Bytes = Annotated[int, "unit:byte"]

#: Cache/DRAM lines (line counts and line addresses).
Lines = Annotated[int, "unit:line"]

#: Executed instructions.
Insts = Annotated[int, "unit:inst"]

#: A dimensionless integer count (banks, sets, apps, events).
Count = Annotated[int, "unit:1"]

#: A dimensionless float ratio (miss rates, utilizations, CMR).
Fraction = Annotated[float, "unit:1"]

#: Attained DRAM bandwidth normalized to the theoretical peak
#: (Table III of the paper) — dimensionless, but *tagged*: deriving it
#: requires dividing by the peak, and comparing it against an absolute
#: rate (lines/cycle) is exactly the R012 confusion this alias exists
#: to catch.  EB (= BW/CMR) carries the same tag.
FractionOfPeak = Annotated[float, "unit:frac-of-peak"]

# --- compound rates ----------------------------------------------------------

#: Instructions per cycle.
Ipc = Annotated[float, "unit:inst/cycle"]

#: Alias of :data:`Ipc` for issue-width-like capacities.
InstsPerCycle = Annotated[float, "unit:inst/cycle"]

#: Absolute bandwidth: DRAM lines per cycle (the peak in Table III).
LinesPerCycle = Annotated[float, "unit:line/cycle"]

#: Line size: bytes per cache line.
BytesPerLine = Annotated[int, "unit:byte/line"]

#: Absolute bandwidth in bytes per cycle.
BytesPerCycle = Annotated[float, "unit:byte/cycle"]
