"""The perf-history ledger behind ``repro bench history``.

``scripts/bench_report.py`` measures engine throughput (cycles/sec,
events/sec per mode) against the committed ``BENCH_engine.json``
baseline; this module gives those measurements a durable trail.  Every
report run appends one JSONL record per mode to
``results/bench_history.jsonl`` via :func:`append_bench_history`, and
``repro bench history`` renders the trend with
:func:`render_bench_history` — recent runs per mode, deltas between
consecutive runs, and the standing vs. the committed baseline — so a
perf regression shows up as a trend, not a single noisy point.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.io import append_jsonl, read_jsonl

__all__ = [
    "BENCH_HISTORY_SCHEMA",
    "BENCH_HISTORY_VERSION",
    "append_bench_history",
    "load_bench_baseline",
    "load_bench_history",
    "render_bench_history",
]

BENCH_HISTORY_SCHEMA = "repro.obs.bench_history"
BENCH_HISTORY_VERSION = 1

#: Required per-record fields beyond the schema pair.
_REQUIRED = ("recorded_at", "mode", "cases")


def append_bench_history(path: Path, record: dict) -> None:
    """Append one run's measurements for one mode to the ledger.

    ``record`` needs ``recorded_at`` (ISO timestamp), ``mode`` (bench
    mode name), and ``cases`` (case -> {cycles_per_sec, events_per_sec,
    wall_s, ...}); ``git``/``python``/``machine`` provenance ride along
    verbatim.  The schema pair is stamped here so callers cannot write
    an unversioned line.
    """
    for field in _REQUIRED:
        if field not in record:
            raise ValueError(f"bench history record missing {field!r}")
    stamped = {
        "schema": BENCH_HISTORY_SCHEMA,
        "version": BENCH_HISTORY_VERSION,
        **record,
    }
    append_jsonl(Path(path), stamped)


def load_bench_history(path: Path) -> list[dict]:
    """Read and validate the ledger; raises ValueError on bad lines."""
    records = read_jsonl(Path(path))
    for i, record in enumerate(records, start=1):
        if record.get("schema") != BENCH_HISTORY_SCHEMA:
            raise ValueError(
                f"{path}: record {i}: schema is {record.get('schema')!r}, "
                f"expected {BENCH_HISTORY_SCHEMA!r}"
            )
        if record.get("version") != BENCH_HISTORY_VERSION:
            raise ValueError(
                f"{path}: record {i}: version {record.get('version')!r} "
                f"unsupported (expected {BENCH_HISTORY_VERSION})"
            )
        for field in _REQUIRED:
            if field not in record:
                raise ValueError(f"{path}: record {i}: missing {field!r}")
    return records


def _mean_rate(record: dict, key: str) -> float:
    """Average a per-case rate across a record's cases."""
    rates = [
        float(case.get(key, 0.0))
        for case in record.get("cases", {}).values()
        if case.get(key)
    ]
    if not rates:
        return 0.0
    return sum(rates) / len(rates)


def _baseline_rates(baseline: dict | None) -> dict[str, float]:
    """mode -> baseline mean cycles/sec from a BENCH_engine.json dict."""
    if not baseline:
        return {}
    out: dict[str, float] = {}
    for mode, entry in baseline.get("modes", {}).items():
        cases = entry.get("baseline", {}).get("cases", {})
        rates = [
            float(case.get("cycles_per_sec", 0.0))
            for case in cases.values()
            if case.get("cycles_per_sec")
        ]
        if rates:
            out[mode] = sum(rates) / len(rates)
    return out


def render_bench_history(
    records: list[dict],
    *,
    baseline: dict | None = None,
    mode: str | None = None,
    last: int = 10,
) -> str:
    """Render per-mode trend tables (most recent ``last`` runs each).

    Each row shows the run's mean cycles/sec and events/sec across its
    cases, the delta vs. the previous run of the same mode, and — when a
    ``BENCH_engine.json`` dict is supplied — the delta vs. the committed
    baseline.  A sustained negative trend is the regression signal the
    single-shot bench report can't give.
    """
    by_mode: dict[str, list[dict]] = {}
    for record in records:
        by_mode.setdefault(str(record["mode"]), []).append(record)
    base_rates = _baseline_rates(baseline)

    lines: list[str] = []
    for mode_name in sorted(by_mode):
        if mode is not None and mode_name != mode:
            continue
        history = by_mode[mode_name]
        lines.append(f"== bench history: {mode_name} ==")
        header = (
            f"  {'recorded_at':<20} {'cycles/s':>12} {'events/s':>12} "
            f"{'vs prev':>8} {'vs base':>8}"
        )
        lines.append(header)
        shown = history[-last:]
        start = len(history) - len(shown)
        for i, record in enumerate(shown):
            rate = _mean_rate(record, "cycles_per_sec")
            ev_rate = _mean_rate(record, "events_per_sec")
            prev_idx = start + i - 1
            if prev_idx >= 0:
                prev = _mean_rate(history[prev_idx], "cycles_per_sec")
                vs_prev = f"{(rate / prev - 1) * 100:+7.1f}%" if prev else "    n/a"
            else:
                vs_prev = "    n/a"
            base = base_rates.get(mode_name, 0.0)
            vs_base = f"{(rate / base - 1) * 100:+7.1f}%" if base else "    n/a"
            lines.append(
                f"  {str(record['recorded_at']):<20.20} {rate:>12.0f} "
                f"{ev_rate:>12.0f} {vs_prev:>8} {vs_base:>8}"
            )
        if len(history) > len(shown):
            lines.append(f"  ... {len(history) - len(shown)} earlier runs")
        lines.append("")
    if not lines:
        scope = f"mode {mode!r}" if mode else "any mode"
        return f"no bench history for {scope}\n"
    return "\n".join(lines)


def load_bench_baseline(path: Path) -> dict | None:
    """Read BENCH_engine.json if present (None when absent)."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())
