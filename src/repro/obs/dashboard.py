"""The live TTY dashboard over a :mod:`repro.obs.live` stream.

:class:`LiveState` folds stream records into the current picture of a
sweep — jobs done/failed/active, per-(workload, scheme, app) window
signals, worker liveness, decision counts.  :class:`Dashboard` renders
that state: on a terminal as a multi-line panel redrawn in place (ANSI
cursor-up + erase), elsewhere as plain append-only log lines so piped
output stays readable.  :func:`watch` tails a ``live.ndjson`` file into
a dashboard — the implementation of ``repro watch RUN`` — following the
file until its ``stream_end`` record (the stream is still being written
by a running sweep) or just replaying it when ``follow=False``.

Everything takes injectable clocks/streams so tests can drive a fake
TTY deterministically.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, TextIO

from repro.obs.live import LIVE_SCHEMA, LIVE_SCHEMA_VERSION

__all__ = ["Dashboard", "LiveState", "render_lines", "watch"]

#: How many per-app window series the panel shows before eliding.
_MAX_SERIES_ROWS = 8
#: How many in-flight jobs the panel lists.
_MAX_ACTIVE_ROWS = 4


class LiveState:
    """The current picture of a sweep, folded from stream records."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self.run_id = ""
        self.total = 0
        self.done = 0
        self.failed = 0
        self.batches = 0
        self.window_count = 0
        self.decision_count = 0
        self.tenancy_count = 0
        self.profile_count = 0
        self.ended = False
        #: pid -> job name currently executing there
        self.active: dict[int, str] = {}
        #: every pid that ever ran a job (worker utilization denominator)
        self.workers: set[int] = set()
        #: (workload, scheme, app) -> latest window record
        self.latest_window: dict[tuple[str, str, int], dict] = {}
        #: most recent decision record, if any
        self.last_decision: dict | None = None
        #: most recent tenancy (roster-change) record, if any
        self.last_tenancy: dict | None = None
        self.last_error = ""
        self._t_first_done: float | None = None
        self._t_last_done: float | None = None

    def apply(self, record: dict) -> None:
        rtype = record.get("type")
        if rtype == "batch":
            # Batches accumulate: one CLI run sweeps alone profiles,
            # then a surface, then schemes — ETA covers all of them.
            self.total += int(record["total"])
            self.batches += 1
        elif rtype == "job_start":
            pid = int(record["pid"])
            self.active[pid] = str(record["job"])
            self.workers.add(pid)
        elif rtype in ("job_done", "job_fail"):
            pid = int(record["pid"])
            self.active.pop(pid, None)
            self.workers.add(pid)
            if rtype == "job_fail":
                self.failed += 1
                self.last_error = f"{record['job']}: {record['error']}"
            else:
                self.done += 1
            mark = self._clock()
            if self._t_first_done is None:
                self._t_first_done = mark - float(
                    record.get("elapsed_s", 0.0) or 0.0
                )
            self._t_last_done = mark
        elif rtype == "window":
            key = (
                str(record["workload"]),
                str(record["scheme"]),
                int(record["app"]),
            )
            self.latest_window[key] = record
            self.window_count += 1
        elif rtype == "decision":
            self.decision_count += 1
            self.last_decision = record
        elif rtype == "tenancy":
            self.tenancy_count += 1
            self.last_tenancy = record
        elif rtype == "profile":
            self.profile_count += 1
        elif rtype == "stream_end":
            self.ended = True
            self.active.clear()

    # -- derived signals --------------------------------------------------

    def jobs_per_sec(self) -> float:
        """Completion rate over the span between first and last job."""
        if self._t_first_done is None or self._t_last_done is None:
            return 0.0
        span = self._t_last_done - self._t_first_done
        if span <= 0:
            return 0.0
        return self.done / span

    def eta_s(self) -> float | None:
        """Seconds until the sweep finishes, at the current rate."""
        rate = self.jobs_per_sec()
        remaining = max(0, self.total - self.done - self.failed)
        if rate <= 0 or not remaining:
            return None
        return remaining / rate

    def queue_depth(self) -> int:
        """Jobs submitted but not yet started anywhere."""
        return max(0, self.total - self.done - self.failed - len(self.active))


def render_lines(state: LiveState) -> list[str]:
    """Render one dashboard frame as a list of lines."""
    rate = state.jobs_per_sec()
    eta = state.eta_s()
    head = (
        f"live {state.run_id or 'run'} — jobs {state.done}/{state.total}"
        + (f" ({state.failed} failed)" if state.failed else "")
        + f"  workers {len(state.active)}/{max(len(state.workers), 1)}"
        + f"  queue {state.queue_depth()}"
        + (f"  {rate:.2f} jobs/s" if rate else "")
        + (f"  ETA {eta:.0f}s" if eta is not None else "")
        + ("  [done]" if state.ended else "")
    )
    lines = [head]
    for pid, job in sorted(state.active.items())[:_MAX_ACTIVE_ROWS]:
        lines.append(f"  run  pid {pid}: {job}")
    series = sorted(state.latest_window.items())
    for (workload, scheme, app_id), w in series[:_MAX_SERIES_ROWS]:
        lines.append(
            f"  {workload} {scheme} app{app_id} @{w['cycle']:>9.0f}  "
            f"IPC {w['ipc']:.3f}  EB {w['eb']:.3f}  BW {w['bw']:.3f}  "
            f"CMR {w['cmr']:.3f}"
        )
    if len(series) > _MAX_SERIES_ROWS:
        lines.append(f"  ... {len(series) - _MAX_SERIES_ROWS} more series")
    tail = (
        f"  windows {state.window_count}  decisions {state.decision_count}"
        f"  profiles {state.profile_count}"
    )
    if state.last_decision is not None:
        d = state.last_decision
        tail += f"  last {d['scheme']}.{d['kind']} @{d['cycle']:.0f}"
    lines.append(tail)
    if state.last_tenancy is not None:
        t = state.last_tenancy
        roster = ",".join(str(a) for a in t.get("roster", []))
        lines.append(
            f"  tenancy x{state.tenancy_count}: {t['event']} app{t['app']}"
            f" @{t['cycle']:.0f}  roster [{roster}]"
        )
    if state.last_error:
        lines.append(f"  FAIL {state.last_error:.100s}")
    return lines


class Dashboard:
    """Renders a :class:`LiveState` as records arrive.

    On a TTY the panel is redrawn in place at most once per
    ``min_interval_s`` (plus always on ``stream_end``); on anything else
    it degrades to plain log lines for job completions and failures, so
    redirected output records progress without control characters.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        *,
        run_id: str = "",
        min_interval_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.state = LiveState(clock=clock)
        self.state.run_id = run_id
        self.stream: TextIO = sys.stderr if stream is None else stream
        isatty = getattr(self.stream, "isatty", None)
        self._tty = bool(isatty()) if callable(isatty) else False
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._last_render: float | None = None
        self._height = 0
        self.renders = 0

    def on_record(self, record: dict) -> None:
        """Fold one stream record and redraw if due (the hub callback)."""
        self.state.apply(record)
        if self._tty:
            mark = self._clock()
            due = (
                self._last_render is None
                or mark - self._last_render >= self.min_interval_s
            )
            if due or record.get("type") == "stream_end":
                self._render()
                self._last_render = mark
        else:
            line = self._plain_line(record)
            if line:
                print(line, file=self.stream, flush=True)

    def _render(self) -> None:
        lines = render_lines(self.state)
        frame = ""
        if self._height:
            # Cursor up over the previous frame, erase to end of screen,
            # repaint: the panel updates in place.
            frame += f"\x1b[{self._height}F\x1b[0J"
        frame += "\n".join(lines) + "\n"
        self.stream.write(frame)
        self.stream.flush()
        self._height = len(lines)
        self.renders += 1

    def _plain_line(self, record: dict) -> str:
        rtype = record.get("type")
        state = self.state
        if rtype == "job_done":
            return (
                f"[{state.done}/{state.total}] {record['job']} "
                f"({record['elapsed_s']:.1f}s, pid {record['pid']})"
            )
        if rtype == "job_fail":
            return f"FAIL {record['job']}: {record['error']}"
        if rtype == "stream_end":
            return (
                f"stream end: {state.done} done, {state.failed} failed, "
                f"{state.window_count} windows, "
                f"{state.decision_count} decisions"
            )
        return ""


def watch(
    path: Path,
    *,
    follow: bool = True,
    stream: TextIO | None = None,
    run_id: str = "",
    poll_s: float = 0.2,
    timeout_s: float | None = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> LiveState:
    """Tail a ``live.ndjson`` file into a dashboard; return final state.

    With ``follow=True`` the file is polled until its ``stream_end``
    record arrives (or ``timeout_s`` elapses — ``None`` waits forever);
    with ``follow=False`` whatever is on disk is replayed once.  Partial
    trailing lines (the writer mid-append) are retried on the next poll.
    """
    path = Path(path)
    dash = Dashboard(stream=stream, run_id=run_id, clock=clock)
    pending = ""
    header_seen = False
    deadline = None if timeout_s is None else clock() + timeout_s
    with path.open("r", encoding="utf-8") as fh:
        while True:
            chunk = fh.read()
            if chunk:
                pending += chunk
                while "\n" in pending:
                    line, pending = pending.split("\n", 1)
                    if not line.strip():
                        continue
                    record = json.loads(line)
                    if not header_seen:
                        if record.get("schema") != LIVE_SCHEMA or (
                            record.get("version") != LIVE_SCHEMA_VERSION
                        ):
                            raise ValueError(
                                f"{path}: not a {LIVE_SCHEMA} "
                                f"v{LIVE_SCHEMA_VERSION} stream"
                            )
                        if not dash.state.run_id:
                            dash.state.run_id = str(record.get("run_id", ""))
                        header_seen = True
                        continue
                    dash.on_record(record)
                    if record.get("type") == "stream_end":
                        return dash.state
                continue
            if not follow:
                break
            if deadline is not None and clock() >= deadline:
                break
            sleep(poll_s)
    return dash.state
