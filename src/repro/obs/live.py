"""Real-time telemetry: streaming worker events to the parent and disk.

The post-mortem observability stack (:mod:`repro.obs.trace` + manifest)
answers "what happened" after a run finishes; this module answers "what
is happening" while a sweep is still going.  The pipeline:

* **Workers publish.**  A :class:`QueuePublisher` installed in each pool
  worker (by :func:`repro.exec.pool`'s initializer) pushes small JSON
  records — job lifecycle, per-window EB/BW/CMR/IPC counters, controller
  decisions, open-system tenancy changes, profiling frames, metrics
  snapshots, heartbeats — onto a
  ``multiprocessing`` queue.  Publishing never blocks simulation: a full
  queue drops the record and counts the drop.
* **The parent collects.**  A :class:`LiveHub` owns the queue, drains it
  on a daemon thread, validates each record against the versioned
  schema, appends it to ``live.ndjson`` in the trace run directory
  (single-writer streaming via :class:`repro.obs.io.JsonlAppender`),
  folds worker ``metrics`` snapshots into the ambient
  :class:`~repro.obs.metrics.MetricsRegistry` (labelled per worker), and
  turns ``profile`` records into ``cat="profile"`` tracer instants so
  hot frames land in the Perfetto export.
* **Consumers tail.**  The live dashboard (:mod:`repro.obs.dashboard`)
  consumes the stream in-process through the hub's ``on_record``
  callback, or out-of-process by tailing ``live.ndjson`` (``repro watch
  RUN``).

Like tracing, live telemetry is ambient and opt-in: library code calls
:func:`get_publisher` and checks ``publisher.enabled`` — the default
:class:`NullPublisher` makes the disabled path one attribute read, the
same discipline as :class:`~repro.obs.trace.NullTracer`.  The stream is
observational only: results are never routed through it, so a published
run is byte-identical to a silent one.
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
import time
from pathlib import Path
from typing import Callable, Protocol

from repro.obs.io import JsonlAppender, read_jsonl
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

__all__ = [
    "LIVE_SCHEMA",
    "LIVE_SCHEMA_VERSION",
    "LIVE_RECORD_TYPES",
    "LiveHub",
    "NullPublisher",
    "QueuePublisher",
    "get_publisher",
    "live_header",
    "load_live",
    "parse_live",
    "profile_frames",
    "result_records",
    "set_publisher",
    "validate_live_record",
]

#: Schema identifier written as the first NDJSON line of every stream.
LIVE_SCHEMA = "repro.obs.live"
LIVE_SCHEMA_VERSION = 1

#: Required fields (and their types) per record type.  Records may carry
#: extra fields — the schema pins what consumers can rely on, producers
#: are free to annotate.  ``t`` (unix wall seconds, stamped by the
#: publisher) is optional everywhere: replayed or synthetic streams need
#: not fake clocks.
_RECORD_FIELDS: dict[str, dict[str, type | tuple[type, ...]]] = {
    # one sweep batch was submitted to the executor
    "batch": {"total": int},
    # job lifecycle, stamped by the process that ran the job
    "job_start": {"job": str, "pid": int},
    "job_done": {"job": str, "pid": int, "elapsed_s": (int, float)},
    "job_fail": {"job": str, "pid": int, "error": str},
    # one per-app controller-window sample (cycle-stamped)
    "window": {
        "workload": str, "scheme": str, "app": int,
        "cycle": (int, float), "eb": (int, float), "bw": (int, float),
        "cmr": (int, float), "ipc": (int, float),
    },
    # one controller decision (cycle-stamped)
    "decision": {
        "workload": str, "scheme": str, "kind": str, "cycle": (int, float),
    },
    # one roster change of an open-system run (cycle-stamped); carries
    # the post-change roster so consumers need no event replay
    "tenancy": {
        "workload": str, "scheme": str, "event": str, "app": int,
        "cycle": (int, float), "roster": list,
    },
    # liveness signal, throttled to the publisher's heartbeat interval
    "heartbeat": {"pid": int},
    # top-N hot frames of one cProfile'd job:
    # ``[[label, cum_s, self_s, calls], ...]``
    "profile": {"job": str, "pid": int, "frames": list},
    # a worker registry snapshot (delta since its last publish)
    "metrics": {"label": str, "snapshot": dict},
    # written by the hub as the final record of a closed stream
    "stream_end": {"records": int},
}

LIVE_RECORD_TYPES = frozenset(_RECORD_FIELDS)

#: Internal shutdown sentinel the hub sends itself; never hits disk.
_CLOSE_TYPE = "__close__"


def live_header(run_id: str) -> dict:
    """The schema header record of one live stream."""
    return {
        "schema": LIVE_SCHEMA,
        "version": LIVE_SCHEMA_VERSION,
        "run_id": run_id,
    }


def validate_live_record(record: dict) -> list[str]:
    """Problems with one stream record ([] = valid)."""
    rtype = record.get("type")
    if not isinstance(rtype, str) or rtype not in _RECORD_FIELDS:
        return [f"unknown record type {rtype!r}"]
    problems = []
    for name, types in _RECORD_FIELDS[rtype].items():
        if name not in record:
            problems.append(f"{rtype}: missing field {name!r}")
        elif not isinstance(record[name], types) or isinstance(
            record[name], bool
        ):
            problems.append(
                f"{rtype}: field {name!r} has type "
                f"{type(record[name]).__name__}"
            )
    return problems


def parse_live(records: list[dict]) -> tuple[dict, list[dict]]:
    """Split parsed NDJSON into (header, records), validating both."""
    if not records:
        raise ValueError("empty live stream: missing schema header")
    header = records[0]
    if header.get("schema") != LIVE_SCHEMA:
        raise ValueError(
            f"not a repro.obs live stream "
            f"(header schema {header.get('schema')!r})"
        )
    if header.get("version") != LIVE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported live-stream version {header.get('version')!r} "
            f"(expected {LIVE_SCHEMA_VERSION})"
        )
    for i, record in enumerate(records[1:], start=2):
        problems = validate_live_record(record)
        if problems:
            raise ValueError(f"live stream line {i}: {'; '.join(problems)}")
    return header, records[1:]


def load_live(path: Path) -> tuple[dict, list[dict]]:
    """Read and validate a ``live.ndjson`` file."""
    return parse_live(read_jsonl(Path(path)))


# --- publishers ---------------------------------------------------------


class Publisher(Protocol):  # pragma: no cover - typing aid only
    enabled: bool
    worker: bool
    profile: bool
    window_cap: int
    profile_top: int

    def publish(self, record: dict) -> None: ...
    def heartbeat(self) -> None: ...


class NullPublisher:
    """The disabled publisher: every operation is a no-op.

    Hot paths guard emission on ``publisher.enabled``, so a silent run
    pays one attribute read — the :class:`~repro.obs.trace.NullTracer`
    discipline.
    """

    enabled = False
    worker = False
    profile = False
    window_cap = 0
    profile_top = 0

    def publish(self, record: dict) -> None:
        return None

    def heartbeat(self) -> None:
        return None


class QueuePublisher:
    """Publishes stream records onto a (multiprocessing) queue.

    One instance lives in each pool worker (``worker=True``, installed
    by the pool initializer) and one in the parent (``worker=False``,
    owned by the :class:`LiveHub`) so the serial executor path streams
    through the same transport.  Throttling is the publisher's job:

    * ``publish`` never blocks — a full queue drops the record (counted
      in ``dropped``; telemetry loss must never slow simulation);
    * ``heartbeat`` emits at most one record per ``heartbeat_s`` of wall
      time;
    * window records are stride-capped to ``window_cap`` samples per
      job by :func:`result_records`.
    """

    enabled = True

    def __init__(
        self,
        channel: "queue_mod.Queue[dict]",
        *,
        worker: bool = True,
        profile: bool = False,
        heartbeat_s: float = 1.0,
        window_cap: int = 64,
        profile_top: int = 10,
    ) -> None:
        self.channel = channel
        self.worker = worker
        self.profile = profile
        self.heartbeat_s = heartbeat_s
        self.window_cap = window_cap
        self.profile_top = profile_top
        self.sent = 0
        self.dropped = 0
        self._last_heartbeat: float | None = None

    def worker_config(self) -> dict:
        """The throttle/profiling knobs to replicate in pool workers."""
        return {
            "profile": self.profile,
            "heartbeat_s": self.heartbeat_s,
            "window_cap": self.window_cap,
            "profile_top": self.profile_top,
        }

    def publish(self, record: dict) -> None:
        record.setdefault("t", round(time.time(), 3))
        try:
            self.channel.put_nowait(record)
        except queue_mod.Full:
            self.dropped += 1
        else:
            self.sent += 1

    def heartbeat(self) -> None:
        mark = time.monotonic()
        if (
            self._last_heartbeat is not None
            and mark - self._last_heartbeat < self.heartbeat_s
        ):
            return
        self._last_heartbeat = mark
        self.publish(
            {"type": "heartbeat", "pid": os.getpid(), "sent": self.sent}
        )


_NULL_PUBLISHER = NullPublisher()
_PUBLISHER: NullPublisher | QueuePublisher = _NULL_PUBLISHER


def get_publisher() -> NullPublisher | QueuePublisher:
    """The ambient publisher (a shared no-op unless one is installed)."""
    return _PUBLISHER


def set_publisher(
    publisher: NullPublisher | QueuePublisher | None,
) -> NullPublisher | QueuePublisher:
    """Install ``publisher`` as the ambient one; return the previous.

    ``None`` disables (installs the shared :class:`NullPublisher`).
    Unlike ``set_tracer``/``set_metrics``, installing a publisher inside
    a pool worker is the *sanctioned* pattern — the whole point of a
    :class:`QueuePublisher` is that its records cross the process
    boundary back to the parent.
    """
    global _PUBLISHER
    previous = _PUBLISHER
    _PUBLISHER = publisher if publisher is not None else _NULL_PUBLISHER
    return previous


# --- record builders ----------------------------------------------------


def result_records(
    value: object, tag: tuple | None = None, *, window_cap: int = 64
) -> list[dict]:
    """Window/decision stream records from one simulation product.

    Duck-typed so this leaf module never imports the simulator: a
    ``SchemeResult`` (has ``.result`` with ``.windows``, plus
    ``.workload``/``.scheme``/``.decisions``) yields labelled window and
    decision records; a bare ``SimResult`` (has ``.windows``) labels its
    windows from the job ``tag`` (e.g. ``("alone", "BLK", 8)`` or
    ``("surface", "BLK_TRD", combo)``).  Anything else yields nothing.

    Windows are stride-sampled down to at most ~``window_cap`` per app
    (the last window always included) so a long dynamic run does not
    flood the queue; ``window_cap <= 0`` disables the cap.
    """
    inner = getattr(value, "result", None)
    if inner is not None and hasattr(inner, "windows"):
        result = inner
        workload = str(getattr(value, "workload", "?"))
        scheme = str(getattr(value, "scheme", "?"))
        decisions = list(getattr(value, "decisions", ()) or ())
    elif hasattr(value, "windows"):
        result = value
        parts = tuple(tag) if isinstance(tag, tuple) else ()
        scheme = str(parts[0]) if parts else "run"
        workload = str(parts[1]) if len(parts) > 1 else "?"
        decisions = []
    else:
        return []

    records: list[dict] = []
    windows = list(result.windows)
    stride = 1
    if window_cap > 0 and len(windows) > window_cap:
        stride = -(-len(windows) // window_cap)  # ceil division
    last = len(windows) - 1
    for idx, (t_cycles, samples) in enumerate(windows):
        if idx % stride and idx != last:
            continue
        for app_id in sorted(samples):
            s = samples[app_id]
            records.append({
                "type": "window",
                "workload": workload,
                "scheme": scheme,
                "app": app_id,
                "cycle": t_cycles,
                "eb": s.eb,
                "bw": s.bw,
                "cmr": s.cmr,
                "ipc": s.ipc,
            })
    for d in decisions:
        records.append({
            "type": "decision",
            "workload": workload,
            "scheme": scheme,
            "kind": str(d.get("kind", "?")),
            "cycle": float(d.get("cycle", 0.0)),
            # A roster-change research carries why it restarted; the
            # dashboard distinguishes it from drift re-searches.
            **({"reason": str(d["reason"])} if "reason" in d else {}),
        })
    for rec in getattr(result, "roster", None) or ():
        records.append({
            "type": "tenancy",
            "workload": workload,
            "scheme": scheme,
            "event": str(rec.get("event", "?")),
            "app": int(rec.get("app", -1)),
            "cycle": float(rec.get("cycle", 0.0)),
            "roster": list(rec.get("roster", [])),
            "abbr": str(rec.get("abbr", "?")),
            "cores": list(rec.get("cores", [])),
        })
    return records


def profile_frames(prof: object, top: int = 10) -> list[list]:
    """Top-``top`` hot frames of a finished cProfile run.

    Returns ``[[label, cum_s, self_s, calls], ...]`` sorted by
    cumulative time — the payload of a ``profile`` stream record, and
    what the hub folds into the Perfetto export as instant events.
    """
    import pstats

    stats = pstats.Stats(prof)
    rows: list[tuple[float, float, int, str]] = []
    for (filename, lineno, funcname), entry in stats.stats.items():  # type: ignore[attr-defined]
        _cc, n_calls, self_t, cum_t = entry[:4]
        if filename.startswith("<"):
            label = funcname
        else:
            label = f"{funcname} ({Path(filename).name}:{lineno})"
        rows.append((cum_t, self_t, n_calls, label))
    rows.sort(key=lambda r: (-r[0], r[3]))
    return [
        [label, round(cum_t, 6), round(self_t, 6), int(n_calls)]
        for cum_t, self_t, n_calls, label in rows[:top]
    ]


# --- the parent-side collector ------------------------------------------


class LiveHub:
    """Parent-side owner of one live-telemetry stream.

    Creates the multiprocessing queue, starts the collector thread,
    writes the schema header, and exposes ``publisher`` — the parent's
    own :class:`QueuePublisher` (``worker=False``) to install as the
    ambient publisher so the serial executor path and batch records flow
    through the same stream.  ``close()`` stops the collector, appends
    the ``stream_end`` record, and releases the sink; it is idempotent.
    """

    def __init__(
        self,
        run_id: str,
        path: Path,
        *,
        profile: bool = False,
        on_record: Callable[[dict], None] | None = None,
        heartbeat_s: float = 1.0,
        window_cap: int = 64,
        profile_top: int = 10,
    ) -> None:
        import multiprocessing

        self.run_id = run_id
        self.path = Path(path)
        self.queue: "queue_mod.Queue[dict]" = (
            multiprocessing.get_context().Queue()
        )
        self.publisher = QueuePublisher(
            self.queue,
            worker=False,
            profile=profile,
            heartbeat_s=heartbeat_s,
            window_cap=window_cap,
            profile_top=profile_top,
        )
        self._on_record = on_record
        self._sink = JsonlAppender(self.path)
        self._sink.append(live_header(run_id))
        self.records = 0
        self.invalid = 0
        self.callback_errors = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name="live-collector", daemon=True
        )
        self._thread.start()

    # -- collector thread ------------------------------------------------

    def _drain(self) -> None:
        while True:
            try:
                record = self.queue.get(timeout=0.2)
            except queue_mod.Empty:
                continue
            if record.get("type") == _CLOSE_TYPE:
                return
            self._handle(record)

    def _handle(self, record: dict) -> None:
        if validate_live_record(record):
            self.invalid += 1
            return
        self.records += 1
        rtype = record["type"]
        if rtype == "metrics":
            # Worker deltas fold into the parent's ambient registry;
            # gauges are namespaced by the worker label so two workers
            # never clobber each other.
            get_metrics().merge(record["snapshot"], label=record["label"])
        elif rtype == "profile":
            tracer = get_tracer()
            if tracer.enabled:
                for frame in record["frames"]:
                    label, cum_s, self_s, n_calls = (list(frame) + [0] * 4)[:4]
                    tracer.instant(
                        f"hot:{label}",
                        cat="profile",
                        job=record["job"],
                        pid=record["pid"],
                        cum_s=cum_s,
                        self_s=self_s,
                        calls=n_calls,
                    )
        self._sink.append(record)
        if self._on_record is not None:
            try:
                self._on_record(record)
            except Exception:
                # A dashboard bug must never kill telemetry collection.
                self.callback_errors += 1

    # -- lifecycle --------------------------------------------------------

    def close(self) -> Path:
        """Stop collecting, seal the stream, and return its path."""
        if self._closed:
            return self.path
        self._closed = True
        self.queue.put({"type": _CLOSE_TYPE})
        self._thread.join(timeout=10)
        end = {
            "type": "stream_end",
            "records": self.records,
            "invalid": self.invalid,
            "dropped": self.publisher.dropped,
            "t": round(time.time(), 3),
        }
        # The collector thread has exited: the single-writer handoff to
        # this thread is sequential, so the sink stays single-writer.
        self._sink.append(end)
        self._sink.close()
        if self._on_record is not None:
            try:
                self._on_record(end)
            except Exception:
                self.callback_errors += 1
        self.queue.close()
        return self.path

    def __enter__(self) -> "LiveHub":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
