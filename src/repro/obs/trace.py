"""Span-based structured tracing with two clock domains.

One :class:`Tracer` collects every event of a run:

* **host-layer** events (CLI phases, sweep jobs, scheme evaluations) are
  stamped in *wall-clock microseconds* since the tracer was created;
* **sim-layer** events (per-window EB/BW/CMR counters, PBS decisions,
  probe samples) are stamped in *simulated cycles* — they come out of
  deterministic simulation state, so traced runs stay byte-identical to
  untraced ones (lint rule R001).

The span hierarchy mirrors the execution structure::

    run -> experiment/phase -> scheme -> window -> job

Events serialize to JSONL (one object per line, a schema header first)
and export to the Chrome trace-event format (:mod:`repro.obs.chrome`)
so a run opens directly in Perfetto.

Tracing is opt-in and ambient: library code calls :func:`get_tracer`,
which returns a shared :class:`NullTracer` unless a real tracer was
installed with :func:`set_tracer` / the :func:`tracing` context manager.
Every hook in the hot paths is gated on ``tracer.enabled``, so the
disabled path costs one attribute read.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.obs.io import atomic_write_text, read_jsonl
from repro.units import TraceTicks, WallMicroseconds, WallSeconds

__all__ = [
    "CLOCK_CYCLES",
    "CLOCK_WALL",
    "Event",
    "NullTracer",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "get_tracer",
    "load_trace",
    "parse_events",
    "set_tracer",
    "tracing",
]

#: Schema identifier written as the first JSONL line of every trace.
TRACE_SCHEMA = "repro.obs.trace"
TRACE_SCHEMA_VERSION = 1

CLOCK_WALL = "wall"
CLOCK_CYCLES = "cycles"

#: Chrome trace-event phase codes used here: complete span, instant,
#: counter.
_PHASES = ("X", "i", "C")


@dataclass
class Event:
    """One trace event.

    ``ts`` (and ``dur`` for spans) are microseconds for ``clock="wall"``
    and simulated cycles for ``clock="cycles"``.  ``args`` holds
    arbitrary JSON-serializable detail; counter events (``ph="C"``)
    keep their numeric series there.
    """

    name: str
    cat: str
    ph: str  # "X" complete span | "i" instant | "C" counter
    ts: TraceTicks
    clock: str = CLOCK_WALL
    dur: TraceTicks = 0.0
    tid: int = 0
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "clock": self.clock,
            "tid": self.tid,
        }
        if self.ph == "X":
            d["dur"] = self.dur
        if self.args:
            d["args"] = self.args
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Event":
        return cls(
            name=d["name"],
            cat=d["cat"],
            ph=d["ph"],
            ts=d["ts"],
            clock=d.get("clock", CLOCK_WALL),
            dur=d.get("dur", 0.0),
            tid=d.get("tid", 0),
            args=d.get("args", {}),
        )


class Tracer:
    """Collects :class:`Event` records for one run.

    Wall-clock spans are measured with ``time.perf_counter`` *inside
    this module* — callers in the simulation layers never read the
    clock themselves, which keeps them R001-clean.
    """

    enabled = True

    def __init__(self, run_id: str = "run") -> None:
        self.run_id = run_id
        self.events: list[Event] = []
        self._origin: WallSeconds = time.perf_counter()
        self._depth = 0

    # --- clocks --------------------------------------------------------

    def now_us(self) -> WallMicroseconds:
        """Microseconds of wall time since the tracer was created."""
        return (time.perf_counter() - self._origin) * 1e6

    # --- emission ------------------------------------------------------

    @contextmanager
    def span(self, name: str, cat: str = "host", **args: object) -> Iterator[None]:
        """A wall-clock span around a ``with`` block.

        Nested spans record their nesting depth as ``tid`` so the
        summarizer can tell phases (depth 0) from sub-steps.
        """
        start = self.now_us()
        depth = self._depth
        self._depth += 1
        try:
            yield
        finally:
            self._depth = depth
            self.events.append(
                Event(
                    name=name,
                    cat=cat,
                    ph="X",
                    ts=start,
                    clock=CLOCK_WALL,
                    dur=self.now_us() - start,
                    tid=depth,
                    args=dict(args),
                )
            )

    def complete(
        self,
        name: str,
        ts: TraceTicks,
        dur: TraceTicks,
        *,
        cat: str = "host",
        clock: str = CLOCK_WALL,
        tid: int = 0,
        **args: object,
    ) -> None:
        """Record a pre-stamped span (e.g. a pool job timed elsewhere)."""
        self.events.append(
            Event(name=name, cat=cat, ph="X", ts=ts, clock=clock,
                  dur=dur, tid=tid, args=dict(args))
        )

    def instant(
        self,
        name: str,
        *,
        cat: str = "host",
        clock: str = CLOCK_WALL,
        ts: TraceTicks | None = None,
        **args: object,
    ) -> None:
        """Record a point event (wall-stamped unless ``ts`` is given)."""
        self.events.append(
            Event(
                name=name,
                cat=cat,
                ph="i",
                ts=self.now_us() if ts is None else ts,
                clock=clock,
                args=dict(args),
            )
        )

    def counter(
        self,
        name: str,
        values: dict,
        *,
        ts: TraceTicks,
        cat: str = "sim",
        clock: str = CLOCK_CYCLES,
    ) -> None:
        """Record one sample of a (multi-)series counter."""
        self.events.append(
            Event(name=name, cat=cat, ph="C", ts=ts, clock=clock,
                  args=dict(values))
        )

    # --- serialization -------------------------------------------------

    def header(self) -> dict:
        return {
            "schema": TRACE_SCHEMA,
            "version": TRACE_SCHEMA_VERSION,
            "run_id": self.run_id,
        }

    def to_jsonl(self) -> str:
        lines = [json.dumps(self.header())]
        lines.extend(json.dumps(e.to_dict()) for e in self.events)
        return "\n".join(lines) + "\n"

    def write(self, path: Path) -> None:
        """Atomically publish the trace as JSONL at ``path``."""
        atomic_write_text(Path(path), self.to_jsonl())

    # --- aggregation ---------------------------------------------------

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Wall time per top-level (depth-0) span name.

        Returns ``{name: {"count": n, "total_s": seconds}}`` — the
        per-phase timing block of the run manifest.
        """
        totals: dict[str, dict[str, float]] = {}
        for e in self.events:
            if e.ph != "X" or e.clock != CLOCK_WALL or e.tid != 0:
                continue
            if e.cat == "job":  # jobs are duration-stamped, not nested
                continue
            slot = totals.setdefault(e.name, {"count": 0, "total_s": 0.0})
            slot["count"] += 1
            slot["total_s"] += e.dur / 1e6
        return totals


class _NullSpan:
    """Reusable do-nothing context manager."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Hot paths additionally guard bulk emission on ``tracer.enabled``,
    so a disabled run never materializes event payloads at all.
    """

    enabled = False
    run_id = ""

    def now_us(self) -> WallMicroseconds:
        return 0.0

    def span(self, name: str, cat: str = "host", **args: object) -> _NullSpan:
        return _NULL_SPAN

    def complete(self, *a: object, **k: object) -> None:
        return None

    def instant(self, *a: object, **k: object) -> None:
        return None

    def counter(self, *a: object, **k: object) -> None:
        return None

    def phase_totals(self) -> dict:
        return {}


_NULL_TRACER = NullTracer()
_TRACER: Tracer | NullTracer = _NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The ambient tracer (a shared :class:`NullTracer` when disabled)."""
    return _TRACER


def set_tracer(tracer: Tracer | NullTracer | None) -> None:
    """Install ``tracer`` as the ambient tracer (``None`` disables)."""
    global _TRACER
    _TRACER = tracer if tracer is not None else _NULL_TRACER


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = _TRACER
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def parse_events(records: list[dict]) -> tuple[dict, list[Event]]:
    """Split parsed JSONL records into (header, events), validating both."""
    if not records:
        raise ValueError("empty trace: missing schema header")
    header = records[0]
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"not a repro.obs trace (header schema {header.get('schema')!r})"
        )
    if header.get("version") != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace version {header.get('version')!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    events = []
    for i, record in enumerate(records[1:], start=2):
        try:
            event = Event.from_dict(record)
        except KeyError as exc:
            raise ValueError(f"trace line {i}: missing field {exc}") from exc
        if event.ph not in _PHASES:
            raise ValueError(f"trace line {i}: unknown phase {event.ph!r}")
        if event.clock not in (CLOCK_WALL, CLOCK_CYCLES):
            raise ValueError(f"trace line {i}: unknown clock {event.clock!r}")
        events.append(event)
    return header, events


def load_trace(path: Path) -> tuple[dict, list[Event]]:
    """Read and validate a JSONL trace file."""
    return parse_events(read_jsonl(Path(path)))
