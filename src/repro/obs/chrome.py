"""Chrome trace-event export: open a repro trace in Perfetto.

The Chrome trace-event format (and Perfetto's ``ui.perfetto.dev``,
which loads it directly) wants a single JSON object with a
``traceEvents`` array of ``{name, cat, ph, ts, dur, pid, tid, args}``
records, timestamps in microseconds.

Our two clock domains map to two Perfetto "processes":

* pid 1 — the host layer, wall-clock microseconds as-is;
* pid 2 — the sim layer, rendered at 1 cycle = 1 µs (timestamps are
  *cycles*; the scale is stated in the process name so nobody reads
  them as real time).

Parallel sweep jobs each carry a ``worker`` arg (the worker pid, or
``"main"`` serially); every distinct worker gets its own Perfetto
thread so concurrent jobs do not render as bogus nesting.
"""

from __future__ import annotations

import json
from numbers import Number
from pathlib import Path

from repro.obs.io import atomic_write_text
from repro.obs.trace import CLOCK_WALL, Event

__all__ = ["chrome_trace", "write_chrome_trace"]

_HOST_PID = 1
_SIM_PID = 2
#: dedicated track for ``--profile`` hot-frame instants, below the
#: dynamically assigned worker range so the two never collide
_PROFILE_TID = 90
#: thread ids >= this are dynamically assigned worker tracks
_WORKER_TID_BASE = 100


def chrome_trace(events: list[Event], run_id: str = "run") -> dict:
    """Render events as a Chrome trace-event JSON object."""
    out: list[dict] = [
        _process_name(_HOST_PID, f"{run_id}: host (wall clock)"),
        _process_name(_SIM_PID, f"{run_id}: sim (1 cycle = 1 us)"),
    ]
    worker_tids: dict[object, int] = {}
    any_profile = False
    for e in events:
        pid = _HOST_PID if e.clock == CLOCK_WALL else _SIM_PID
        tid = e.tid
        if e.ph == "X" and e.cat == "job":
            worker = e.args.get("worker", "main")
            tid = worker_tids.setdefault(
                worker, _WORKER_TID_BASE + len(worker_tids)
            )
        elif e.ph == "i" and e.cat == "profile":
            tid = _PROFILE_TID
            any_profile = True
        record: dict = {
            "name": e.name,
            "cat": e.cat,
            "ph": e.ph,
            "ts": e.ts,
            "pid": pid,
            "tid": tid,
        }
        if e.ph == "X":
            record["dur"] = e.dur
        if e.ph == "C":
            # counter args must be numeric series; drop anything else
            record["args"] = {
                k: v for k, v in e.args.items() if isinstance(v, Number)
            }
        elif e.args:
            record["args"] = e.args
        if e.ph == "i":
            record["s"] = "t"  # instant scope: thread
        out.append(record)
    for worker, tid in sorted(worker_tids.items(), key=lambda kv: kv[1]):
        out.append(_thread_name(_HOST_PID, tid, f"worker {worker}"))
    if any_profile:
        out.append(_thread_name(_HOST_PID, _PROFILE_TID, "profiling"))
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(path: Path, events: list[Event], run_id: str = "run") -> None:
    """Atomically publish the Chrome export at ``path``."""
    atomic_write_text(Path(path), json.dumps(chrome_trace(events, run_id)))


def _process_name(pid: int, name: str) -> dict:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def _thread_name(pid: int, tid: int, name: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }
