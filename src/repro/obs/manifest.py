"""Run manifests: what exactly produced a trace.

A manifest is written next to every trace so a run is replayable and
attributable months later: the exact command, config fingerprint, seed,
cache-format version, git revision, interpreter, and per-phase wall
timings.  ``repro trace summarize`` leads with it, and CI asserts its
completeness on every traced smoke run.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.io import atomic_write_text

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA",
    "REQUIRED_FIELDS",
    "RunManifest",
    "config_fingerprint",
    "git_revision",
    "validate_manifest",
]

MANIFEST_SCHEMA = "repro.obs.manifest"
MANIFEST_FILENAME = "manifest.json"

#: Every key a complete manifest must carry (values may be null where
#: noted in :class:`RunManifest`, but the key must exist).
REQUIRED_FIELDS = (
    "schema",
    "version",
    "run_id",
    "command",
    "argv",
    "config",
    "config_fingerprint",
    "seed",
    "quick",
    "n_jobs",
    "cache_format",
    "git_rev",
    "python",
    "platform",
    "started_at",
    "finished_at",
    "duration_s",
    "phases",
    "metrics",
    "files",
)


def config_fingerprint(config_dict: dict) -> str:
    """Stable 16-hex fingerprint of a config's ``dataclasses.asdict``."""
    blob = json.dumps(config_dict, sort_keys=True, default=repr).encode()
    return hashlib.md5(blob).hexdigest()[:16]


def git_revision(cwd: Path | None = None) -> str | None:
    """The checked-out git revision, or ``None`` outside a work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


@dataclass
class RunManifest:
    """The provenance record of one traced run."""

    run_id: str
    command: str
    argv: list[str]
    config: str  # preset name ("medium", ...) or a caller-chosen label
    config_fingerprint: str
    seed: int
    quick: bool
    n_jobs: int | None
    cache_format: int
    git_rev: str | None = None
    python: str = ""
    platform: str = ""
    started_at: str = ""
    finished_at: str = ""
    duration_s: float = 0.0
    phases: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    files: list[str] = field(default_factory=list)
    schema: str = MANIFEST_SCHEMA
    version: int = 1

    @classmethod
    def start(
        cls,
        run_id: str,
        command: str,
        argv: list[str],
        config_name: str,
        config_dict: dict,
        seed: int,
        quick: bool,
        n_jobs: int | None,
        cache_format: int,
        repo_root: Path | None = None,
    ) -> "RunManifest":
        """Collect the environment-side fields at run start."""
        return cls(
            run_id=run_id,
            command=command,
            argv=list(argv),
            config=config_name,
            config_fingerprint=config_fingerprint(config_dict),
            seed=seed,
            quick=quick,
            n_jobs=n_jobs,
            cache_format=cache_format,
            git_rev=git_revision(repo_root),
            python=sys.version.split()[0],
            platform=platform.platform(),
            started_at=datetime.now(timezone.utc).isoformat(),
        )

    def finish(self, phases: dict, metrics: dict, files: list[str]) -> None:
        """Stamp the completion-side fields."""
        self.finished_at = datetime.now(timezone.utc).isoformat()
        started = datetime.fromisoformat(self.started_at)
        finished = datetime.fromisoformat(self.finished_at)
        self.duration_s = (finished - started).total_seconds()
        self.phases = phases
        self.metrics = metrics
        self.files = list(files)

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, directory: Path) -> Path:
        """Atomically publish ``manifest.json`` under ``directory``."""
        path = Path(directory) / MANIFEST_FILENAME
        atomic_write_text(path, json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def validate_manifest(data: dict) -> list[str]:
    """Missing/invalid field names of a manifest dict ([] = complete)."""
    problems = [key for key in REQUIRED_FIELDS if key not in data]
    if data.get("schema") not in (None, MANIFEST_SCHEMA):
        problems.append("schema")
    for key in ("started_at", "finished_at"):
        value = data.get(key)
        if isinstance(value, str) and value:
            try:
                datetime.fromisoformat(value)
            except ValueError:
                problems.append(key)
    return problems
