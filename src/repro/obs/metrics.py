"""Process-local metrics: counters, gauges, timers, and timelines.

The registry complements the tracer: where the tracer records *events*
for offline inspection, the registry keeps cheap *aggregates* that live
code can read back — cache hit/miss counts, per-series window timelines,
timer totals.  A single ambient registry (:func:`get_metrics`) is always
on; its operations are dict updates, so even untraced runs can afford
them on non-simulation paths (never call these from the per-cycle
simulator hot loop).

Cross-process aggregation: pool workers each accumulate into their own
child-process registry, which the parent can never see directly.  The
live-telemetry collector (:mod:`repro.obs.live`) therefore ships worker
snapshots over the event queue and folds them into the parent's ambient
registry with :meth:`MetricsRegistry.merge` — counters and timers fold
additively (merge is associative and commutative over them), gauges are
namespaced by the worker label (``name@label``) so two workers' values
never silently clobber each other, and timeline points interleave in
time order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MetricsRegistry",
    "TimelinePoint",
    "get_metrics",
    "set_metrics",
]


@dataclass(frozen=True)
class TimelinePoint:
    """One sample of a per-application time series (t in cycles)."""

    t: float
    value: float


class MetricsRegistry:
    """Named counters, gauges, timers, and per-app timelines."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._timers: dict[str, dict[str, float]] = {}
        self._timelines: dict[tuple[str, int], list[TimelinePoint]] = {}
        #: timeline keys whose points arrived out of time order and need
        #: a (stable) sort before they are read back
        self._unsorted: set[tuple[str, int]] = set()

    # --- counters / gauges ---------------------------------------------

    def inc(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # --- timers --------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration into timer ``name`` (count/total/max)."""
        slot = self._timers.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        slot["count"] += 1
        slot["total_s"] += seconds
        slot["max_s"] = max(slot["max_s"], seconds)

    def timer(self, name: str) -> dict[str, float]:
        return dict(self._timers.get(name, {"count": 0, "total_s": 0.0, "max_s": 0.0}))

    # --- timelines -----------------------------------------------------

    def record_point(self, series: str, app_id: int, t: float, value: float) -> None:
        """Append one (t, value) sample to ``series`` for ``app_id``.

        Points may arrive out of time order (merged worker snapshots
        interleave several clocks); :meth:`timeline` returns them sorted
        by ``t``, stably, so equal-time points keep arrival order.
        """
        key = (series, app_id)
        points = self._timelines.setdefault(key, [])
        if points and t < points[-1].t:
            self._unsorted.add(key)
        points.append(TimelinePoint(t, value))

    def timeline(self, series: str, app_id: int) -> list[TimelinePoint]:
        key = (series, app_id)
        if key in self._unsorted:
            self._timelines[key].sort(key=lambda p: p.t)
            self._unsorted.discard(key)
        return list(self._timelines.get(key, []))

    def timeline_series(self) -> list[tuple[str, int]]:
        """Every (series, app_id) pair with at least one sample."""
        return sorted(self._timelines)

    # --- export --------------------------------------------------------

    def snapshot(self, timelines: bool = False) -> dict:
        """A JSON-serializable snapshot of every aggregate.

        By default timelines are condensed to per-series sample counts
        (the manifest-friendly shape).  With ``timelines=True`` the full
        point data rides along under ``timeline_points`` — the shape
        :meth:`merge` and :meth:`from_snapshot` consume, so a worker
        registry can cross the process boundary without loss.
        """
        snap = {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {k: dict(v) for k, v in sorted(self._timers.items())},
            "timelines": {
                f"{series}/app{app}": len(points)
                for (series, app), points in sorted(self._timelines.items())
            },
        }
        if timelines:
            snap["timeline_points"] = {
                f"{series}/app{app}": [
                    [p.t, p.value] for p in self.timeline(series, app)
                ]
                for (series, app) in sorted(self._timelines)
            }
        return snap

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        """Reconstruct a registry from a full (``timelines=True``) snapshot."""
        registry = cls()
        registry.merge(snapshot)
        return registry

    def merge(self, snapshot: dict, label: str | None = None) -> None:
        """Fold another registry's snapshot into this one.

        ``snapshot`` is the dict produced by :meth:`snapshot` (timeline
        points are folded only when present, i.e. ``timelines=True``
        snapshots).  Semantics, chosen so merging worker registries into
        the parent is order-insensitive where it can be:

        * counters and timers fold additively — associative and
          commutative, so any merge order yields the same totals;
        * gauges are last-write-wins *per name*; with ``label`` the name
          becomes ``name@label``, so distinct workers' gauges coexist
          instead of colliding (merging the same label twice still
          overwrites — one worker, one slot);
        * timeline points interleave and read back in time order.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(f"{name}@{label}" if label else name, value)
        for name, timer in snapshot.get("timers", {}).items():
            slot = self._timers.setdefault(
                name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            slot["count"] += timer.get("count", 0)
            slot["total_s"] += timer.get("total_s", 0.0)
            slot["max_s"] = max(slot["max_s"], timer.get("max_s", 0.0))
        for key, points in snapshot.get("timeline_points", {}).items():
            series, _, app_part = key.rpartition("/app")
            try:
                app_id = int(app_part)
            except ValueError:
                continue
            for t, value in points:
                self.record_point(series, app_id, t, value)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self._timers.clear()
        self._timelines.clear()
        self._unsorted.clear()


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The ambient process-local registry."""
    return _METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the ambient registry (tests isolate themselves with this)."""
    global _METRICS
    previous = _METRICS
    _METRICS = registry
    return previous
