"""Process-local metrics: counters, gauges, timers, and timelines.

The registry complements the tracer: where the tracer records *events*
for offline inspection, the registry keeps cheap *aggregates* that live
code can read back — cache hit/miss counts, per-series window timelines,
timer totals.  A single ambient registry (:func:`get_metrics`) is always
on; its operations are dict updates, so even untraced runs can afford
them on non-simulation paths (never call these from the per-cycle
simulator hot loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "MetricsRegistry",
    "TimelinePoint",
    "get_metrics",
    "set_metrics",
]


@dataclass(frozen=True)
class TimelinePoint:
    """One sample of a per-application time series (t in cycles)."""

    t: float
    value: float


class MetricsRegistry:
    """Named counters, gauges, timers, and per-app timelines."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._timers: dict[str, dict[str, float]] = {}
        self._timelines: dict[tuple[str, int], list[TimelinePoint]] = {}

    # --- counters / gauges ---------------------------------------------

    def inc(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    # --- timers --------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration into timer ``name`` (count/total/max)."""
        slot = self._timers.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        slot["count"] += 1
        slot["total_s"] += seconds
        slot["max_s"] = max(slot["max_s"], seconds)

    def timer(self, name: str) -> dict[str, float]:
        return dict(self._timers.get(name, {"count": 0, "total_s": 0.0, "max_s": 0.0}))

    # --- timelines -----------------------------------------------------

    def record_point(self, series: str, app_id: int, t: float, value: float) -> None:
        """Append one (t, value) sample to ``series`` for ``app_id``."""
        self._timelines.setdefault((series, app_id), []).append(
            TimelinePoint(t, value)
        )

    def timeline(self, series: str, app_id: int) -> list[TimelinePoint]:
        return list(self._timelines.get((series, app_id), []))

    def timeline_series(self) -> list[tuple[str, int]]:
        """Every (series, app_id) pair with at least one sample."""
        return sorted(self._timelines)

    # --- export --------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable snapshot of every aggregate."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": {k: dict(v) for k, v in sorted(self._timers.items())},
            "timelines": {
                f"{series}/app{app}": len(points)
                for (series, app), points in sorted(self._timelines.items())
            },
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self._timers.clear()
        self._timelines.clear()


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The ambient process-local registry."""
    return _METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the ambient registry (tests isolate themselves with this)."""
    global _METRICS
    previous = _METRICS
    _METRICS = registry
    return previous
