"""Offline trace analysis: ``repro trace summarize <run>``.

Reads a run directory (manifest + JSONL trace) and reconstructs the
run's story: per-phase wall timings, sweep-job cost distribution,
per-application EB/BW/CMR window timelines, and the PBS decision log
(every sampled TLP pair with its objective, and the steps it took to
converge).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.manifest import MANIFEST_FILENAME, validate_manifest
from repro.obs.trace import CLOCK_WALL, Event, load_trace

__all__ = [
    "decision_log",
    "engine_counters",
    "job_stats",
    "live_stream_stats",
    "resolve_trace_path",
    "span_totals",
    "summarize",
    "summary_data",
    "window_timelines",
]

#: Default location of traced runs, relative to the repo root.
TRACES_SUBDIR = Path("results") / "traces"


def resolve_trace_path(target: str | Path, root: Path | None = None) -> Path:
    """Resolve ``target`` to a trace JSONL file.

    Accepts a trace file, a run directory containing ``trace.jsonl``,
    or a bare run id looked up under ``results/traces/``.
    """
    path = Path(target)
    if path.is_file():
        return path
    if path.is_dir():
        candidate = path / "trace.jsonl"
        if candidate.is_file():
            return candidate
        raise FileNotFoundError(f"no trace.jsonl under {path}")
    base = (root or Path.cwd()) / TRACES_SUBDIR / str(target)
    candidate = base / "trace.jsonl"
    if candidate.is_file():
        return candidate
    raise FileNotFoundError(
        f"no such trace: {target!r} (tried {path} and {candidate})"
    )


# --- aggregations -------------------------------------------------------


def span_totals(events: list[Event], tid: int | None = 0) -> dict[str, dict]:
    """Wall-span totals by name: ``{name: {count, total_s, max_s}}``.

    ``tid=0`` restricts to top-level phases; ``tid=None`` takes all
    nesting depths.
    """
    totals: dict[str, dict] = {}
    for e in events:
        if e.ph != "X" or e.clock != CLOCK_WALL or e.cat == "job":
            continue
        if tid is not None and e.tid != tid:
            continue
        slot = totals.setdefault(e.name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        slot["count"] += 1
        slot["total_s"] += e.dur / 1e6
        slot["max_s"] = max(slot["max_s"], e.dur / 1e6)
    return totals


def job_stats(events: list[Event]) -> dict:
    """Aggregate the ``cat="job"`` spans of the sweep executor."""
    durs: list[float] = []
    queue_wait = 0.0
    workers: set[object] = set()
    for e in events:
        if e.ph != "X" or e.cat != "job":
            continue
        durs.append(e.dur / 1e6)
        queue_wait += float(e.args.get("queue_wait_s", 0.0))
        workers.add(e.args.get("worker", "main"))
    return {
        "count": len(durs),
        "total_s": sum(durs),
        "mean_s": sum(durs) / len(durs) if durs else 0.0,
        "max_s": max(durs, default=0.0),
        "queue_wait_s": queue_wait,
        "workers": len(workers),
    }


def window_timelines(events: list[Event]) -> dict[tuple[str, str, int], list]:
    """Per-(workload, scheme, app) EB/BW/CMR series from counter events.

    Counter names follow ``workload|scheme|appN``; each returned sample
    is ``(cycle, {"eb": ..., "bw": ..., "cmr": ...})``.
    """
    series: dict[tuple[str, str, int], list] = {}
    for e in events:
        if e.ph != "C" or e.cat != "window":
            continue
        parts = e.name.split("|")
        if len(parts) != 3 or not parts[2].startswith("app"):
            continue
        try:
            app = int(parts[2][len("app"):])
        except ValueError:
            continue
        series.setdefault((parts[0], parts[1], app), []).append((e.ts, e.args))
    for samples in series.values():
        samples.sort(key=lambda s: s[0])
    return series


def decision_log(events: list[Event]) -> dict[tuple[str, str], list]:
    """PBS/baseline controller decisions grouped by (workload, scheme).

    Each entry is the instant event's args plus ``kind`` (the event name
    with its ``pbs.``/``ctrl.`` prefix stripped) and ``cycle``.
    """
    log: dict[tuple[str, str], list] = {}
    for e in events:
        if e.ph != "i" or e.cat not in ("pbs", "ctrl"):
            continue
        args = dict(e.args)
        workload = str(args.pop("workload", "?"))
        scheme = str(args.pop("scheme", "?"))
        kind = e.name.split(".", 1)[-1]
        log.setdefault((workload, scheme), []).append(
            {"kind": kind, "cycle": e.ts, **args}
        )
    for entries in log.values():
        entries.sort(key=lambda d: d["cycle"])
    return log


def engine_counters(metrics: dict | None) -> dict:
    """Pull the engine self-profiling aggregates out of a metrics snapshot.

    Returns ``{"counters": {...}, "gauges": {...}}`` restricted to the
    ``engine.`` namespace the simulator publishes under ``--profile``
    (dispatches per stage, wheel/pool high-water marks); both empty when
    the run was not profiled.
    """
    out: dict = {"counters": {}, "gauges": {}}
    if not isinstance(metrics, dict):
        return out
    for kind in ("counters", "gauges"):
        values = metrics.get(kind)
        if isinstance(values, dict):
            out[kind] = {
                name: value
                for name, value in sorted(values.items())
                if str(name).startswith("engine.")
            }
    return out


def live_stream_stats(run_dir: Path) -> dict | None:
    """Record-type counts for the run's ``live.ndjson``, if it has one.

    Returns ``None`` when the run was not live-streamed; otherwise
    ``{"records", "types": {type: count}, "dropped", "invalid"}`` (the
    last two from the ``stream_end`` trailer when present).
    """
    path = Path(run_dir) / "live.ndjson"
    if not path.is_file():
        return None
    from repro.obs.live import load_live

    try:
        _header, records = load_live(path)
    except (ValueError, OSError):
        return {"records": 0, "types": {}, "dropped": 0, "invalid": -1}
    types: dict[str, int] = {}
    dropped = 0
    invalid = 0
    for record in records:
        rtype = str(record.get("type", "?"))
        types[rtype] = types.get(rtype, 0) + 1
        if rtype == "stream_end":
            dropped = int(record.get("dropped", 0))
            invalid = int(record.get("invalid", 0))
    return {
        "records": len(records),
        "types": dict(sorted(types.items())),
        "dropped": dropped,
        "invalid": invalid,
    }


def summary_data(target: str | Path, root: Path | None = None) -> dict:
    """The full summary as one JSON-serializable dict (``--json``).

    Mirrors every section of the text renderer — manifest (plus its
    validation problems), phase totals, sweep-job stats, window-timeline
    aggregates, decision counts, engine self-profiling counters, and
    live-stream record counts — keyed stably so CI can assert on it
    instead of scraping the human output.
    """
    trace_path = resolve_trace_path(target, root=root)
    header, events = load_trace(trace_path)
    run_dir = trace_path.parent

    manifest: dict | None = None
    manifest_problems: list[str] = []
    manifest_path = run_dir / MANIFEST_FILENAME
    if manifest_path.is_file():
        try:
            loaded = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            manifest_problems = [f"unreadable manifest: {exc}"]
        else:
            if isinstance(loaded, dict):
                manifest = loaded
                manifest_problems = validate_manifest(loaded)
            else:
                manifest_problems = ["manifest is not a JSON object"]

    timelines = {
        f"{workload}|{scheme}|app{app}": {
            "windows": len(samples),
            "first_cycle": samples[0][0],
            "last_cycle": samples[-1][0],
            "mean": {
                key: sum(s[1].get(key, 0.0) for s in samples) / len(samples)
                for key in ("eb", "bw", "cmr")
            },
        }
        for (workload, scheme, app), samples in sorted(
            window_timelines(events).items()
        )
    }
    decisions = {
        f"{workload}|{scheme}": {
            "count": len(entries),
            "kinds": _kind_counts(entries),
        }
        for (workload, scheme), entries in sorted(decision_log(events).items())
    }
    return {
        "trace": str(trace_path),
        "run_id": header.get("run_id"),
        "n_events": len(events),
        "manifest": manifest,
        "manifest_problems": manifest_problems,
        "phases": span_totals(events, tid=0),
        "jobs": job_stats(events),
        "window_timelines": timelines,
        "decisions": decisions,
        "engine": engine_counters((manifest or {}).get("metrics")),
        "live": live_stream_stats(run_dir),
    }


def _kind_counts(entries: list[dict]) -> dict[str, int]:
    kinds: dict[str, int] = {}
    for d in entries:
        kinds[d["kind"]] = kinds.get(d["kind"], 0) + 1
    return dict(sorted(kinds.items()))


# --- rendering ----------------------------------------------------------


def _fmt_s(seconds: float) -> str:
    return f"{seconds:8.3f}s"


def _manifest_section(manifest_path: Path) -> list[str]:
    """Render the manifest block, degrading gracefully on failure-path
    manifests (null fields, missing per-phase timings, absent exports)
    instead of raising out of the whole summary."""
    lines = ["", "== manifest =="]
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        lines.append(
            f"  WARNING: unreadable manifest ({exc}) — partial summary"
        )
        return lines
    if not isinstance(manifest, dict):
        lines.append(
            "  WARNING: malformed manifest (not a JSON object) — "
            "partial summary"
        )
        return lines
    problems = validate_manifest(manifest)
    argv = manifest.get("argv") or []
    if not isinstance(argv, list):
        argv = [argv]
    lines.append(
        f"  command: {manifest.get('command')}  "
        f"argv: {' '.join(str(a) for a in argv)}"
    )
    lines.append(
        f"  config: {manifest.get('config')} "
        f"[{manifest.get('config_fingerprint')}]  "
        f"seed: {manifest.get('seed')}  quick: {manifest.get('quick')}  "
        f"jobs: {manifest.get('n_jobs')}"
    )
    lines.append(
        f"  cache_format: {manifest.get('cache_format')}  "
        f"git: {manifest.get('git_rev') or 'n/a'}  "
        f"python: {manifest.get('python')}"
    )
    try:
        duration = float(manifest.get("duration_s") or 0.0)
    except (TypeError, ValueError):
        duration = 0.0
    lines.append(
        f"  started: {manifest.get('started_at')}  "
        f"duration: {duration:.3f}s"
    )
    if not manifest.get("finished_at"):
        lines.append(
            "  WARNING: run did not finish cleanly (no finished_at); "
            "per-phase timings may be missing — partial summary"
        )
    listed = manifest.get("files") or []
    if isinstance(listed, list):
        absent = [
            str(name) for name in listed
            if not (manifest_path.parent / str(name)).is_file()
        ]
        if absent:
            lines.append(
                f"  WARNING: listed file(s) absent: {', '.join(absent)} "
                "— partial summary"
            )
        if "trace.chrome.json" not in listed:
            lines.append(
                "  WARNING: no Chrome/Perfetto export recorded "
                "(failure-path run?)"
            )
    if problems:
        lines.append(f"  INCOMPLETE: missing/invalid fields {problems}")
    return lines


def summarize(target: str | Path, root: Path | None = None) -> str:
    """Render the human summary of one traced run."""
    trace_path = resolve_trace_path(target, root=root)
    header, events = load_trace(trace_path)
    lines = [f"trace: {trace_path}  (run {header.get('run_id', '?')}, "
             f"{len(events)} events)"]

    manifest_path = trace_path.parent / MANIFEST_FILENAME
    if manifest_path.is_file():
        lines.extend(_manifest_section(manifest_path))
    else:
        lines.append(f"  (no {MANIFEST_FILENAME} next to the trace)")

    phases = span_totals(events, tid=0)
    lines.append("")
    lines.append("== phases (wall) ==")
    if phases:
        for name, slot in sorted(
            phases.items(), key=lambda kv: -kv[1]["total_s"]
        ):
            lines.append(
                f"  {_fmt_s(slot['total_s'])}  x{slot['count']:<4d} {name}"
            )
    else:
        lines.append("  (no host spans recorded)")

    jobs = job_stats(events)
    if jobs["count"]:
        lines.append("")
        lines.append("== sweep jobs ==")
        lines.append(
            f"  {jobs['count']} jobs on {jobs['workers']} worker(s): "
            f"total {jobs['total_s']:.3f}s, mean {jobs['mean_s']:.3f}s, "
            f"max {jobs['max_s']:.3f}s, queue wait {jobs['queue_wait_s']:.3f}s"
        )

    timelines = window_timelines(events)
    if timelines:
        lines.append("")
        lines.append("== per-app window timelines (cycles) ==")
        for (workload, scheme, app), samples in sorted(timelines.items()):
            n = len(samples)
            means = {
                key: sum(s[1].get(key, 0.0) for s in samples) / n
                for key in ("eb", "bw", "cmr")
            }
            first_eb = samples[0][1].get("eb", 0.0)
            last_eb = samples[-1][1].get("eb", 0.0)
            lines.append(
                f"  {workload} {scheme} app{app}: {n} windows "
                f"[{samples[0][0]:.0f}..{samples[-1][0]:.0f}]  "
                f"EB {first_eb:.3f}->{last_eb:.3f} (mean {means['eb']:.3f})  "
                f"BW mean {means['bw']:.3f}  CMR mean {means['cmr']:.3f}"
            )

    decisions = decision_log(events)
    if decisions:
        lines.append("")
        lines.append("== controller decision log ==")
        for (workload, scheme), entries in sorted(decisions.items()):
            samples = [d for d in entries if d["kind"] == "sample"]
            settled = [d for d in entries if d["kind"] == "settled"]
            kinds: dict[str, int] = {}
            for d in entries:
                kinds[d["kind"]] = kinds.get(d["kind"], 0) + 1
            kind_s = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
            lines.append(
                f"  {workload} {scheme}: {len(entries)} decisions "
                f"({kind_s})"
            )
            for d in samples:
                combo = tuple(d.get("combo", ()))
                obj = d.get("objective")
                obj_s = f"{obj:.4f}" if isinstance(obj, (int, float)) else "?"
                lines.append(
                    f"    @{d['cycle']:>10.0f}  sample {combo}  obj={obj_s}"
                )
            for d in entries:
                if d["kind"] in ("criticality", "final"):
                    detail = {
                        k: v for k, v in d.items() if k not in ("kind", "cycle")
                    }
                    lines.append(
                        f"    @{d['cycle']:>10.0f}  {d['kind']}: {detail}"
                    )
            for d in settled:
                lines.append(
                    f"    @{d['cycle']:>10.0f}  settled on "
                    f"{tuple(d.get('combo', ()))} after "
                    f"{d.get('n_samples', '?')} samples"
                )

    metrics = None
    if manifest_path.is_file():
        try:
            loaded = json.loads(manifest_path.read_text())
            if isinstance(loaded, dict):
                metrics = loaded.get("metrics")
        except (OSError, json.JSONDecodeError):
            metrics = None
    engine = engine_counters(metrics)
    if engine["counters"] or engine["gauges"]:
        lines.append("")
        lines.append("== engine counters ==")
        for name, value in engine["counters"].items():
            lines.append(f"  {name:<36} {value:>14,.0f}")
        for name, value in engine["gauges"].items():
            lines.append(f"  {name:<36} {value:>14,.0f}  (high water)")

    live = live_stream_stats(trace_path.parent)
    if live is not None:
        lines.append("")
        lines.append("== live stream ==")
        type_s = ", ".join(f"{k}={n}" for k, n in live["types"].items())
        lines.append(
            f"  {live['records']} records ({type_s or 'none'})  "
            f"dropped={live['dropped']}  invalid={live['invalid']}"
        )

    return "\n".join(lines)
