"""Atomic file publication and JSONL parsing for observability artifacts.

:func:`atomic_write_text` is the canonical implementation behind lint
rule R006's sanctioned write path: it historically lived in
:mod:`repro.experiments.common`, which still re-exports it, but the
implementation sits here so the observability layer (a leaf package
that ``repro.sim`` / ``repro.core`` / ``repro.exec`` may all import)
never depends upward on the experiment harness.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path

__all__ = ["JsonlAppender", "append_jsonl", "atomic_write_text", "read_jsonl"]


def atomic_write_text(path: Path, text: str) -> None:
    """Atomically publish ``text`` at ``path``.

    The one sanctioned way to write a file under ``results/`` (lint rule
    R006): the text streams into a uniquely named temp file in the same
    directory (pid + random suffix, so concurrent writers never collide)
    and is published with an atomic ``os.replace``.  Readers see either
    a complete old version or a complete new one, never a torn file.
    """
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


class JsonlAppender:
    """A single-writer, line-at-a-time JSONL sink.

    Streaming sinks (the live NDJSON telemetry feed, the bench-history
    ledger) cannot use :func:`atomic_write_text` — their value is that a
    reader can tail the file *while* it grows.  The safety story is
    different but equally deliberate: exactly one process (and in it,
    one thread) owns the handle, every record is written as one
    ``write()`` of a complete line and flushed, so a concurrent reader
    observes only whole lines (plus at most one partial trailing line,
    which tail-followers must re-read — :func:`iter_complete_lines`-style
    consumers in :mod:`repro.obs.dashboard` do).

    This class lives here, next to :func:`atomic_write_text`, so the
    lint rules' write-ownership story stays in one sanctioned module.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self.count = 0

    def append(self, record: dict) -> None:
        """Write one record as a complete, flushed JSON line."""
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        self.count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def append_jsonl(path: Path, record: dict) -> None:
    """Append one record to a JSONL ledger (open-append-flush-close)."""
    with JsonlAppender(path) as sink:
        sink.append(record)


def read_jsonl(path: Path) -> list[dict]:
    """Parse a JSONL file into a list of objects (blank lines skipped)."""
    records: list[dict] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid JSONL: {exc}") from exc
    return records
