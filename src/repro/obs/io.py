"""Atomic file publication and JSONL parsing for observability artifacts.

:func:`atomic_write_text` is the canonical implementation behind lint
rule R006's sanctioned write path: it historically lived in
:mod:`repro.experiments.common`, which still re-exports it, but the
implementation sits here so the observability layer (a leaf package
that ``repro.sim`` / ``repro.core`` / ``repro.exec`` may all import)
never depends upward on the experiment harness.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path

__all__ = ["atomic_write_text", "read_jsonl"]


def atomic_write_text(path: Path, text: str) -> None:
    """Atomically publish ``text`` at ``path``.

    The one sanctioned way to write a file under ``results/`` (lint rule
    R006): the text streams into a uniquely named temp file in the same
    directory (pid + random suffix, so concurrent writers never collide)
    and is published with an atomic ``os.replace``.  Readers see either
    a complete old version or a complete new one, never a torn file.
    """
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def read_jsonl(path: Path) -> list[dict]:
    """Parse a JSONL file into a list of objects (blank lines skipped)."""
    records: list[dict] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid JSONL: {exc}") from exc
    return records
