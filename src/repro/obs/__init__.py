"""repro.obs — structured tracing, metrics, and run manifests.

A *leaf* package: stdlib-only, imported freely from ``repro.sim``,
``repro.core``, ``repro.exec``, and ``repro.experiments`` without
creating layering violations (lint rule R004) or import cycles.

* :mod:`repro.obs.trace` — span/instant/counter events in two clock
  domains (host wall time, simulated cycles), JSONL serialization.
* :mod:`repro.obs.metrics` — ambient counters/gauges/timers/timelines.
* :mod:`repro.obs.chrome` — Chrome trace-event export for Perfetto.
* :mod:`repro.obs.manifest` — per-run provenance manifests.
* :mod:`repro.obs.summarize` — offline ``repro trace summarize``.
* :mod:`repro.obs.io` — atomic file publication and JSONL reading.
"""

from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.io import atomic_write_text, read_jsonl
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    REQUIRED_FIELDS,
    RunManifest,
    config_fingerprint,
    git_revision,
    validate_manifest,
)
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.summarize import (
    decision_log,
    job_stats,
    resolve_trace_path,
    span_totals,
    summarize,
    window_timelines,
)
from repro.obs.trace import (
    CLOCK_CYCLES,
    CLOCK_WALL,
    Event,
    NullTracer,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    Tracer,
    get_tracer,
    load_trace,
    parse_events,
    set_tracer,
    tracing,
)

__all__ = [
    "CLOCK_CYCLES",
    "CLOCK_WALL",
    "Event",
    "MANIFEST_FILENAME",
    "MetricsRegistry",
    "NullTracer",
    "REQUIRED_FIELDS",
    "RunManifest",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "atomic_write_text",
    "chrome_trace",
    "config_fingerprint",
    "decision_log",
    "get_metrics",
    "get_tracer",
    "git_revision",
    "job_stats",
    "load_trace",
    "parse_events",
    "read_jsonl",
    "resolve_trace_path",
    "set_metrics",
    "set_tracer",
    "span_totals",
    "summarize",
    "tracing",
    "validate_manifest",
    "window_timelines",
    "write_chrome_trace",
]
