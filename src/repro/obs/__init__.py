"""repro.obs — structured tracing, metrics, manifests, live telemetry.

A *leaf* package: stdlib-only, imported freely from ``repro.sim``,
``repro.core``, ``repro.exec``, and ``repro.experiments`` without
creating layering violations (lint rule R004) or import cycles.  Two
modules are the exception to "freely": :mod:`repro.obs.live` and
:mod:`repro.obs.dashboard` sit *above* the simulator — they consume its
outputs — so R004 forbids ``repro.sim`` from importing them (the engine
reaches observability only through the tracer/metrics seam).

* :mod:`repro.obs.trace` — span/instant/counter events in two clock
  domains (host wall time, simulated cycles), JSONL serialization.
* :mod:`repro.obs.metrics` — ambient counters/gauges/timers/timelines,
  with cross-process ``merge()`` for worker snapshots.
* :mod:`repro.obs.live` — real-time NDJSON telemetry: worker publishers,
  the parent-side collector, schema validation, profiling frames.
* :mod:`repro.obs.dashboard` — live TTY dashboard / ``repro watch``.
* :mod:`repro.obs.bench` — perf-history ledger for ``bench history``.
* :mod:`repro.obs.chrome` — Chrome trace-event export for Perfetto.
* :mod:`repro.obs.manifest` — per-run provenance manifests.
* :mod:`repro.obs.summarize` — offline ``repro trace summarize``.
* :mod:`repro.obs.io` — atomic file publication and JSONL reading.
"""

from repro.obs.bench import (
    append_bench_history,
    load_bench_baseline,
    load_bench_history,
    render_bench_history,
)
from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.dashboard import Dashboard, LiveState, render_lines, watch
from repro.obs.io import JsonlAppender, append_jsonl, atomic_write_text, read_jsonl
from repro.obs.live import (
    LIVE_SCHEMA,
    LIVE_SCHEMA_VERSION,
    LiveHub,
    NullPublisher,
    QueuePublisher,
    get_publisher,
    live_header,
    load_live,
    parse_live,
    profile_frames,
    result_records,
    set_publisher,
    validate_live_record,
)
from repro.obs.manifest import (
    MANIFEST_FILENAME,
    REQUIRED_FIELDS,
    RunManifest,
    config_fingerprint,
    git_revision,
    validate_manifest,
)
from repro.obs.metrics import (
    MetricsRegistry,
    TimelinePoint,
    get_metrics,
    set_metrics,
)
from repro.obs.summarize import (
    decision_log,
    job_stats,
    resolve_trace_path,
    span_totals,
    summarize,
    summary_data,
    window_timelines,
)
from repro.obs.trace import (
    CLOCK_CYCLES,
    CLOCK_WALL,
    Event,
    NullTracer,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    Tracer,
    get_tracer,
    load_trace,
    parse_events,
    set_tracer,
    tracing,
)

__all__ = [
    "CLOCK_CYCLES",
    "CLOCK_WALL",
    "Dashboard",
    "Event",
    "JsonlAppender",
    "LIVE_SCHEMA",
    "LIVE_SCHEMA_VERSION",
    "LiveHub",
    "LiveState",
    "MANIFEST_FILENAME",
    "MetricsRegistry",
    "NullPublisher",
    "NullTracer",
    "QueuePublisher",
    "REQUIRED_FIELDS",
    "RunManifest",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TimelinePoint",
    "Tracer",
    "append_bench_history",
    "append_jsonl",
    "atomic_write_text",
    "chrome_trace",
    "config_fingerprint",
    "decision_log",
    "get_metrics",
    "get_publisher",
    "get_tracer",
    "git_revision",
    "job_stats",
    "live_header",
    "load_bench_baseline",
    "load_bench_history",
    "load_live",
    "load_trace",
    "parse_events",
    "parse_live",
    "profile_frames",
    "read_jsonl",
    "render_bench_history",
    "render_lines",
    "resolve_trace_path",
    "result_records",
    "set_metrics",
    "set_publisher",
    "set_tracer",
    "span_totals",
    "summarize",
    "summary_data",
    "validate_live_record",
    "validate_manifest",
    "watch",
    "window_timelines",
    "write_chrome_trace",
]
