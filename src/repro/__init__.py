"""repro — reproduction of "Efficient and Fair Multi-programming in GPUs
via Effective Bandwidth Management" (HPCA 2018).

Quickstart::

    from repro import (
        medium_config, app_by_abbr, profile_alone, profile_surface,
        evaluate_scheme,
    )

    cfg = medium_config()
    apps = [app_by_abbr("BLK"), app_by_abbr("TRD")]
    alone = [profile_alone(cfg, a, cfg.n_cores // 2) for a in apps]
    surface = profile_surface(cfg, apps)
    pbs = evaluate_scheme(cfg, apps, "pbs-ws", alone, surface)
    base = evaluate_scheme(cfg, apps, "besttlp", alone, surface)
    print(f"PBS-WS improves WS by {pbs.ws / base.ws - 1:+.1%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured comparison of every table and figure.
"""

from repro.config import (
    MAX_TLP,
    TLP_LEVELS,
    CacheGeometry,
    DRAMTimings,
    GPUConfig,
    medium_config,
    paper_config,
    small_config,
)
from repro.core.controller import StaticController, TLPController
from repro.core.ccws import CCWSController
from repro.core.dyncta import DynCTAController
from repro.core.modbypass import ModBypassController
from repro.core.offline import (
    brute_force_search,
    oracle_search,
    pbs_offline_search,
    sampled_scale,
)
from repro.core.pbs import PBSController, SearchLog, pbs_search
from repro.core.runner import (
    ALL_SCHEMES,
    AloneProfile,
    RunLengths,
    SchemeResult,
    alone_from_sweep,
    evaluate_scheme,
    profile_alone,
    profile_surface,
    run_combo,
)
from repro.core.tlp import all_combos, clamp_level, level_down, level_up
from repro.exec import JobError, SimJob, resolve_jobs, run_jobs, run_sim_job
from repro.metrics.bandwidth import (
    alone_ratio,
    combined_miss_rate,
    eb_fi,
    eb_hs,
    eb_objective,
    eb_ws,
    effective_bandwidth,
)
from repro.metrics.slowdown import (
    fairness_index,
    harmonic_speedup,
    sd_objective,
    slowdown,
    weighted_speedup,
)
from repro.sim.engine import SimResult, Simulator
from repro.sim.stats import WindowSample
from repro.workloads.generator import (
    EVALUATED_PAIRS,
    REPRESENTATIVE_PAIRS,
    all_pairs,
    pair,
    triple,
    workload_name,
)
from repro.workloads.phases import PhasedProfile
from repro.workloads.synthetic import AppProfile, WarpAddressStream
from repro.workloads.table4 import APPLICATIONS, app_by_abbr
from repro.workloads.trace import Trace, TraceProfile, record_trace

__version__ = "1.0.0"

__all__ = [
    # config
    "GPUConfig", "DRAMTimings", "CacheGeometry",
    "paper_config", "medium_config", "small_config",
    "TLP_LEVELS", "MAX_TLP",
    # simulator
    "Simulator", "SimResult", "WindowSample",
    # workloads
    "AppProfile", "WarpAddressStream", "APPLICATIONS", "app_by_abbr",
    "pair", "triple", "all_pairs", "workload_name",
    "REPRESENTATIVE_PAIRS", "EVALUATED_PAIRS",
    "PhasedProfile", "Trace", "TraceProfile", "record_trace",
    # metrics
    "slowdown", "weighted_speedup", "fairness_index", "harmonic_speedup",
    "sd_objective", "combined_miss_rate", "effective_bandwidth",
    "eb_ws", "eb_fi", "eb_hs", "eb_objective", "alone_ratio",
    # policies
    "TLPController", "StaticController", "PBSController", "pbs_search",
    "SearchLog", "DynCTAController", "CCWSController", "ModBypassController",
    "brute_force_search", "oracle_search", "pbs_offline_search",
    "sampled_scale",
    # runner
    "ALL_SCHEMES", "RunLengths", "AloneProfile", "SchemeResult",
    "profile_alone", "profile_surface", "run_combo", "evaluate_scheme",
    "alone_from_sweep",
    "all_combos", "clamp_level", "level_up", "level_down",
    # parallel execution
    "JobError", "SimJob", "resolve_jobs", "run_jobs", "run_sim_job",
]
