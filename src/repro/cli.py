"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``profile APP [APP...]``
    Alone-profile applications: bestTLP, IPC and EB per TLP level.

``run APP_A APP_B [--scheme S] [--seed N]``
    Evaluate one scheme on a two-application workload.

``compare APP_A APP_B [--schemes S1,S2,...]``
    Evaluate several schemes side by side on one workload.

``table4``
    Regenerate the Table IV characterization for the whole zoo.

``zoo``
    List the 26 applications and their memory-signature parameters.

``lint [PATHS...]``
    Run the repo's static invariant checker (:mod:`repro.devtools`)
    over the tree: determinism, cache-schema drift, layering, and
    friends.  See ``docs/devtools.md``.

``trace summarize RUN``
    Summarize a traced run (per-phase timings, per-app EB/BW/CMR
    window timelines, the controller decision log).  ``RUN`` is a run
    id under the trace directory, a run directory, or a trace file.
    See ``docs/observability.md``.

All simulation commands accept ``--config {paper,medium,small}``, ``--quick``
(short test-scale runs), ``--seed N`` and ``--jobs N`` (parallel
simulation workers; default ``$REPRO_JOBS``, else all cores) — before
or after the subcommand.  Heavy products are cached under ``results/``.
With ``--trace``, a run additionally writes a JSONL event trace, a
Chrome/Perfetto export, and a provenance manifest under
``results/traces/<run-id>/``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.config import GPUConfig, medium_config, paper_config, small_config
from repro.core.runner import ALL_SCHEMES, RunLengths
from repro.devtools.linter import add_arguments as lint_add_arguments
from repro.devtools.linter import run as lint_run
from repro.exec import resolve_jobs
from repro.experiments.common import CACHE_FORMAT, ExperimentContext
from repro.experiments.report import render_table
from repro.experiments.table4 import run_table4
from repro.obs.chrome import write_chrome_trace
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.summarize import summarize
from repro.obs.trace import Tracer, tracing
from repro.workloads.table4 import APPLICATIONS, app_by_abbr

__all__ = ["main", "build_parser"]

_CONFIGS = {
    "paper": paper_config,
    "medium": medium_config,
    "small": small_config,
}

#: Default home of traced runs; ``--trace-dir`` overrides it.
DEFAULT_TRACE_DIR = "results/traces"

#: Commands that run simulations (and therefore accept ``--trace``).
_SIM_COMMANDS = ("profile", "run", "compare", "table4")


def _add_common_options(parser: argparse.ArgumentParser, *, top: bool) -> None:
    """Add the global options to ``parser``.

    They are defined both on the top-level parser (with real defaults)
    and on every subparser (with ``SUPPRESS`` defaults, so a flag given
    before the subcommand is not clobbered), which lets users write
    either ``repro --quick compare A B`` or ``repro compare A B --quick``.
    """
    d = (lambda v: v) if top else (lambda v: argparse.SUPPRESS)
    parser.add_argument("--config", choices=sorted(_CONFIGS),
                        default=d("medium"),
                        help="GPU scale preset (default: medium)")
    parser.add_argument("--quick", action="store_true", default=d(False),
                        help="short test-scale simulations")
    parser.add_argument("--seed", type=int, default=d(1),
                        help="simulation seed")
    parser.add_argument("--jobs", type=int, default=d(None), metavar="N",
                        help="parallel simulation workers "
                        "(default: $REPRO_JOBS, else all cores; 1 = serial)")
    parser.add_argument("--trace", action="store_true", default=d(False),
                        help="record a structured trace of the run "
                        "(JSONL + Perfetto export + manifest)")
    parser.add_argument("--trace-dir", default=d(DEFAULT_TRACE_DIR),
                        metavar="DIR",
                        help=f"where traced runs are written "
                        f"(default: {DEFAULT_TRACE_DIR})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Effective-bandwidth TLP management for multi-programmed "
        "GPUs (HPCA 2018 reproduction)",
    )
    _add_common_options(parser, top=True)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_)
        _add_common_options(p, top=False)
        return p

    p_profile = add_command("profile", "alone-profile applications")
    p_profile.add_argument("apps", nargs="+", metavar="APP")

    p_run = add_command("run", "evaluate one scheme on a pair")
    p_run.add_argument("apps", nargs=2, metavar="APP")
    p_run.add_argument("--scheme", default="pbs-ws", choices=ALL_SCHEMES)

    p_compare = add_command("compare", "compare schemes on a pair")
    p_compare.add_argument("apps", nargs=2, metavar="APP")
    p_compare.add_argument(
        "--schemes",
        default="besttlp,maxtlp,dyncta,modbypass,pbs-ws,opt-ws",
        help="comma-separated scheme names",
    )

    add_command("table4", "regenerate the Table IV characterization")
    add_command("zoo", "list the application zoo")

    # lint has its own option set (no sim config/seed/jobs): it is the
    # static-analysis pass over the tree, not a simulation command.
    p_lint = sub.add_parser(
        "lint", help="check repo invariants (determinism, cache schema, ...)"
    )
    lint_add_arguments(p_lint)

    # trace inspects finished runs; it runs no simulations either.
    p_trace = sub.add_parser("trace", help="inspect traces of past runs")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize", help="summarize one traced run"
    )
    p_summarize.add_argument(
        "run", metavar="RUN",
        help="run id under the trace directory, a run directory, "
        "or a trace.jsonl path",
    )
    p_summarize.add_argument(
        "--trace-dir", default=DEFAULT_TRACE_DIR, metavar="DIR",
        help=f"where traced runs live (default: {DEFAULT_TRACE_DIR})",
    )
    return parser


def _print_progress(
    done: int, total: int, spec: object, elapsed: float = 0.0
) -> None:
    """Sweep-completion reporting: one updating line on a terminal.

    Writes carriage-return progress to *stderr* and only when stderr is
    a terminal, so piped/redirected output never fills with ``\\r``
    frames.  The fourth argument opts into the pool's per-job timing
    (see :data:`repro.exec.ProgressFn`).
    """
    if not sys.stderr.isatty():
        return
    tag = getattr(spec, "tag", None)
    label = " ".join(str(p) for p in tag) if tag else ""
    timing = f" {elapsed:5.1f}s" if elapsed else ""
    end = "\n" if done == total else ""
    print(f"\r  [{done}/{total}] {label:<40.40s}{timing}", end=end,
          file=sys.stderr, flush=True)


def _context(args: argparse.Namespace) -> ExperimentContext:
    config: GPUConfig = _CONFIGS[args.config]()
    lengths = RunLengths.quick() if args.quick else RunLengths()
    progress = _print_progress if sys.stderr.isatty() else None
    # Resolve eagerly so a bad --jobs / $REPRO_JOBS fails before any
    # simulation starts, with a clean error instead of a mid-sweep one.
    n_jobs = resolve_jobs(args.jobs)
    return ExperimentContext(config=config, lengths=lengths, seed=args.seed,
                             n_jobs=n_jobs, progress=progress)


def _cmd_profile(args: argparse.Namespace) -> int:
    ctx = _context(args)
    for abbr in args.apps:
        profile = ctx.alone(app_by_abbr(abbr))
        rows = [
            (lv, s.ipc, s.bw, s.cmr, s.eb,
             "<- bestTLP" if lv == profile.best_tlp else "")
            for lv, s in sorted(profile.sweep.items())
        ]
        print(render_table(
            ("TLP", "IPC", "BW", "CMR", "EB", ""),
            rows,
            title=f"{profile.abbr}: alone profile "
            f"(bestTLP={profile.best_tlp})",
        ))
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ctx = _context(args)
    apps = ctx.pair_apps(*args.apps)
    result = ctx.scheme(apps, args.scheme)
    print(render_table(
        ("metric", "value"),
        [
            ("TLP combo", str(result.combo)),
            ("WS", result.ws),
            ("FI", result.fi),
            ("HS", result.hs),
            (f"SD-{args.apps[0]}", result.sds[0]),
            (f"SD-{args.apps[1]}", result.sds[1]),
            (f"EB-{args.apps[0]}", result.ebs[0]),
            (f"EB-{args.apps[1]}", result.ebs[1]),
        ],
        title=f"{result.workload} under {args.scheme}",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ctx = _context(args)
    apps = ctx.pair_apps(*args.apps)
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    unknown = [s for s in schemes if s not in ALL_SCHEMES]
    if unknown:
        print(f"unknown schemes: {', '.join(unknown)}", file=sys.stderr)
        return 2
    results = ctx.schemes(apps, schemes)
    rows = [
        (scheme, str(r.combo), r.ws, r.fi, r.hs)
        for scheme, r in results.items()
    ]
    print(render_table(
        ("scheme", "combo", "WS", "FI", "HS"),
        rows,
        title=f"scheme comparison on {'_'.join(args.apps)}",
    ))
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    print(run_table4(_context(args)).render())
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    rows = [
        (p.abbr, p.r_m, p.coalesce, "yes" if p.divergent else "no",
         p.footprint_lines, p.p_reuse, p.p_seq, p.shared_frac)
        for p in APPLICATIONS
    ]
    print(render_table(
        ("app", "r_m", "coal", "div", "footprint", "reuse", "seq", "shared"),
        rows,
        title="Table IV application zoo (synthetic memory signatures)",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    target: str | Path = args.run
    candidate = Path(args.trace_dir) / args.run
    if not Path(args.run).exists() and candidate.exists():
        target = candidate
    print(summarize(target))
    return 0


_COMMANDS = {
    "profile": _cmd_profile,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "table4": _cmd_table4,
    "zoo": _cmd_zoo,
    "lint": lint_run,
    "trace": _cmd_trace,
}


def _run_traced(args: argparse.Namespace, argv: list[str]) -> int:
    """Run a simulation command with the tracer installed.

    Produces ``<trace-dir>/<run-id>/`` holding the JSONL trace, its
    Chrome/Perfetto export, and the provenance manifest.  The manifest
    is written even when the command fails: a crashed run's partial
    trace is exactly the one worth inspecting.
    """
    run_id = (
        f"{args.command}-{time.strftime('%Y%m%d-%H%M%S')}-seed{args.seed}"
    )
    out_dir = Path(args.trace_dir) / run_id
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest = RunManifest.start(
        run_id=run_id,
        command=args.command,
        argv=argv,
        config_name=args.config,
        config_dict=dataclasses.asdict(_CONFIGS[args.config]()),
        seed=args.seed,
        quick=args.quick,
        n_jobs=resolve_jobs(args.jobs),
        cache_format=CACHE_FORMAT,
        repo_root=Path(__file__).resolve().parents[2],
    )
    tracer = Tracer(run_id)
    # A fresh metrics registry isolates this run's counters (cache
    # hits/misses, timers) from anything else in the process.
    previous_metrics = set_metrics(MetricsRegistry())
    try:
        with tracing(tracer):
            code = _COMMANDS[args.command](args)
    finally:
        metrics_snapshot = get_metrics().snapshot()
        set_metrics(previous_metrics)
        trace_path = out_dir / "trace.jsonl"
        chrome_path = out_dir / "trace.chrome.json"
        written: list[str] = []
        try:
            tracer.write(trace_path)
            written.append(trace_path.name)
            write_chrome_trace(chrome_path, tracer.events, run_id)
            written.append(chrome_path.name)
        finally:
            # The manifest goes out even when an export step fails:
            # ``files`` then records what actually landed on disk, and
            # ``repro trace summarize`` degrades to a partial summary.
            manifest.finish(
                phases=tracer.phase_totals(),
                metrics=metrics_snapshot,
                files=sorted(written),
            )
            manifest.write(out_dir)
            print(f"trace written to {out_dir}", file=sys.stderr)
    return code


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(argv)
    try:
        if args.command in _SIM_COMMANDS and getattr(args, "trace", False):
            return _run_traced(args, argv)
        return _COMMANDS[args.command](args)
    except KeyError as exc:  # unknown application abbreviation
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # bad --jobs / $REPRO_JOBS value
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:  # missing trace/run to summarize
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
