"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``profile APP [APP...]``
    Alone-profile applications: bestTLP, IPC and EB per TLP level.

``run APP_A APP_B [--scheme S] [--seed N]``
    Evaluate one scheme on a two-application workload.

``compare APP_A APP_B [--schemes S1,S2,...]``
    Evaluate several schemes side by side on one workload.

``sim open --scenario NAME [--policy P]``
    Run an open-system scenario: applications arrive and depart mid-run
    while a registered scheduler policy (see ``docs/policies.md``)
    adapts.  Reports time-weighted WS/FI/HS over the churning roster
    and the roster timeline.

``table4``
    Regenerate the Table IV characterization for the whole zoo.

``zoo``
    List the 26 applications and their memory-signature parameters.

``lint [PATHS...]``
    Run the repo's static invariant checker (:mod:`repro.devtools`)
    over the tree: determinism, cache-schema drift, layering, and
    friends.  See ``docs/devtools.md``.

``trace summarize RUN``
    Summarize a traced run (per-phase timings, per-app EB/BW/CMR
    window timelines, the controller decision log).  ``RUN`` is a run
    id under the trace directory, a run directory, or a trace file.
    ``--json`` emits the same summary machine-readably.
    See ``docs/observability.md``.

``watch RUN``
    Follow the live dashboard of a running (or finished) traced sweep
    by tailing its ``live.ndjson`` stream.

``bench history``
    Render the engine benchmark trend from ``results/bench_history.jsonl``
    against the committed ``BENCH_engine.json`` baseline.

All simulation commands accept ``--config {paper,medium,small}``, ``--quick``
(short test-scale runs), ``--seed N`` and ``--jobs N`` (parallel
simulation workers; default ``$REPRO_JOBS``, else all cores) — before
or after the subcommand.  Heavy products are cached under ``results/``.
With ``--trace``, a run additionally writes a JSONL event trace, a
Chrome/Perfetto export, a live NDJSON telemetry stream, and a
provenance manifest under ``results/traces/<run-id>/``.  ``--watch``
(live dashboard) and ``--profile`` (cProfile worker jobs + engine
self-profiling counters) both imply ``--trace``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.config import GPUConfig, medium_config, paper_config, small_config
from repro.core.runner import ALL_SCHEMES, RunLengths
from repro.devtools.linter import add_arguments as lint_add_arguments
from repro.devtools.linter import run as lint_run
from repro.exec import ProgressThrottle, resolve_jobs
from repro.experiments.common import CACHE_FORMAT, ExperimentContext
from repro.experiments.open_system import SCENARIOS, run_open_scenario
from repro.experiments.report import render_table
from repro.experiments.table4 import run_table4
from repro.obs.bench import (
    load_bench_baseline,
    load_bench_history,
    render_bench_history,
)
from repro.obs.chrome import write_chrome_trace
from repro.obs.dashboard import Dashboard
from repro.obs.dashboard import watch as watch_live
from repro.obs.live import LiveHub, set_publisher
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.summarize import summarize, summary_data
from repro.obs.trace import Tracer, tracing
from repro.sim import set_engine_profiling
from repro.workloads.table4 import APPLICATIONS, app_by_abbr

__all__ = ["main", "build_parser"]

_CONFIGS = {
    "paper": paper_config,
    "medium": medium_config,
    "small": small_config,
}

#: Default home of traced runs; ``--trace-dir`` overrides it.
DEFAULT_TRACE_DIR = "results/traces"

#: Commands that run simulations (and therefore accept ``--trace``).
_SIM_COMMANDS = ("profile", "run", "compare", "table4", "sim")


def _add_common_options(parser: argparse.ArgumentParser, *, top: bool) -> None:
    """Add the global options to ``parser``.

    They are defined both on the top-level parser (with real defaults)
    and on every subparser (with ``SUPPRESS`` defaults, so a flag given
    before the subcommand is not clobbered), which lets users write
    either ``repro --quick compare A B`` or ``repro compare A B --quick``.
    """
    d = (lambda v: v) if top else (lambda v: argparse.SUPPRESS)
    parser.add_argument("--config", choices=sorted(_CONFIGS),
                        default=d("medium"),
                        help="GPU scale preset (default: medium)")
    parser.add_argument("--quick", action="store_true", default=d(False),
                        help="short test-scale simulations")
    parser.add_argument("--seed", type=int, default=d(1),
                        help="simulation seed")
    parser.add_argument("--jobs", type=int, default=d(None), metavar="N",
                        help="parallel simulation workers "
                        "(default: $REPRO_JOBS, else all cores; 1 = serial)")
    parser.add_argument("--trace", action="store_true", default=d(False),
                        help="record a structured trace of the run "
                        "(JSONL + Perfetto export + manifest)")
    parser.add_argument("--trace-dir", default=d(DEFAULT_TRACE_DIR),
                        metavar="DIR",
                        help=f"where traced runs are written "
                        f"(default: {DEFAULT_TRACE_DIR})")
    parser.add_argument("--watch", action="store_true", default=d(False),
                        help="render a live telemetry dashboard while the "
                        "run executes (implies --trace)")
    parser.add_argument("--profile", action="store_true", default=d(False),
                        help="profile worker jobs with cProfile and enable "
                        "engine self-profiling counters (implies --trace)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Effective-bandwidth TLP management for multi-programmed "
        "GPUs (HPCA 2018 reproduction)",
    )
    _add_common_options(parser, top=True)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_)
        _add_common_options(p, top=False)
        return p

    p_profile = add_command("profile", "alone-profile applications")
    p_profile.add_argument("apps", nargs="+", metavar="APP")

    p_run = add_command("run", "evaluate one scheme on a pair")
    p_run.add_argument("apps", nargs=2, metavar="APP")
    p_run.add_argument("--scheme", default="pbs-ws", choices=ALL_SCHEMES)

    p_compare = add_command("compare", "compare schemes on a pair")
    p_compare.add_argument("apps", nargs=2, metavar="APP")
    p_compare.add_argument(
        "--schemes",
        default="besttlp,maxtlp,dyncta,modbypass,pbs-ws,opt-ws",
        help="comma-separated scheme names",
    )

    p_sim = add_command("sim", "open-system simulation runs")
    sim_sub = p_sim.add_subparsers(dest="sim_command", required=True)
    p_open = sim_sub.add_parser(
        "open", help="run an open-system arrival/departure scenario"
    )
    _add_common_options(p_open, top=False)
    p_open.add_argument(
        "--scenario", default="two-phase", choices=sorted(SCENARIOS),
        help="named scenario (default: two-phase)",
    )
    p_open.add_argument(
        "--policy", default="pbs-ws",
        help="registered scheduler policy (default: pbs-ws); "
        "see `repro sim open --list-policies`",
    )
    p_open.add_argument(
        "--list-policies", action="store_true",
        help="list registered policies and exit",
    )

    add_command("table4", "regenerate the Table IV characterization")
    add_command("zoo", "list the application zoo")

    # lint has its own option set (no sim config/seed/jobs): it is the
    # static-analysis pass over the tree, not a simulation command.
    p_lint = sub.add_parser(
        "lint", help="check repo invariants (determinism, cache schema, ...)"
    )
    lint_add_arguments(p_lint)

    # trace inspects finished runs; it runs no simulations either.
    p_trace = sub.add_parser("trace", help="inspect traces of past runs")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_summarize = trace_sub.add_parser(
        "summarize", help="summarize one traced run"
    )
    p_summarize.add_argument(
        "run", metavar="RUN",
        help="run id under the trace directory, a run directory, "
        "or a trace.jsonl path",
    )
    p_summarize.add_argument(
        "--trace-dir", default=DEFAULT_TRACE_DIR, metavar="DIR",
        help=f"where traced runs live (default: {DEFAULT_TRACE_DIR})",
    )
    p_summarize.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the summary as machine-readable JSON",
    )

    # watch follows the live stream of a traced run; no sim options.
    p_watch = sub.add_parser(
        "watch", help="follow the live dashboard of a traced run"
    )
    p_watch.add_argument(
        "run", metavar="RUN",
        help="run id under the trace directory, a run directory, "
        "or a live.ndjson path",
    )
    p_watch.add_argument(
        "--trace-dir", default=DEFAULT_TRACE_DIR, metavar="DIR",
        help=f"where traced runs live (default: {DEFAULT_TRACE_DIR})",
    )
    p_watch.add_argument(
        "--no-follow", action="store_true",
        help="replay what is on disk and exit instead of tailing",
    )
    p_watch.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="stop following after S seconds (default: wait for the end)",
    )

    # bench inspects the engine perf-history ledger.
    p_bench = sub.add_parser("bench", help="inspect engine benchmarks")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_history = bench_sub.add_parser(
        "history", help="render the bench trend vs the committed baseline"
    )
    p_history.add_argument(
        "--history", default="results/bench_history.jsonl", metavar="PATH",
        help="ledger appended by scripts/bench_report.py",
    )
    p_history.add_argument(
        "--baseline", default="BENCH_engine.json", metavar="PATH",
        help="committed baseline to diff against",
    )
    p_history.add_argument(
        "--mode", default=None, help="restrict to one bench mode"
    )
    p_history.add_argument(
        "--last", type=int, default=10, metavar="N",
        help="show the most recent N runs per mode (default: 10)",
    )
    return parser


class _ProgressPrinter:
    """Sweep-completion reporting: one updating line on a terminal.

    Writes carriage-return progress to *stderr* and only when stderr is
    a terminal, so piped/redirected output never fills with ``\\r``
    frames.  The fourth argument opts into the pool's per-job timing
    (see :data:`repro.exec.ProgressFn`), which also feeds the jobs/sec
    and ETA fields.  A ``done`` value at or below the previous call's
    marks the start of a new batch and re-anchors the rate clock.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._t0: float | None = None
        self._prev_done = 1 << 62

    def __call__(
        self, done: int, total: int, spec: object, elapsed: float = 0.0
    ) -> None:
        if not sys.stderr.isatty():
            return
        mark = self._clock()
        if self._t0 is None or done <= self._prev_done:
            # New batch: anchor the rate clock, backdated by this job's
            # own runtime so the first frame's rate is already sane.
            self._t0 = mark - (elapsed or 0.0)
        self._prev_done = done
        tag = getattr(spec, "tag", None)
        label = " ".join(str(p) for p in tag) if tag else ""
        timing = f" {elapsed:5.1f}s" if elapsed else ""
        extra = ""
        span = mark - self._t0
        if span > 0:
            rate = done / span
            extra = f" {rate:5.1f}/s"
            if done < total and rate > 0:
                eta = (total - done) / rate
                extra += f" ETA {eta:4.0f}s"
        end = "\n" if done == total else ""
        print(f"\r  [{done}/{total}] {label:<40.40s}{timing}{extra}",
              end=end, file=sys.stderr, flush=True)


#: The module-level hook tests and callers target; one shared instance
#: so consecutive batches in a run reuse the same rate state.
_print_progress = _ProgressPrinter()


def _context(args: argparse.Namespace) -> ExperimentContext:
    config: GPUConfig = _CONFIGS[args.config]()
    lengths = RunLengths.quick() if args.quick else RunLengths()
    if getattr(args, "watch", False):
        # The dashboard owns the terminal; a competing \r line would
        # tear its in-place repaints.
        progress = None
    elif sys.stderr.isatty():
        progress = ProgressThrottle(_print_progress)
    else:
        progress = None
    # Resolve eagerly so a bad --jobs / $REPRO_JOBS fails before any
    # simulation starts, with a clean error instead of a mid-sweep one.
    n_jobs = resolve_jobs(args.jobs)
    return ExperimentContext(config=config, lengths=lengths, seed=args.seed,
                             n_jobs=n_jobs, progress=progress)


def _cmd_profile(args: argparse.Namespace) -> int:
    ctx = _context(args)
    for abbr in args.apps:
        profile = ctx.alone(app_by_abbr(abbr))
        rows = [
            (lv, s.ipc, s.bw, s.cmr, s.eb,
             "<- bestTLP" if lv == profile.best_tlp else "")
            for lv, s in sorted(profile.sweep.items())
        ]
        print(render_table(
            ("TLP", "IPC", "BW", "CMR", "EB", ""),
            rows,
            title=f"{profile.abbr}: alone profile "
            f"(bestTLP={profile.best_tlp})",
        ))
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ctx = _context(args)
    apps = ctx.pair_apps(*args.apps)
    result = ctx.scheme(apps, args.scheme)
    print(render_table(
        ("metric", "value"),
        [
            ("TLP combo", str(result.combo)),
            ("WS", result.ws),
            ("FI", result.fi),
            ("HS", result.hs),
            (f"SD-{args.apps[0]}", result.sds[0]),
            (f"SD-{args.apps[1]}", result.sds[1]),
            (f"EB-{args.apps[0]}", result.ebs[0]),
            (f"EB-{args.apps[1]}", result.ebs[1]),
        ],
        title=f"{result.workload} under {args.scheme}",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ctx = _context(args)
    apps = ctx.pair_apps(*args.apps)
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    unknown = [s for s in schemes if s not in ALL_SCHEMES]
    if unknown:
        print(f"unknown schemes: {', '.join(unknown)}", file=sys.stderr)
        return 2
    results = ctx.schemes(apps, schemes)
    rows = [
        (scheme, str(r.combo), r.ws, r.fi, r.hs)
        for scheme, r in results.items()
    ]
    print(render_table(
        ("scheme", "combo", "WS", "FI", "HS"),
        rows,
        title=f"scheme comparison on {'_'.join(args.apps)}",
    ))
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    # Only `sim open` exists today; the subparser enforces that.
    from repro.core.policy import available_policies
    from repro.core.runner import emit_scheme_events

    if args.list_policies:
        for name in available_policies():
            print(name)
        return 0
    if args.policy not in available_policies():
        print(
            f"unknown policy {args.policy!r}; available: "
            f"{', '.join(available_policies())}",
            file=sys.stderr,
        )
        return 2
    ctx = _context(args)
    scenario = SCENARIOS[args.scenario]
    report = run_open_scenario(ctx, scenario, policy=args.policy)
    emit_scheme_events(report)
    print(render_table(
        ("metric", "value"),
        [
            ("arrivals", report.n_arrivals),
            ("departures", report.n_departures),
            ("epochs", len(report.epochs)),
            ("TW-WS", report.ws),
            ("TW-FI", report.fi),
            ("TW-HS", report.hs),
        ],
        title=f"open-system {scenario.name} under {args.policy}",
    ))
    if report.result.roster:
        print()
        print(render_table(
            ("cycle", "event", "app", "abbr", "roster", "cores"),
            [
                (int(r["cycle"]), r["event"], r["app"], r["abbr"],
                 ",".join(str(a) for a in r["roster"]),
                 ",".join(str(c) for c in r["cores"]))
                for r in report.result.roster
            ],
            title="roster timeline",
        ))
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    print(run_table4(_context(args)).render())
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    rows = [
        (p.abbr, p.r_m, p.coalesce, "yes" if p.divergent else "no",
         p.footprint_lines, p.p_reuse, p.p_seq, p.shared_frac)
        for p in APPLICATIONS
    ]
    print(render_table(
        ("app", "r_m", "coal", "div", "footprint", "reuse", "seq", "shared"),
        rows,
        title="Table IV application zoo (synthetic memory signatures)",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    target: str | Path = args.run
    candidate = Path(args.trace_dir) / args.run
    if not Path(args.run).exists() and candidate.exists():
        target = candidate
    if getattr(args, "as_json", False):
        print(json.dumps(summary_data(target), indent=2, sort_keys=True))
    else:
        print(summarize(target))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    path = Path(args.run)
    if path.is_file():
        live_path = path
    elif path.is_dir():
        live_path = path / "live.ndjson"
    else:
        live_path = Path(args.trace_dir) / args.run / "live.ndjson"
    if not live_path.is_file():
        raise FileNotFoundError(
            f"no live stream for {args.run!r} (tried {live_path})"
        )
    state = watch_live(
        live_path,
        follow=not args.no_follow,
        timeout_s=args.timeout,
        run_id=str(args.run),
    )
    return 0 if state.ended or args.no_follow else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    history_path = Path(args.history)
    if not history_path.is_file():
        raise FileNotFoundError(
            f"no bench history at {history_path} "
            "(scripts/bench_report.py appends to it)"
        )
    records = load_bench_history(history_path)
    baseline = load_bench_baseline(Path(args.baseline))
    print(
        render_bench_history(
            records, baseline=baseline, mode=args.mode, last=args.last
        ),
        end="",
    )
    return 0


_COMMANDS = {
    "profile": _cmd_profile,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "sim": _cmd_sim,
    "table4": _cmd_table4,
    "zoo": _cmd_zoo,
    "lint": lint_run,
    "trace": _cmd_trace,
    "watch": _cmd_watch,
    "bench": _cmd_bench,
}


def _run_traced(args: argparse.Namespace, argv: list[str]) -> int:
    """Run a simulation command with tracer + live telemetry installed.

    Produces ``<trace-dir>/<run-id>/`` holding the JSONL trace, its
    Chrome/Perfetto export, the ``live.ndjson`` telemetry stream, and
    the provenance manifest.  The manifest is written even when the
    command fails: a crashed run's partial trace is exactly the one
    worth inspecting.  ``--watch`` attaches a dashboard to the live
    stream in-process; ``--profile`` enables cProfile around worker
    jobs and the engine's self-profiling counters.
    """
    run_id = (
        f"{args.command}-{time.strftime('%Y%m%d-%H%M%S')}-seed{args.seed}"
    )
    out_dir = Path(args.trace_dir) / run_id
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest = RunManifest.start(
        run_id=run_id,
        command=args.command,
        argv=argv,
        config_name=args.config,
        config_dict=dataclasses.asdict(_CONFIGS[args.config]()),
        seed=args.seed,
        quick=args.quick,
        n_jobs=resolve_jobs(args.jobs),
        cache_format=CACHE_FORMAT,
        repo_root=Path(__file__).resolve().parents[2],
    )
    tracer = Tracer(run_id)
    profiled = getattr(args, "profile", False)
    # A fresh metrics registry isolates this run's counters (cache
    # hits/misses, timers) from anything else in the process.
    previous_metrics = set_metrics(MetricsRegistry())
    dashboard = (
        Dashboard(run_id=run_id) if getattr(args, "watch", False) else None
    )
    hub = LiveHub(
        run_id,
        out_dir / "live.ndjson",
        profile=profiled,
        on_record=dashboard.on_record if dashboard is not None else None,
    )
    previous_publisher = set_publisher(hub.publisher)
    previous_profiling = set_engine_profiling(True) if profiled else None
    written: list[str] = []
    try:
        with tracing(tracer):
            try:
                code = _COMMANDS[args.command](args)
            finally:
                set_publisher(previous_publisher)
                if previous_profiling is not None:
                    set_engine_profiling(previous_profiling)
                # Close the hub while the tracer and this run's metrics
                # registry are still ambient: the final drain merges the
                # last worker metric deltas into the run's registry and
                # folds profile frames into the trace being exported.
                hub.close()
                written.append("live.ndjson")
    finally:
        metrics_snapshot = get_metrics().snapshot()
        set_metrics(previous_metrics)
        trace_path = out_dir / "trace.jsonl"
        chrome_path = out_dir / "trace.chrome.json"
        try:
            tracer.write(trace_path)
            written.append(trace_path.name)
            write_chrome_trace(chrome_path, tracer.events, run_id)
            written.append(chrome_path.name)
        finally:
            # The manifest goes out even when an export step fails:
            # ``files`` then records what actually landed on disk, and
            # ``repro trace summarize`` degrades to a partial summary.
            manifest.finish(
                phases=tracer.phase_totals(),
                metrics=metrics_snapshot,
                files=sorted(written),
            )
            manifest.write(out_dir)
            print(f"trace written to {out_dir}", file=sys.stderr)
    return code


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(argv)
    try:
        traced = (
            getattr(args, "trace", False)
            or getattr(args, "watch", False)   # --watch implies --trace
            or getattr(args, "profile", False)  # --profile implies --trace
        )
        if args.command in _SIM_COMMANDS and traced:
            return _run_traced(args, argv)
        return _COMMANDS[args.command](args)
    except KeyError as exc:  # unknown application abbreviation
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # bad --jobs / $REPRO_JOBS value
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:  # missing trace/run to summarize
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
