"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``profile APP [APP...]``
    Alone-profile applications: bestTLP, IPC and EB per TLP level.

``run APP_A APP_B [--scheme S] [--seed N]``
    Evaluate one scheme on a two-application workload.

``compare APP_A APP_B [--schemes S1,S2,...]``
    Evaluate several schemes side by side on one workload.

``table4``
    Regenerate the Table IV characterization for the whole zoo.

``zoo``
    List the 26 applications and their memory-signature parameters.

``lint [PATHS...]``
    Run the repo's static invariant checker (:mod:`repro.devtools`)
    over the tree: determinism, cache-schema drift, layering, and
    friends.  See ``docs/devtools.md``.

All simulation commands accept ``--config {paper,medium,small}``, ``--quick``
(short test-scale runs), ``--seed N`` and ``--jobs N`` (parallel
simulation workers; default ``$REPRO_JOBS``, else all cores) — before
or after the subcommand.  Heavy products are cached under ``results/``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.config import GPUConfig, medium_config, paper_config, small_config
from repro.core.runner import ALL_SCHEMES, RunLengths
from repro.devtools.linter import add_arguments as lint_add_arguments
from repro.devtools.linter import run as lint_run
from repro.exec import resolve_jobs
from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table
from repro.experiments.table4 import run_table4
from repro.workloads.table4 import APPLICATIONS, app_by_abbr

__all__ = ["main", "build_parser"]

_CONFIGS = {
    "paper": paper_config,
    "medium": medium_config,
    "small": small_config,
}


def _add_common_options(parser: argparse.ArgumentParser, *, top: bool) -> None:
    """Add the global options to ``parser``.

    They are defined both on the top-level parser (with real defaults)
    and on every subparser (with ``SUPPRESS`` defaults, so a flag given
    before the subcommand is not clobbered), which lets users write
    either ``repro --quick compare A B`` or ``repro compare A B --quick``.
    """
    d = (lambda v: v) if top else (lambda v: argparse.SUPPRESS)
    parser.add_argument("--config", choices=sorted(_CONFIGS),
                        default=d("medium"),
                        help="GPU scale preset (default: medium)")
    parser.add_argument("--quick", action="store_true", default=d(False),
                        help="short test-scale simulations")
    parser.add_argument("--seed", type=int, default=d(1),
                        help="simulation seed")
    parser.add_argument("--jobs", type=int, default=d(None), metavar="N",
                        help="parallel simulation workers "
                        "(default: $REPRO_JOBS, else all cores; 1 = serial)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Effective-bandwidth TLP management for multi-programmed "
        "GPUs (HPCA 2018 reproduction)",
    )
    _add_common_options(parser, top=True)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_command(name: str, help_: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_)
        _add_common_options(p, top=False)
        return p

    p_profile = add_command("profile", "alone-profile applications")
    p_profile.add_argument("apps", nargs="+", metavar="APP")

    p_run = add_command("run", "evaluate one scheme on a pair")
    p_run.add_argument("apps", nargs=2, metavar="APP")
    p_run.add_argument("--scheme", default="pbs-ws", choices=ALL_SCHEMES)

    p_compare = add_command("compare", "compare schemes on a pair")
    p_compare.add_argument("apps", nargs=2, metavar="APP")
    p_compare.add_argument(
        "--schemes",
        default="besttlp,maxtlp,dyncta,modbypass,pbs-ws,opt-ws",
        help="comma-separated scheme names",
    )

    add_command("table4", "regenerate the Table IV characterization")
    add_command("zoo", "list the application zoo")

    # lint has its own option set (no sim config/seed/jobs): it is the
    # static-analysis pass over the tree, not a simulation command.
    p_lint = sub.add_parser(
        "lint", help="check repo invariants (determinism, cache schema, ...)"
    )
    lint_add_arguments(p_lint)
    return parser


def _print_progress(done: int, total: int, spec: object) -> None:
    """Sweep-completion reporting: one updating line on a terminal."""
    tag = getattr(spec, "tag", None)
    label = " ".join(str(p) for p in tag) if tag else ""
    end = "\n" if done == total else ""
    print(f"\r  [{done}/{total}] {label:<40.40s}", end=end,
          file=sys.stderr, flush=True)


def _context(args: argparse.Namespace) -> ExperimentContext:
    config: GPUConfig = _CONFIGS[args.config]()
    lengths = RunLengths.quick() if args.quick else RunLengths()
    progress = _print_progress if sys.stderr.isatty() else None
    # Resolve eagerly so a bad --jobs / $REPRO_JOBS fails before any
    # simulation starts, with a clean error instead of a mid-sweep one.
    n_jobs = resolve_jobs(args.jobs)
    return ExperimentContext(config=config, lengths=lengths, seed=args.seed,
                             n_jobs=n_jobs, progress=progress)


def _cmd_profile(args: argparse.Namespace) -> int:
    ctx = _context(args)
    for abbr in args.apps:
        profile = ctx.alone(app_by_abbr(abbr))
        rows = [
            (lv, s.ipc, s.bw, s.cmr, s.eb,
             "<- bestTLP" if lv == profile.best_tlp else "")
            for lv, s in sorted(profile.sweep.items())
        ]
        print(render_table(
            ("TLP", "IPC", "BW", "CMR", "EB", ""),
            rows,
            title=f"{profile.abbr}: alone profile "
            f"(bestTLP={profile.best_tlp})",
        ))
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ctx = _context(args)
    apps = ctx.pair_apps(*args.apps)
    result = ctx.scheme(apps, args.scheme)
    print(render_table(
        ("metric", "value"),
        [
            ("TLP combo", str(result.combo)),
            ("WS", result.ws),
            ("FI", result.fi),
            ("HS", result.hs),
            (f"SD-{args.apps[0]}", result.sds[0]),
            (f"SD-{args.apps[1]}", result.sds[1]),
            (f"EB-{args.apps[0]}", result.ebs[0]),
            (f"EB-{args.apps[1]}", result.ebs[1]),
        ],
        title=f"{result.workload} under {args.scheme}",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    ctx = _context(args)
    apps = ctx.pair_apps(*args.apps)
    schemes = [s.strip() for s in args.schemes.split(",") if s.strip()]
    unknown = [s for s in schemes if s not in ALL_SCHEMES]
    if unknown:
        print(f"unknown schemes: {', '.join(unknown)}", file=sys.stderr)
        return 2
    results = ctx.schemes(apps, schemes)
    rows = [
        (scheme, str(r.combo), r.ws, r.fi, r.hs)
        for scheme, r in results.items()
    ]
    print(render_table(
        ("scheme", "combo", "WS", "FI", "HS"),
        rows,
        title=f"scheme comparison on {'_'.join(args.apps)}",
    ))
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    print(run_table4(_context(args)).render())
    return 0


def _cmd_zoo(args: argparse.Namespace) -> int:
    rows = [
        (p.abbr, p.r_m, p.coalesce, "yes" if p.divergent else "no",
         p.footprint_lines, p.p_reuse, p.p_seq, p.shared_frac)
        for p in APPLICATIONS
    ]
    print(render_table(
        ("app", "r_m", "coal", "div", "footprint", "reuse", "seq", "shared"),
        rows,
        title="Table IV application zoo (synthetic memory signatures)",
    ))
    return 0


_COMMANDS = {
    "profile": _cmd_profile,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "table4": _cmd_table4,
    "zoo": _cmd_zoo,
    "lint": lint_run,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as exc:  # unknown application abbreviation
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # bad --jobs / $REPRO_JOBS value
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
