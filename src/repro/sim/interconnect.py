"""Crossbar interconnect model.

The paper's GPU uses a full crossbar between cores and memory
partitions (Table I).  Contention in such a crossbar appears at the
memory-partition ports, so we model each partition's request-injection
port and response-ejection port as rate-limited FIFO links: a packet
starts service no earlier than the port frees up, occupies the port for
``cycles_per_packet`` cycles, and is delivered ``latency`` cycles after
its service starts.

Request packets are small (a line address); response packets carry a
full 128-byte line and occupy the port for several cycles, which is what
bounds the return bandwidth that effective bandwidth (EB) measures at
the core side.
"""

from __future__ import annotations

from repro.config import GPUConfig
from repro.units import BytesPerCycle, Count, Cycles, Fraction

__all__ = ["Link", "Crossbar"]


class Link:
    """A rate-limited, fixed-latency FIFO link."""

    __slots__ = ("latency", "cycles_per_packet", "free_at", "packets",
                 "busy_cycles", "queue_cycles")

    def __init__(self, latency: Cycles, cycles_per_packet: Cycles) -> None:
        if cycles_per_packet <= 0:
            raise ValueError("cycles_per_packet must be positive")
        self.latency: Cycles = latency
        self.cycles_per_packet: Cycles = cycles_per_packet
        self.free_at: Cycles = 0.0
        self.packets: Count = 0
        self.busy_cycles: Cycles = 0.0
        self.queue_cycles: Cycles = 0.0

    def send(self, now: Cycles) -> Cycles:
        """Inject a packet at ``now``; returns its delivery time."""
        start = now if now > self.free_at else self.free_at
        self.free_at = start + self.cycles_per_packet
        self.packets += 1
        self.busy_cycles += self.cycles_per_packet
        self.queue_cycles += start - now
        return start + self.cycles_per_packet + self.latency

    def utilization(self, elapsed: Cycles) -> Fraction:
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0


class Crossbar:
    """Per-partition request and response ports of the crossbar."""

    #: data-bus width of one crossbar port, bytes per cycle
    PORT_BYTES_PER_CYCLE: BytesPerCycle = 32

    __slots__ = ("request_ports", "response_ports")

    def __init__(self, config: GPUConfig) -> None:
        rate = config.icnt_flits_per_cycle_per_port
        resp_cycles = config.line_bytes / (self.PORT_BYTES_PER_CYCLE * rate)
        self.request_ports = [
            Link(config.icnt_latency, 1.0 / rate) for _ in range(config.n_channels)
        ]
        self.response_ports = [
            Link(config.icnt_latency, resp_cycles) for _ in range(config.n_channels)
        ]

    def send_request(self, channel: int, now: Cycles) -> Cycles:
        """Core -> L2 slice; returns arrival time at the partition."""
        return self.request_ports[channel].send(now)

    def send_response(self, channel: int, now: Cycles) -> Cycles:
        """L2 slice -> core; returns arrival time at the core."""
        return self.response_ports[channel].send(now)
