"""Per-application statistics collection.

The paper's mechanisms consume exactly three runtime signals per
application — L1 miss rate, L2 miss rate, and attained DRAM bandwidth —
sampled over windows (Figure 8).  :class:`StatsCollector` maintains the
cumulative counters; :meth:`StatsCollector.window` returns the per-window
deltas as :class:`WindowSample` objects, from which BW, CMR and EB are
derived the same way the hardware PBS unit would compute them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.units import (
    Count,
    Cycles,
    Fraction,
    FractionOfPeak,
    Insts,
    Ipc,
    Lines,
    LinesPerCycle,
)

__all__ = ["AppStats", "WindowSample", "StatsCollector"]


@dataclass(slots=True)
class AppStats:
    """Cumulative counters for one application.

    Slotted: the engine increments these fields inline on every event,
    so the accumulator is kept a fixed-layout record.
    """

    insts: Insts = 0
    l1_accesses: Count = 0
    l1_misses: Count = 0
    l2_accesses: Count = 0
    l2_misses: Count = 0
    dram_lines: Lines = 0
    mem_requests: Count = 0
    mem_latency_sum: Cycles = 0.0
    row_hits: Count = 0
    row_misses: Count = 0

    def copy(self) -> "AppStats":
        return AppStats(*(getattr(self, f) for f in _APP_STAT_FIELDS))

    def delta(self, earlier: "AppStats") -> "AppStats":
        return AppStats(
            *(getattr(self, f) - getattr(earlier, f) for f in _APP_STAT_FIELDS)
        )


_APP_STAT_FIELDS = tuple(f.name for f in fields(AppStats))


@dataclass(frozen=True)
class WindowSample:
    """Derived per-application metrics over one observation window.

    ``bw`` is the attained DRAM bandwidth normalized to the theoretical
    peak (Table III); ``cmr`` is the product of L1 and L2 miss rates; and
    ``eb = bw / cmr`` is the paper's effective bandwidth.
    """

    app_id: int
    cycles: Cycles
    insts: Insts
    ipc: Ipc
    l1_miss_rate: Fraction
    l2_miss_rate: Fraction
    cmr: Fraction
    bw: FractionOfPeak
    eb: FractionOfPeak
    avg_mem_latency: Cycles
    row_hit_rate: Fraction

    @classmethod
    def from_counters(
        cls,
        app_id: int,
        counters: AppStats,
        cycles: Cycles,
        peak_lines_per_cycle: LinesPerCycle,
    ) -> "WindowSample":
        if cycles <= 0:
            raise ValueError("window must span a positive number of cycles")
        l1_mr = (
            counters.l1_misses / counters.l1_accesses if counters.l1_accesses else 1.0
        )
        l2_mr = (
            counters.l2_misses / counters.l2_accesses if counters.l2_accesses else 1.0
        )
        cmr = l1_mr * l2_mr
        bw = counters.dram_lines / cycles / peak_lines_per_cycle
        row_total = counters.row_hits + counters.row_misses
        return cls(
            app_id=app_id,
            cycles=cycles,
            insts=counters.insts,
            ipc=counters.insts / cycles,
            l1_miss_rate=l1_mr,
            l2_miss_rate=l2_mr,
            cmr=cmr,
            bw=bw,
            eb=bw / cmr if cmr > 0 else 0.0,
            avg_mem_latency=(
                counters.mem_latency_sum / counters.mem_requests
                if counters.mem_requests
                else 0.0
            ),
            row_hit_rate=(counters.row_hits / row_total) if row_total else 0.0,
        )


class StatsCollector:
    """Cumulative and windowed statistics for every application.

    The simulator engine calls the ``note_*`` methods on the relevant
    events; controllers read windows through :meth:`window` /
    :meth:`cut_window`.
    """

    def __init__(
        self, app_ids: list[int], peak_lines_per_cycle: LinesPerCycle
    ) -> None:
        self.peak_lines_per_cycle: LinesPerCycle = peak_lines_per_cycle
        self.apps: dict[int, AppStats] = {a: AppStats() for a in app_ids}
        self._window_base: dict[int, AppStats] = {a: AppStats() for a in app_ids}
        self._window_start: Cycles = 0.0
        self._measure_base: dict[int, AppStats] = {a: AppStats() for a in app_ids}
        self._measure_start: Cycles = 0.0

    @property
    def window_start(self) -> Cycles:
        """Cycle of the last window cut (tenancy seals check this)."""
        return self._window_start

    def add_app(self, app_id: int) -> None:
        """Open a fresh stats stream for an application attaching mid-run.

        Window and measurement bases start at zero, so an arrival's
        first window/measurement delta covers exactly what it did since
        attaching — nothing is inherited, nothing double-counted.
        """
        if app_id in self.apps:
            raise ValueError(f"app {app_id} already has a stats stream")
        self.apps[app_id] = AppStats()
        self._window_base[app_id] = AppStats()
        self._measure_base[app_id] = AppStats()

    # --- event hooks -------------------------------------------------------

    def note_insts(self, app_id: int, n: Insts) -> None:
        self.apps[app_id].insts += n

    def note_l1(self, app_id: int, hit: bool) -> None:
        s = self.apps[app_id]
        s.l1_accesses += 1
        if not hit:
            s.l1_misses += 1

    def note_l2(self, app_id: int, hit: bool) -> None:
        s = self.apps[app_id]
        s.l2_accesses += 1
        if not hit:
            s.l2_misses += 1

    def note_dram(self, app_id: int, row_hit: bool) -> None:
        s = self.apps[app_id]
        s.dram_lines += 1
        if row_hit:
            s.row_hits += 1
        else:
            s.row_misses += 1

    def note_mem_request(self, app_id: int, latency: Cycles) -> None:
        s = self.apps[app_id]
        s.mem_requests += 1
        s.mem_latency_sum += latency

    # --- windows -----------------------------------------------------------

    def cut_window(self, now: Cycles) -> dict[int, WindowSample]:
        """Return samples since the last cut and start a new window."""
        samples = self.window(now)
        self._window_base = {a: s.copy() for a, s in self.apps.items()}
        self._window_start = now
        return samples

    def window(self, now: Cycles) -> dict[int, WindowSample]:
        """Samples since the last cut, without resetting the window."""
        cycles = now - self._window_start
        return {
            a: WindowSample.from_counters(
                a, self.apps[a].delta(self._window_base[a]), cycles,
                self.peak_lines_per_cycle,
            )
            for a in self.apps
        }

    # --- measurement region (warmup exclusion) -----------------------------

    def start_measurement(self, now: Cycles) -> None:
        """Mark the beginning of the measured region (end of warmup)."""
        self._measure_base = {a: s.copy() for a, s in self.apps.items()}
        self._measure_start = now

    def measurement(self, now: Cycles) -> dict[int, WindowSample]:
        """Samples since :meth:`start_measurement` (whole measured run)."""
        cycles = now - self._measure_start
        return {
            a: WindowSample.from_counters(
                a, self.apps[a].delta(self._measure_base[a]), cycles,
                self.peak_lines_per_cycle,
            )
            for a in self.apps
        }
