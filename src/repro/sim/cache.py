"""Set-associative caches with LRU replacement, per-application statistics,
MSHR-style miss merging, and fill bypassing.

Both the per-core L1 data caches and the per-partition L2 slices are
instances of :class:`SetAssocCache`.  The cache itself is a pure state
machine (no notion of time); the simulator engine supplies timing.

Bypassing (used by the Mod+Bypass baseline, §VI) is a per-application
flag: a bypassed application's misses are still counted, but fills are
not installed, so it stops displacing the co-runner's lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import Bytes, BytesPerLine, Count, Fraction

__all__ = ["CacheStats", "SetAssocCache", "MSHRTable"]


@dataclass(slots=True)
class CacheStats:
    """Access/miss counters, totals and per-application."""

    accesses: Count = 0
    misses: Count = 0
    accesses_by_app: dict[int, int] = field(default_factory=dict)
    misses_by_app: dict[int, int] = field(default_factory=dict)

    def record(self, app_id: int, hit: bool) -> None:
        self.accesses += 1
        self.accesses_by_app[app_id] = self.accesses_by_app.get(app_id, 0) + 1
        if not hit:
            self.misses += 1
            self.misses_by_app[app_id] = self.misses_by_app.get(app_id, 0) + 1

    def miss_rate(self, app_id: int | None = None) -> Fraction:
        """Miss rate overall, or for one application.

        Returns 1.0 when there were no accesses: a cache that was never
        used amplifies nothing, which is the convention the effective-
        bandwidth metric needs (EB = BW / CMR with CMR = 1).
        """
        if app_id is None:
            acc, mis = self.accesses, self.misses
        else:
            acc = self.accesses_by_app.get(app_id, 0)
            mis = self.misses_by_app.get(app_id, 0)
        return (mis / acc) if acc else 1.0

    def snapshot(self) -> tuple[int, int]:
        return self.accesses, self.misses


class SetAssocCache:
    """A set-associative LRU cache over line addresses.

    Each set is a ``dict`` mapping line address -> owning application id.
    Python dicts preserve insertion order, so the first key is the LRU
    line; a hit re-inserts the key to mark it most recently used.
    """

    __slots__ = (
        "n_sets", "assoc", "line_bytes", "stats", "_sets", "bypass_apps",
        "way_quota",
    )

    def __init__(self, n_sets: int, assoc: int, line_bytes: BytesPerLine) -> None:
        if n_sets <= 0 or assoc <= 0:
            raise ValueError("cache must have positive sets and associativity")
        self.n_sets = n_sets
        self.assoc = assoc
        self.line_bytes: BytesPerLine = line_bytes
        self.stats = CacheStats()
        self._sets: list[dict[int, int]] = [{} for _ in range(n_sets)]
        #: applications whose fills are currently bypassed
        self.bypass_apps: set[int] = set()
        #: optional per-application way quota (for the L2-partitioning
        #: sensitivity study, §VI-D): an app holding its quota of ways in
        #: a set evicts its own LRU line instead of the global LRU.
        self.way_quota: dict[int, int] = {}

    def set_index(self, line_addr: Bytes) -> int:
        return (line_addr // self.line_bytes) % self.n_sets

    def probe(self, line_addr: Bytes) -> bool:
        """Check residency without touching LRU state or statistics."""
        return line_addr in self._sets[self.set_index(line_addr)]

    def access(self, line_addr: Bytes, app_id: int) -> bool:
        """Look up ``line_addr``; returns True on hit.

        A hit updates LRU recency.  A miss records statistics only; the
        caller is responsible for issuing the fill once the lower level
        responds (see :meth:`fill`).
        """
        line_set = self._sets[(line_addr // self.line_bytes) % self.n_sets]
        hit = line_addr in line_set
        if hit:
            # Re-insert to mark most-recently-used.
            line_set[line_addr] = line_set.pop(line_addr)
        # Statistics recording is inlined (this runs once per simulated
        # cache access; see docs/performance.md).
        stats = self.stats
        stats.accesses += 1
        by_app = stats.accesses_by_app
        by_app[app_id] = by_app.get(app_id, 0) + 1
        if not hit:
            stats.misses += 1
            by_app = stats.misses_by_app
            by_app[app_id] = by_app.get(app_id, 0) + 1
        return hit

    def fill(self, line_addr: Bytes, app_id: int) -> int | None:
        """Install a line, evicting the LRU line of the set if needed.

        Returns the evicted line address (or None).  Fills from bypassed
        applications are dropped.
        """
        if app_id in self.bypass_apps:
            return None
        line_set = self._sets[(line_addr // self.line_bytes) % self.n_sets]
        if line_addr in line_set:
            line_set[line_addr] = line_set.pop(line_addr)
            return None
        victim = None
        quota = self.way_quota.get(app_id)
        if quota is not None:
            owned = [a for a, owner in line_set.items() if owner == app_id]
            if len(owned) >= quota:
                victim = owned[0]  # the app's own LRU line
                del line_set[victim]
                line_set[line_addr] = app_id
                return victim
        if len(line_set) >= self.assoc:
            victim = next(iter(line_set))
            del line_set[victim]
        line_set[line_addr] = app_id
        return victim

    def invalidate_app(self, app_id: int) -> Count:
        """Drop every line owned by ``app_id``; returns lines dropped."""
        dropped = 0
        for line_set in self._sets:
            doomed = [a for a, owner in line_set.items() if owner == app_id]
            for addr in doomed:
                del line_set[addr]
            dropped += len(doomed)
        return dropped

    def occupancy_by_app(self) -> dict[int, int]:
        """Resident line counts per application (for analysis/tests)."""
        counts: dict[int, int] = {}
        for line_set in self._sets:
            for owner in line_set.values():
                counts[owner] = counts.get(owner, 0) + 1
        return counts

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)


class MSHRTable:
    """Miss-status holding registers: merge requests to in-flight lines.

    Keyed by line address; each entry holds the opaque waiter tokens the
    engine will wake when the fill returns.  A full table back-pressures
    by rejecting allocation (the engine retries after a delay).
    """

    __slots__ = ("n_entries", "_pending", "merges", "allocation_failures")

    def __init__(self, n_entries: int) -> None:
        self.n_entries = n_entries
        self._pending: dict[int, list[object]] = {}
        self.merges: Count = 0
        self.allocation_failures: Count = 0

    def __len__(self) -> int:
        return len(self._pending)

    def lookup(self, line_addr: Bytes) -> bool:
        return line_addr in self._pending

    def allocate(self, line_addr: Bytes, waiter: object) -> str:
        """Register ``waiter`` for ``line_addr``.

        Returns ``"new"`` if a lower-level request must be sent,
        ``"merged"`` if one is already in flight, or ``"full"`` if the
        table has no free entry.
        """
        waiters = self._pending.get(line_addr)
        if waiters is not None:
            waiters.append(waiter)
            self.merges += 1
            return "merged"
        if len(self._pending) >= self.n_entries:
            self.allocation_failures += 1
            return "full"
        self._pending[line_addr] = [waiter]
        return "new"

    def release(self, line_addr: Bytes) -> list[object]:
        """Fill arrived: free the entry and return all merged waiters."""
        return self._pending.pop(line_addr, [])
