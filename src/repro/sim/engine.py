"""The discrete-event simulation engine.

:class:`Simulator` wires cores, L1 caches, the crossbar, L2 slices and
DRAM channels together and drives every warp's closed loop:

    compute phase -> memory instruction -> L1 -> (miss) crossbar -> L2
    -> (miss) DRAM -> fill L2 -> response -> fill L1 -> wake warp -> ...

Multi-application execution follows the paper's methodology (§II): each
application is mapped to an exclusive set of cores (equal split by
default, remainder to the first apps) and shares everything beyond the
cores — L2 slices, the crossbar, and DRAM bandwidth.  All statistics are
kept per application.  The roster itself is owned by a
:class:`~repro.sim.tenancy.Tenancy` manager: an open-system run passes
``arrivals`` (a schedule of :class:`~repro.sim.tenancy.TenancyEvent`\\ s)
and applications attach/detach mid-run with deterministic
drain-and-rebind core reassignment; without arrivals the roster is
frozen and behavior is bit-identical to the closed-system engine.

A TLP controller (see :mod:`repro.core.controller`) can be attached; it
is invoked every ``sample_period`` cycles with per-application window
samples and may retarget each application's warp limit, which is applied
SWL-style by :meth:`Simulator.set_tlp`.

Hot-path architecture (see ``docs/performance.md``):

* Every memory-hierarchy hop is one :class:`MemTxn` — a slotted
  transaction record that is pushed on the event queue directly and
  mutated in place as it moves between stages.  There is no per-event
  closure allocation anywhere on the warp loop or the miss path.
* :meth:`Simulator._dispatch` is the single stage machine that consumes
  transactions; :class:`EventQueue` recognises ``MemTxn`` instances and
  routes them there without an intermediate call.
* :class:`EventQueue` is a bucketed calendar queue: events land in an
  integer-cycle wheel slot, each bucket drains in exact ``(time, seq)``
  order, and far-future events (controller windows, warmup marks) wait
  in a small overflow heap.  Ordering is bit-identical to the previous
  float-keyed heap, which the golden fixtures under ``tests/golden/``
  enforce.
* Same-instant events are folded to cut dispatch count: an idle DRAM
  scheduler's first decision runs synchronously; a warp whose every
  line hits L1 completes without a separate ``WARP_RESP`` hop;
  same-cycle data returns to one core merge into ``L1_FILL_MULTI``;
  and one core's compute completions due at the same instant ride an
  intrusive chain (``MemTxn.due``/``MemTxn.link``) behind a single
  event.  Folds A/C/D are exact up to same-instant tie order; the
  all-hit fold shifts reservation attribution within one hit latency —
  the per-fold equivalence argument lives in ``docs/performance.md``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable

from repro.config import GPUConfig
from repro.obs.metrics import get_metrics
from repro.sim.address import AddressMap
from repro.sim.cache import MSHRTable, SetAssocCache
from repro.sim.core import Core, Warp
from repro.sim.dram import DRAMChannel, DRAMRequest
from repro.sim.interconnect import Crossbar
from repro.sim.stats import StatsCollector, WindowSample
from repro.sim.tenancy import Tenancy, TenancyEvent, split_cores
from repro.units import (
    Cycles,
    Fraction,
    FractionOfPeak,
    Insts,
    Ipc,
    WholeCycles,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.controller import TLPController
    from repro.workloads.synthetic import AppProfile

__all__ = [
    "EventQueue",
    "MemTxn",
    "Simulator",
    "SimResult",
    "set_engine_profiling",
]


class MemTxn:
    """One memory transaction moving through the simulated hierarchy.

    A transaction is the unit the event queue carries for the warp loop
    and the miss path: instead of allocating a closure per hop, the
    engine mutates ``stage`` (plus the fields the next stage needs) and
    re-pushes the same object.  Warps own two long-lived transactions
    (their compute-done and L1-hit-response records); one further
    transaction is allocated per non-merged L1 miss and rides the
    L2/DRAM round trip, including any time spent parked in a deferred
    queue under MSHR or DRAM-queue backpressure.
    """

    #: warp's compute phase finished; issue its memory accesses
    COMPUTE_DONE = 0
    #: L1-hit responses arrive back at the warp
    WARP_RESP = 1
    #: request packet reached an L2 slice
    L2_ACCESS = 2
    #: response packet reached the core; fill L1 and wake waiters
    L1_FILL = 3
    #: parked retry: re-attempt the L1 MSHR allocation
    RETRY_L1 = 4
    #: parked retry: re-attempt the L2 MSHR allocation
    RETRY_L2 = 5
    #: parked retry: re-attempt the DRAM queue enqueue
    RETRY_DRAM = 6
    #: one response event carrying several same-instant L1 fills for one
    #: core (``lines`` holds the batch, in scheduling order)
    L1_FILL_MULTI = 7

    __slots__ = (
        "stage", "core", "warp", "line", "app_id", "channel", "n_inst",
        "n", "lines", "due", "link",
    )

    def __init__(
        self,
        stage: int = 0,
        core: "Core | None" = None,
        warp: "Warp | None" = None,
        line: int = 0,
        app_id: int = 0,
        channel: int = 0,
        n_inst: Insts = 0,
        n: int = 0,
        lines: list[int] | None = None,
    ) -> None:
        self.stage = stage
        self.core = core
        self.warp = warp
        self.line = line
        self.app_id = app_id
        self.channel = channel
        #: instructions retired by the compute phase (COMPUTE_DONE)
        self.n_inst: Insts = n_inst
        #: number of L1-hit responses carried (WARP_RESP)
        self.n = n
        #: line addresses of the pending memory instruction (COMPUTE_DONE)
        #: or of the fill batch (L1_FILL_MULTI)
        self.lines = lines
        #: exact completion time of a stride-batched compute phase; the
        #: event rides at the chain head's time, the arithmetic uses this
        self.due: Cycles = 0.0
        #: next compute record in the same per-core stride chain
        self.link: MemTxn | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemTxn(stage={self.stage}, line={self.line:#x}, "
            f"app={self.app_id}, ch={self.channel})"
        )


_COMPUTE_DONE = MemTxn.COMPUTE_DONE
_WARP_RESP = MemTxn.WARP_RESP
_L2_ACCESS = MemTxn.L2_ACCESS
_L1_FILL = MemTxn.L1_FILL
_RETRY_L1 = MemTxn.RETRY_L1
_RETRY_L2 = MemTxn.RETRY_L2
_RETRY_DRAM = MemTxn.RETRY_DRAM
_L1_FILL_MULTI = MemTxn.L1_FILL_MULTI

#: shared immutable default for MSHR release when no waiter is registered
_EMPTY: tuple = ()

#: metric-name suffixes for the engine self-profiling dispatch counters,
#: indexed by MemTxn stage id
_STAGE_NAMES = (
    "compute_done",
    "warp_resp",
    "l2_access",
    "l1_fill",
    "retry_l1",
    "retry_l2",
    "retry_dram",
    "l1_fill_multi",
)

#: process-wide opt-in for engine self-profiling (``--profile``).  Read
#: once at Simulator construction so toggling mid-run has no effect;
#: when off, the only hot-path cost is one ``is not None`` check per
#: dispatch (the same discipline as NullTracer / NullPublisher).
_ENGINE_PROFILING = False


def set_engine_profiling(on: bool) -> bool:
    """Enable/disable engine self-profiling; returns the previous state.

    When on, each subsequently built :class:`Simulator` counts events
    dispatched per stage and samples wheel/pool high-water marks at
    window boundaries, folding the aggregates into the ambient
    :class:`~repro.obs.metrics.MetricsRegistry` at the end of ``run()``
    under the ``engine.`` namespace.  Profiling never touches
    :class:`SimResult` (lint rule R003: the cache schema is fixed), so
    profiled and unprofiled runs stay bit-identical.
    """
    global _ENGINE_PROFILING
    previous = _ENGINE_PROFILING
    _ENGINE_PROFILING = bool(on)
    return previous


class EventQueue:
    """A time-ordered queue of events, with deterministic tie-breaks.

    Implemented as a calendar queue: a power-of-two wheel of buckets,
    each spanning ``2**BUCKET_SHIFT`` cycles, plus an overflow heap for
    events beyond the wheel's horizon (controller windows, the warmup
    mark).  Each bucket is drained in exact ``(time, seq)`` order, and
    buckets are visited in increasing cycle order, so the execution
    order is identical to a global float-keyed heap — only cheaper:
    push and pop are O(1) for the intra-hierarchy latencies that
    dominate.

    Entries are ``(time, seq, obj)``.  ``obj`` is either a plain
    ``fn(now)`` callable or a :class:`MemTxn`, which is routed to the
    ``dispatch`` hook (bound by :class:`Simulator`) without an
    intermediate closure.
    """

    #: log2 of a bucket's span in cycles; coarse enough that the walk
    #: rarely visits empty buckets at hot-path event densities
    BUCKET_SHIFT = 4
    #: wheel length in buckets; must be a power of two, and the covered
    #: horizon (WHEEL_SIZE << BUCKET_SHIFT cycles) must exceed every
    #: intra-hierarchy latency (the longest is a congested DRAM round
    #: trip, well under a thousand cycles)
    WHEEL_SIZE = 1024

    __slots__ = (
        "now", "dispatch", "_seq", "_size", "_wheel", "_mask", "_cursor",
        "_overflow", "_overflow_slot",
    )

    def __init__(self) -> None:
        self.now: Cycles = 0.0
        #: stage machine for MemTxn entries; set by the owning Simulator
        self.dispatch: Callable[[MemTxn, Cycles], None] | None = None
        self._seq = 0
        self._size = 0
        self._mask = self.WHEEL_SIZE - 1
        # Each bucket is a heap ordered by (time, seq): pushes land with
        # heappush, so mid-drain insertions keep the order without a
        # Python-level sort.
        self._wheel: list[list[tuple]] = [[] for _ in range(self.WHEEL_SIZE)]
        self._cursor = 0
        self._overflow: list[tuple] = []
        #: bucket slot of the overflow head (cached; 2**63 when empty)
        self._overflow_slot = 1 << 63

    def __len__(self) -> int:
        return self._size

    def push(
        self, time: Cycles, fn: "MemTxn | Callable[[Cycles], None]"
    ) -> None:
        if time < self.now:
            raise ValueError(f"event scheduled in the past: {time} < {self.now}")
        seq = self._seq
        self._seq = seq + 1
        self._size += 1
        slot = int(time) >> 4  # BUCKET_SHIFT
        # Strict `<`: a push landing exactly WHEEL_SIZE buckets ahead
        # (slot - cursor == 1024) would wrap onto the live bucket at the
        # cursor itself, running 16384 cycles early — the horizon
        # boundary must route to the overflow heap.  The inlined copies
        # of this fast path (dispatch hot loop, DRAM scheduler) repeat
        # the same strict comparison.
        if slot - self._cursor < 1024:  # WHEEL_SIZE
            heappush(self._wheel[slot & self._mask], (time, seq, fn))
        else:
            heappush(self._overflow, (time, seq, fn))
            if slot < self._overflow_slot:
                self._overflow_slot = slot

    def _migrate(self, cursor: int) -> None:
        """Move due overflow events into the wheel bucket at ``cursor``."""
        overflow = self._overflow
        bucket = self._wheel[cursor & self._mask]
        horizon = float((cursor + 1) << 4)  # BUCKET_SHIFT
        while overflow and overflow[0][0] < horizon:
            heappush(bucket, heappop(overflow))
        self._overflow_slot = (
            int(overflow[0][0]) >> 4 if overflow else 1 << 63
        )

    def run_until(self, t_end: Cycles) -> None:
        wheel = self._wheel
        mask = self._mask
        overflow = self._overflow
        dispatch = self.dispatch
        end_slot = int(t_end) >> 4  # BUCKET_SHIFT
        cursor = self._cursor
        while True:
            if self._overflow_slot <= cursor:
                self._migrate(cursor)
            bucket = wheel[cursor & mask]
            if bucket:
                self._cursor = cursor
                popped = 0
                while bucket:
                    entry = heappop(bucket)
                    time, _seq, obj = entry
                    if time > t_end:
                        heappush(bucket, entry)
                        break
                    popped += 1
                    self.now = time
                    cls = obj.__class__
                    if cls is MemTxn:
                        dispatch(obj, time)
                    elif cls is DRAMRequest:
                        # Data-return fast path: skip the __call__ frame
                        # and invoke the callback (a C-level partial)
                        # directly.
                        obj.callback(obj, time)
                    else:
                        obj(time)
                # _size is maintained as a batch: nothing reads it
                # while a bucket drains (push never consults it).
                self._size -= popped
                if bucket:
                    break  # the rest of this bucket is beyond t_end
            if cursor >= end_slot:
                break
            if self._size != len(overflow):
                cursor += 1
            else:
                # The wheel is drained; everything left (if anything)
                # sits in the overflow heap.  Jump straight to its head.
                jump = self._overflow_slot
                if jump > end_slot:
                    break
                cursor = jump if jump > cursor else cursor + 1
        self._cursor = cursor if cursor <= end_slot else end_slot
        self.now = t_end


@dataclass
class SimResult:
    """Outcome of one simulation run.

    ``samples`` covers the measured region (post-warmup); ``windows``
    logs every controller sampling window; ``tlp_timeline`` records each
    (time, app_id, tlp) actuation.  ``roster`` is the tenancy timeline —
    one JSON-native record per mid-run attach/detach (empty for a
    closed-system run, where the roster never changes).
    """

    samples: dict[int, WindowSample]
    cycles: Cycles
    tlp_timeline: list[tuple[Cycles, int, int]]
    windows: list[tuple[Cycles, dict[int, WindowSample]]] = field(default_factory=list)
    final_tlp: dict[int, int] = field(default_factory=dict)
    dram_utilization: Fraction = 0.0
    roster: list[dict] = field(default_factory=list)

    def ipc(self, app_id: int) -> Ipc:
        return self.samples[app_id].ipc

    def eb(self, app_id: int) -> FractionOfPeak:
        return self.samples[app_id].eb

    def bw(self, app_id: int) -> FractionOfPeak:
        return self.samples[app_id].bw

    def cmr(self, app_id: int) -> Fraction:
        return self.samples[app_id].cmr

    @property
    def app_ids(self) -> list[int]:
        return sorted(self.samples)


class Simulator:
    """Whole-GPU simulator executing one or more applications."""

    __slots__ = (
        "config", "apps", "controller", "seed", "addr_map", "events",
        "crossbar", "core_split", "cores", "l1s", "l1_mshrs",
        "cores_of_app", "l2s", "l2_mshrs", "_l1_deferred", "_l2_deferred",
        "channels", "_dram_deferred", "collector", "tlp_timeline",
        "window_log", "current_tlp", "_ran", "_stats", "_push",
        "_channel_of", "_bank_row_of", "_req_ports", "_resp_ports",
        "_l1_hit_latency", "_l2_hit_latency", "_dram_cb", "_dram_drain_cb",
        "_busy_at_measurement", "_txn_pool", "_req_pool", "_interleave",
        "_n_channels", "_row_bytes", "_banks_per_channel", "_prof",
        "_prof_hw", "tenancy", "_arrivals", "_detached_apps",
    )

    def __init__(
        self,
        config: GPUConfig,
        apps: "list[AppProfile]",
        core_split: tuple[int, ...] | None = None,
        controller: "TLPController | None" = None,
        seed: int | None = None,
        l2_way_quota: dict[int, int] | None = None,
        arrivals: "tuple[TenancyEvent, ...] | None" = None,
    ) -> None:
        if not apps:
            raise ValueError("need at least one application")
        self.config = config
        self.apps = list(apps)
        self.controller = controller
        self.seed = config.base_seed if seed is None else seed
        self.addr_map = AddressMap.from_config(config)
        self.events = EventQueue()
        self.events.dispatch = self._dispatch
        self.crossbar = Crossbar(config)

        if core_split is None:
            core_split = split_cores(config.n_cores, len(apps))
        else:
            core_split = tuple(core_split)
        if sum(core_split) > config.n_cores:
            raise ValueError(f"core split {core_split} exceeds {config.n_cores} cores")
        if len(core_split) != len(apps):
            raise ValueError("core_split length must match number of apps")
        if len(apps) >= 2 and sum(core_split) < config.n_cores:
            # A multi-app split that strands cores is a silent throughput
            # bug (satellite of the open-system refactor).  Single-app
            # under-allocation stays legal: alone profiling deliberately
            # runs one app on the co-run core count (paper §II).
            raise ValueError(
                f"core split {core_split} under-allocates "
                f"{config.n_cores} cores; distribute every core "
                "(the default split does this automatically)"
            )
        self.core_split = core_split

        # Cores, private L1s and per-core MSHRs.
        self.cores: list[Core] = []
        self.l1s: list[SetAssocCache] = []
        self.l1_mshrs: list[MSHRTable] = []
        self.cores_of_app: dict[int, list[Core]] = {a: [] for a in range(len(apps))}
        core_id = 0
        for app_id, n in enumerate(core_split):
            for _ in range(n):
                core = Core(core_id, app_id, config)
                self.cores.append(core)
                self.cores_of_app[app_id].append(core)
                self.l1s.append(
                    SetAssocCache(config.l1.n_sets, config.l1.assoc, config.l1.line_bytes)
                )
                self.l1_mshrs.append(MSHRTable(config.l1.mshr_entries))
                core_id += 1

        # Shared L2 slices and DRAM channels, one pair per partition.
        geom = config.l2_per_channel
        self.l2s = [
            SetAssocCache(geom.n_sets, geom.assoc, geom.line_bytes)
            for _ in range(config.n_channels)
        ]
        if l2_way_quota:
            for l2 in self.l2s:
                l2.way_quota = dict(l2_way_quota)
        self.l2_mshrs = [
            MSHRTable(geom.mshr_entries * 4) for _ in range(config.n_channels)
        ]
        # Back-pressure: accesses that found their MSHR table full wait
        # here as parked transactions and are re-driven as fills release
        # entries.
        self._l1_deferred: list[deque[MemTxn]] = [deque() for _ in self.cores]
        self._l2_deferred: list[deque[MemTxn]] = [
            deque() for _ in range(config.n_channels)
        ]
        self.channels = [
            DRAMChannel(ch, config, self.addr_map, self.events)
            for ch in range(config.n_channels)
        ]
        # DRAM-queue backpressure: L2 misses deferred while a channel's
        # queue is full, re-driven as the scheduler dequeues.
        self._dram_deferred: list[deque[MemTxn]] = [
            deque() for _ in range(config.n_channels)
        ]
        # The per-channel drain hook is armed (assigned to
        # channel.on_dequeue) only while that channel has parked
        # transactions, so an unloaded scheduler pays nothing per
        # dequeue.
        self._dram_drain_cb = [
            partial(self._drain_dram_deferred, ch)
            for ch in range(config.n_channels)
        ]

        self.collector = StatsCollector(
            list(range(len(apps))), config.peak_bw_lines_per_cycle
        )
        self.tlp_timeline: list[tuple[float, int, int]] = []
        self.window_log: list[tuple[float, dict[int, WindowSample]]] = []
        self.current_tlp: dict[int, int] = {}
        self._ran = False

        # Hot-path pre-binding: resolve the per-event attribute chains
        # once.  self._stats aliases the collector's AppStats objects, so
        # windows and measurements observe every inlined increment.
        self._stats = [self.collector.apps[a] for a in range(len(apps))]
        self._push = self.events.push
        self._channel_of = self.addr_map.channel_of
        self._bank_row_of = self.addr_map.bank_row_of
        # Address-map geometry for the inlined channel/bank arithmetic
        # (must mirror AddressMap.channel_of / bank_row_of exactly).
        self._interleave = config.interleave_bytes
        self._n_channels = config.n_channels
        self._row_bytes = config.row_bytes
        self._banks_per_channel = config.banks_per_channel
        self._req_ports = self.crossbar.request_ports
        self._resp_ports = self.crossbar.response_ports
        self._l1_hit_latency: Cycles = config.l1_hit_latency
        self._l2_hit_latency: Cycles = config.l2_hit_latency
        self._dram_cb = [
            partial(self._dram_done, ch) for ch in range(config.n_channels)
        ]
        self._busy_at_measurement = [0.0] * config.n_channels
        # Free lists: retired miss transactions and completed DRAM
        # requests are recycled instead of re-allocated.  Warp-owned
        # transactions (compute_txn/resp_txn) and parked transactions
        # never enter the pool — only objects with no remaining owner.
        self._txn_pool: list[MemTxn] = []
        self._req_pool: list[DRAMRequest] = []
        # Self-profiling (``--profile``): per-stage dispatch counts plus
        # wheel/txn-pool/req-pool high-water marks.  ``_prof is None``
        # is the off switch the dispatch hot path checks.
        self._prof: list[int] | None = (
            [0] * len(_STAGE_NAMES) if _ENGINE_PROFILING else None
        )
        self._prof_hw = [0, 0, 0]

        # Populate warp contexts per core (see _populate_core).
        for app_id in range(len(self.apps)):
            for core in self.cores_of_app[app_id]:
                self._populate_core(core, app_id)

        # Tenancy: the live roster and its attach/detach lifecycle.
        # ``arrivals`` is the open-system schedule; without one, the
        # roster is frozen and the simulator behaves exactly as before.
        self.tenancy = Tenancy(self)
        self._arrivals: tuple[TenancyEvent, ...] = tuple(arrivals or ())
        self._detached_apps: set[int] = set()

    @property
    def live_apps(self) -> list[int]:
        """Ascending ids of the currently attached applications."""
        return list(self.tenancy.live)

    def _populate_core(self, core: Core, app_id: int) -> None:
        """Create ``app_id``'s warp contexts on ``core``.

        Warps of one core share a sequential cursor so adjacent warps
        touch adjacent lines (row locality); each warp owns its two
        recurring transactions.  Called at construction and again by
        :class:`~repro.sim.tenancy.Tenancy` when a rebind hands the
        core to a different application.
        """
        profile = self.apps[app_id]
        core_stream = profile.make_core_stream(
            app_id, core.core_id, self.addr_map
        )
        for w in range(self.config.max_warps_per_core):
            stream = profile.make_stream(
                app_id=app_id,
                core_id=core.core_id,
                warp_id=w,
                seed=self.seed,
                addr_map=self.addr_map,
                core_stream=core_stream,
            )
            warp = core.add_warp(stream)
            warp.compute_txn = MemTxn(_COMPUTE_DONE, core, warp)
            warp.resp_txn = MemTxn(_WARP_RESP, core, warp)

    # ------------------------------------------------------------------
    # TLP actuation
    # ------------------------------------------------------------------

    def set_tlp(self, app_id: int, tlp: int) -> None:
        """Set application ``app_id``'s warp limit on all of its cores.

        A delayed actuation landing after its application detached is a
        no-op: stale controller events must not resurrect a departed
        app's TLP entry or touch its reassigned cores.
        """
        if app_id in self._detached_apps:
            return
        tlp = max(1, min(tlp, self.config.max_tlp))
        now = self.events.now
        self.current_tlp[app_id] = tlp
        self.tlp_timeline.append((now, app_id, tlp))
        for core in self.cores_of_app[app_id]:
            for warp in core.set_tlp(tlp):
                self._start_warp(core, warp, now)

    def set_l1_bypass(self, app_id: int, bypass: bool) -> None:
        """Enable/disable L1 fill bypassing for an application."""
        if app_id in self._detached_apps:
            return
        for core in self.cores_of_app[app_id]:
            l1 = self.l1s[core.core_id]
            if bypass:
                l1.bypass_apps.add(app_id)
            else:
                l1.bypass_apps.discard(app_id)

    def set_l2_bypass(self, app_id: int, bypass: bool) -> None:
        """Enable/disable L2 fill bypassing for an application."""
        if app_id in self._detached_apps:
            return
        for l2 in self.l2s:
            if bypass:
                l2.bypass_apps.add(app_id)
            else:
                l2.bypass_apps.discard(app_id)

    # ------------------------------------------------------------------
    # Transaction dispatch (the hot path)
    # ------------------------------------------------------------------

    def _dispatch(self, txn: MemTxn, now: Cycles) -> None:
        """Advance one transaction by one stage.

        This is the engine's single event consumer: the event queue
        routes every :class:`MemTxn` here, and the deferred queues are
        drained through it as backpressure lifts.
        """
        stage = txn.stage
        prof = self._prof
        if prof is not None:
            prof[stage] += 1
        if stage == _COMPUTE_DONE:
            core = txn.core
            if core.tick_head is txn:
                # This chain is the core's open one; close it so later
                # completions open a fresh chain (with a live event)
                # instead of appending to a consumed record.
                core.tick_head = None
            while True:
                # Chain bookkeeping first: the body below may re-arm
                # this very record for the warp's next iteration (the
                # all-hit fold and the pure-compute path call
                # _start_warp synchronously), which overwrites ``link``
                # and ``due``.
                nxt = txn.link
                txn.link = None
                warp = txn.warp
                stats = self._stats[warp.app_id]
                stats.insts += txn.n_inst
                warp.iterations += 1
                lines = txn.lines
                if not lines:
                    if warp.active:
                        self._start_warp(core, warp, now)
                    else:
                        warp.parked = True
                else:
                    cid = core.core_id
                    n = len(lines)
                    warp.pending = n
                    warp.issue_time = now
                    l1 = self.l1s[cid]
                    l1_sets = l1._sets
                    lb = l1.line_bytes
                    ns = l1.n_sets
                    mshr = self.l1_mshrs[cid]
                    pending_map = mshr._pending
                    app_id = warp.app_id
                    n_hits = 0
                    n_misses = 0
                    for line in lines:
                        # Inlined SetAssocCache.access: LRU lookup with
                        # the statistics batched after the loop.
                        line_set = l1_sets[(line // lb) % ns]
                        if line in line_set:
                            line_set[line] = line_set.pop(line)
                            n_hits += 1
                            continue
                        n_misses += 1
                        # Inlined L1-miss fast path; _l1_miss is the
                        # readable form (used for retries) and must stay
                        # equivalent.
                        waiters = pending_map.get(line)
                        if waiters is not None:
                            waiters.append(warp)
                            mshr.merges += 1
                            continue
                        if len(pending_map) >= mshr.n_entries:
                            mshr.allocation_failures += 1
                            pool = self._txn_pool
                            if pool:
                                t2 = pool.pop()
                                t2.stage = _RETRY_L1
                                t2.core = core
                                t2.warp = warp
                                t2.line = line
                                t2.app_id = app_id
                            else:
                                t2 = MemTxn(_RETRY_L1, core, warp, line, app_id)
                            self._l1_deferred[cid].append(t2)
                            continue
                        pending_map[line] = [warp]
                        channel = (line // self._interleave) % self._n_channels
                        port = self._req_ports[channel]
                        fa = port.free_at
                        start = now if now > fa else fa
                        cpp = port.cycles_per_packet
                        fa = start + cpp
                        port.free_at = fa
                        port.packets += 1
                        port.busy_cycles += cpp
                        port.queue_cycles += start - now
                        pool = self._txn_pool
                        if pool:
                            t2 = pool.pop()
                            t2.stage = _L2_ACCESS
                            t2.core = core
                            t2.warp = warp
                            t2.line = line
                            t2.app_id = app_id
                            t2.channel = channel
                        else:
                            t2 = MemTxn(
                                _L2_ACCESS, core, warp, line, app_id, channel
                            )
                        # Inlined EventQueue.push fast path
                        # (engine-scheduled times are never in the past;
                        # overflow is rare).
                        ev = self.events
                        t = fa + port.latency
                        slot = int(t) >> 4
                        if slot - ev._cursor < 1024:
                            seq = ev._seq
                            ev._seq = seq + 1
                            ev._size += 1
                            heappush(ev._wheel[slot & ev._mask], (t, seq, t2))
                        else:
                            ev.push(t, t2)
                    cache_stats = l1.stats
                    cache_stats.accesses += n
                    by_app = cache_stats.accesses_by_app
                    by_app[app_id] = by_app.get(app_id, 0) + n
                    stats.l1_accesses += n
                    if n_misses:
                        cache_stats.misses += n_misses
                        by_app = cache_stats.misses_by_app
                        by_app[app_id] = by_app.get(app_id, 0) + n_misses
                        stats.l1_misses += n_misses
                    if n_hits:
                        if n_misses:
                            resp = warp.resp_txn
                            resp.n = n_hits
                            ev = self.events
                            t = now + self._l1_hit_latency
                            slot = int(t) >> 4
                            if slot - ev._cursor < 1024:
                                seq = ev._seq
                                ev._seq = seq + 1
                                ev._size += 1
                                heappush(
                                    ev._wheel[slot & ev._mask], (t, seq, resp)
                                )
                            else:
                                ev.push(t, resp)
                        else:
                            # All-hit fold: every line hit, so the
                            # WARP_RESP hop carries no new information.
                            # Complete the memory instruction here and
                            # restart the warp loop at the hit-latency
                            # timestamp (t), one event instead of two.
                            # The next stream draw and issue reservation
                            # happen at wall-time `now` rather than `t`
                            # — a bounded attribution shift, see
                            # docs/performance.md.
                            warp.pending = 0
                            t = now + self._l1_hit_latency
                            self.collector.note_mem_request(app_id, t - now)
                            if warp.active:
                                self._start_warp(core, warp, t)
                            else:
                                warp.parked = True
                if nxt is None:
                    return
                # Continue the stride chain: the follower's event was
                # folded into this one; its exact completion time rides
                # in ``due`` and feeds all downstream arithmetic.
                txn = nxt
                now = txn.due
        if stage == _L1_FILL:
            core = txn.core
            if core.fill_txn is txn:
                core.fill_txn = None
            cid = core.core_id
            line = txn.line
            l1 = self.l1s[cid]
            if l1.bypass_apps or l1.way_quota:
                l1.fill(line, txn.app_id)
            else:
                # Inlined SetAssocCache.fill fast path (no bypass, no
                # way quota): install with plain LRU eviction.
                line_set = l1._sets[(line // l1.line_bytes) % l1.n_sets]
                if line in line_set:
                    line_set[line] = line_set.pop(line)
                else:
                    if len(line_set) >= l1.assoc:
                        del line_set[next(iter(line_set))]
                    line_set[line] = txn.app_id
            mshr = self.l1_mshrs[cid]
            for warp in mshr._pending.pop(line, _EMPTY):
                pending = warp.pending - 1
                warp.pending = pending
                if pending == 0:
                    self.collector.note_mem_request(
                        warp.app_id, now - warp.issue_time
                    )
                    if warp.active:
                        self._start_warp(core, warp, now)
                    else:
                        warp.parked = True
                elif pending < 0:
                    raise RuntimeError(
                        "warp received more responses than requests"
                    )
            deferred = self._l1_deferred[cid]
            if deferred:
                pending_map = mshr._pending
                n_entries = mshr.n_entries
                while deferred and len(pending_map) < n_entries:
                    # Parked entries are always RETRY_L1; re-drive them
                    # through _l1_miss directly (no dispatch round trip).
                    t2 = deferred.popleft()
                    self._l1_miss(t2.core, t2.warp, t2.line, now, t2)
            self._txn_pool.append(txn)
            return
        if stage == _L1_FILL_MULTI:
            # A batch of same-instant fills for one core (the coalesced
            # form of L1_FILL): install every line, wake its waiters and
            # re-drive deferred misses per line, in the order the fills
            # were scheduled — the same per-line work the individual
            # events would have done back to back.
            core = txn.core
            if core.fill_txn is txn:
                core.fill_txn = None
            cid = core.core_id
            l1 = self.l1s[cid]
            mshr = self.l1_mshrs[cid]
            deferred = self._l1_deferred[cid]
            app_id = txn.app_id
            for line in txn.lines:
                if l1.bypass_apps or l1.way_quota:
                    l1.fill(line, app_id)
                else:
                    line_set = l1._sets[(line // l1.line_bytes) % l1.n_sets]
                    if line in line_set:
                        line_set[line] = line_set.pop(line)
                    else:
                        if len(line_set) >= l1.assoc:
                            del line_set[next(iter(line_set))]
                        line_set[line] = app_id
                for warp in mshr._pending.pop(line, _EMPTY):
                    pending = warp.pending - 1
                    warp.pending = pending
                    if pending == 0:
                        self.collector.note_mem_request(
                            warp.app_id, now - warp.issue_time
                        )
                        if warp.active:
                            self._start_warp(core, warp, now)
                        else:
                            warp.parked = True
                    elif pending < 0:
                        raise RuntimeError(
                            "warp received more responses than requests"
                        )
                if deferred:
                    pending_map = mshr._pending
                    n_entries = mshr.n_entries
                    while deferred and len(pending_map) < n_entries:
                        t2 = deferred.popleft()
                        self._l1_miss(t2.core, t2.warp, t2.line, now, t2)
            txn.lines = None
            self._txn_pool.append(txn)
            return
        if stage == _L2_ACCESS:
            channel = txn.channel
            app_id = txn.app_id
            line = txn.line
            l2 = self.l2s[channel]
            # Inlined SetAssocCache.access (lookup + statistics).
            line_set = l2._sets[(line // l2.line_bytes) % l2.n_sets]
            hit = line in line_set
            cache_stats = l2.stats
            cache_stats.accesses += 1
            by_app = cache_stats.accesses_by_app
            by_app[app_id] = by_app.get(app_id, 0) + 1
            stats = self._stats[app_id]
            stats.l2_accesses += 1
            if hit:
                line_set[line] = line_set.pop(line)
                port = self._resp_ports[channel]
                t = now + self._l2_hit_latency
                fa = port.free_at
                start = t if t > fa else fa
                cpp = port.cycles_per_packet
                fa = start + cpp
                port.free_at = fa
                port.packets += 1
                port.busy_cycles += cpp
                port.queue_cycles += start - t
                t = fa + port.latency
                core = txn.core
                ft = core.fill_txn
                if ft is not None and core.fill_time == t:
                    # Same-instant coalescing: the core already has a
                    # fill event queued at exactly this time (possible
                    # only across channels — one response port
                    # serialises its own fills).  Batch the line onto it
                    # instead of queueing a second event.  All fills of
                    # one core share its application (address spaces are
                    # app-disjoint), so the batch keeps one app_id.
                    if ft.stage == _L1_FILL:
                        ft.stage = _L1_FILL_MULTI
                        ft.lines = [ft.line, line]
                    else:
                        ft.lines.append(line)
                    self._txn_pool.append(txn)
                    return
                txn.stage = _L1_FILL
                core.fill_txn = txn
                core.fill_time = t
                ev = self.events
                slot = int(t) >> 4
                if slot - ev._cursor < 1024:
                    seq = ev._seq
                    ev._seq = seq + 1
                    ev._size += 1
                    heappush(ev._wheel[slot & ev._mask], (t, seq, txn))
                else:
                    ev.push(t, txn)
                return
            cache_stats.misses += 1
            by_app = cache_stats.misses_by_app
            by_app[app_id] = by_app.get(app_id, 0) + 1
            stats.l2_misses += 1
            # Inlined _l2_miss + _to_dram fast paths (the methods remain
            # the readable form, used by the parked-retry stages).
            mshr = self.l2_mshrs[channel]
            pending_map = mshr._pending
            waiters = pending_map.get(line)
            if waiters is not None:
                waiters.append(txn.core)
                mshr.merges += 1
                self._txn_pool.append(txn)
                return
            if len(pending_map) >= mshr.n_entries:
                mshr.allocation_failures += 1
                txn.stage = _RETRY_L2
                self._l2_deferred[channel].append(txn)
                return
            pending_map[line] = [txn.core]
            chan = self.channels[channel]
            queue = chan.queue
            if len(queue) >= chan.capacity:
                txn.stage = _RETRY_DRAM
                self._dram_deferred[channel].append(txn)
                chan.on_dequeue = self._dram_drain_cb[channel]
                return
            # Inlined AddressMap.bank_row_of (rows striped across banks).
            il = self._interleave
            local = (line // il // self._n_channels) * il + line % il
            local_row = local // self._row_bytes
            banks = self._banks_per_channel
            bank = local_row % banks
            row = local_row // banks
            pool = self._req_pool
            if pool:
                req = pool.pop()
                req.line_addr = line
                req.app_id = app_id
                req.bank = bank
                req.row = row
                req.enqueue_time = now
                req.callback = self._dram_cb[channel]
                req.row_hit = False
            else:
                req = DRAMRequest(
                    line, app_id, bank, row, now, self._dram_cb[channel]
                )
            # Inlined DRAMChannel.enqueue (capacity already checked).
            queue.append(req)
            self._txn_pool.append(txn)
            if not chan._deciding:
                chan._deciding = True
                # An idle scheduler's first decision is due at this very
                # instant.  Run it synchronously instead of scheduling a
                # same-time event — with one guard: if the current wheel
                # bucket still holds an entry at exactly `now`, that tie
                # was queued first and must run first, so fall back to
                # the event to keep the (time, seq) order bit-identical.
                # All same-instant events live in the current bucket
                # (overflow entries due now were migrated before the
                # bucket drain began), so one head peek decides.
                ev = self.events
                bucket = ev._wheel[ev._cursor & ev._mask]
                if bucket and bucket[0][0] == now:
                    seq = ev._seq
                    ev._seq = seq + 1
                    ev._size += 1
                    heappush(bucket, (now, seq, chan._decide_event))
                else:
                    chan._decide(now)
            return
        if stage == _WARP_RESP:
            warp = txn.warp
            pending = warp.pending - txn.n
            warp.pending = pending
            if pending < 0:
                raise RuntimeError("warp received more responses than requests")
            if pending == 0:
                self.collector.note_mem_request(warp.app_id, now - warp.issue_time)
                if warp.active:
                    self._start_warp(txn.core, warp, now)
                else:
                    warp.parked = True
            return
        if stage == _RETRY_L1:
            self._l1_miss(txn.core, txn.warp, txn.line, now, txn)
            return
        if stage == _RETRY_L2:
            self._l2_miss(txn, now)
            return
        if stage == _RETRY_DRAM:
            self._to_dram(txn, now)
            return
        raise RuntimeError(f"unknown transaction stage {stage}")

    # ------------------------------------------------------------------
    # Warp loop
    # ------------------------------------------------------------------

    def _start_warp(self, core: Core, warp: Warp, now: Cycles) -> None:
        n_inst, lines = warp.stream.next_request()
        txn = warp.compute_txn
        txn.n_inst = n_inst
        txn.lines = lines
        # Inlined IssueServer.request (same float operations, in the
        # same order): shared issue bandwidth plus the 1-IPC per-warp
        # ceiling.
        iss = core.issue
        free_at = iss.free_at
        start = now if now > free_at else free_at
        finish = start + n_inst / iss.issue_width
        iss.free_at = finish
        min_finish = now + n_inst
        t = finish if finish > min_finish else min_finish
        txn.due = t
        txn.link = None
        # Stride batching: compute completions of one core due at the
        # *exact same instant* share a single event; the head's dispatch
        # walks the chain.  Ties are common (lockstep restarts after a
        # TLP change, warps pinned to the 1-IPC per-warp ceiling) and
        # the fold is order-preserving: every record runs at its true
        # simulated time, so only the tie order against other
        # same-instant events can shift.  Chaining completions that are
        # merely *near* in time is not safe — their bodies would reserve
        # shared ports ahead of events scheduled between the head and
        # the follower, which measurably changes DRAM-side dynamics.
        # The head's dispatch closes the chain, so an append can never
        # target an already-consumed event.
        head = core.tick_head
        if head is not None and core.tick_tail.due == t:
            core.tick_tail.link = txn
            core.tick_tail = txn
            return
        core.tick_head = txn
        core.tick_tail = txn
        ev = self.events
        slot = int(t) >> 4
        if slot - ev._cursor < 1024:
            seq = ev._seq
            ev._seq = seq + 1
            ev._size += 1
            heappush(ev._wheel[slot & ev._mask], (t, seq, txn))
        else:
            ev.push(t, txn)

    # ------------------------------------------------------------------
    # Memory hierarchy
    # ------------------------------------------------------------------

    def _l1_miss(
        self, core: Core, warp: Warp, line: int, now: Cycles, txn: MemTxn | None
    ) -> None:
        """Allocate an L1 miss; forward to L2 or park under backpressure.

        ``txn`` is the transaction being retried from a deferred queue,
        or None on the first attempt (allocated lazily so merged misses
        cost nothing).
        """
        mshr = self.l1_mshrs[core.core_id]
        pending_map = mshr._pending
        waiters = pending_map.get(line)
        if waiters is not None:
            waiters.append(warp)
            mshr.merges += 1
            if txn is not None:
                self._txn_pool.append(txn)
            return
        if len(pending_map) >= mshr.n_entries:
            # Back-pressure: park the transaction; it is re-driven when
            # a fill frees an MSHR entry (see the L1_FILL stage).
            mshr.allocation_failures += 1
            if txn is None:
                txn = MemTxn(_RETRY_L1, core, warp, line, warp.app_id)
            else:
                txn.stage = _RETRY_L1
            self._l1_deferred[core.core_id].append(txn)
            return
        pending_map[line] = [warp]
        channel = (line // self._interleave) % self._n_channels
        port = self._req_ports[channel]
        fa = port.free_at
        start = now if now > fa else fa
        cpp = port.cycles_per_packet
        fa = start + cpp
        port.free_at = fa
        port.packets += 1
        port.busy_cycles += cpp
        port.queue_cycles += start - now
        if txn is None:
            txn = MemTxn(_L2_ACCESS, core, warp, line, warp.app_id, channel)
        else:
            txn.stage = _L2_ACCESS
            txn.channel = channel
        self._push(fa + port.latency, txn)

    def _l2_miss(self, txn: MemTxn, now: Cycles) -> None:
        """Allocate the L2 miss and send it to DRAM (access already counted).

        The MSHR bookkeeping is the inline form of
        :meth:`MSHRTable.allocate`; a merged transaction has served its
        purpose and is recycled.
        """
        channel = txn.channel
        mshr = self.l2_mshrs[channel]
        pending_map = mshr._pending
        line = txn.line
        waiters = pending_map.get(line)
        if waiters is not None:
            waiters.append(txn.core)
            mshr.merges += 1
            self._txn_pool.append(txn)
            return
        if len(pending_map) >= mshr.n_entries:
            mshr.allocation_failures += 1
            txn.stage = _RETRY_L2
            self._l2_deferred[channel].append(txn)
            return
        pending_map[line] = [txn.core]
        self._to_dram(txn, now)

    def _to_dram(self, txn: MemTxn, now: Cycles) -> None:
        """Enqueue at the channel, deferring while its queue is full.

        The transaction's journey ends here: its identity is carried
        onward by a (pooled) :class:`DRAMRequest`, so it is recycled.
        """
        channel = txn.channel
        chan = self.channels[channel]
        if len(chan.queue) >= chan.capacity:
            txn.stage = _RETRY_DRAM
            self._dram_deferred[channel].append(txn)
            chan.on_dequeue = self._dram_drain_cb[channel]
            return
        line = txn.line
        bank, row = self._bank_row_of(line)
        pool = self._req_pool
        if pool:
            req = pool.pop()
            req.line_addr = line
            req.app_id = txn.app_id
            req.bank = bank
            req.row = row
            req.enqueue_time = now
            req.callback = self._dram_cb[channel]
            req.row_hit = False
        else:
            req = DRAMRequest(
                line, txn.app_id, bank, row, now, self._dram_cb[channel]
            )
        chan.enqueue(req, now)
        self._txn_pool.append(txn)

    def _drain_dram_deferred(self, channel: int, now: Cycles) -> None:
        """Re-drive parked L2 misses while the channel queue has room.

        Drains in a loop (like the MSHR deferred queues): a single
        dequeue usually frees one slot, but bypass/quota paths and
        bursty dequeues can leave several slots open at once, and a
        parked request must never wait while capacity exists.
        """
        deferred = self._dram_deferred[channel]
        chan = self.channels[channel]
        queue = chan.queue
        capacity = chan.capacity
        while deferred and len(queue) < capacity:
            # Parked entries are always RETRY_DRAM; re-drive them
            # through _to_dram directly (no dispatch round trip).
            self._to_dram(deferred.popleft(), now)
        if not deferred:
            chan.on_dequeue = None

    def _dram_done(self, channel: int, request: DRAMRequest, now: Cycles) -> None:
        stats = self._stats[request.app_id]
        stats.dram_lines += 1
        if request.row_hit:
            stats.row_hits += 1
        else:
            stats.row_misses += 1
        line = request.line_addr
        app_id = request.app_id
        l2 = self.l2s[channel]
        if l2.bypass_apps or l2.way_quota:
            l2.fill(line, app_id)
        else:
            # Inlined SetAssocCache.fill fast path (see the L1_FILL
            # stage).
            line_set = l2._sets[(line // l2.line_bytes) % l2.n_sets]
            if line in line_set:
                line_set[line] = line_set.pop(line)
            else:
                if len(line_set) >= l2.assoc:
                    del line_set[next(iter(line_set))]
                line_set[line] = app_id
        port = self._resp_ports[channel]
        ev = self.events
        txn_pool = self._txn_pool
        mshr = self.l2_mshrs[channel]
        for core in mshr._pending.pop(line, _EMPTY):
            fa = port.free_at
            start = now if now > fa else fa
            cpp = port.cycles_per_packet
            fa = start + cpp
            port.free_at = fa
            port.packets += 1
            port.busy_cycles += cpp
            port.queue_cycles += start - now
            t = fa + port.latency
            ft = core.fill_txn
            if ft is not None and core.fill_time == t:
                # Same-instant coalescing (see the L2-hit path): batch
                # onto the core's already-queued fill event.
                if ft.stage == _L1_FILL:
                    ft.stage = _L1_FILL_MULTI
                    ft.lines = [ft.line, line]
                else:
                    ft.lines.append(line)
                continue
            if txn_pool:
                t2 = txn_pool.pop()
                t2.stage = _L1_FILL
                t2.core = core
                t2.warp = None
                t2.line = line
                t2.app_id = app_id
            else:
                t2 = MemTxn(_L1_FILL, core, None, line, app_id)
            core.fill_txn = t2
            core.fill_time = t
            slot = int(t) >> 4
            if slot - ev._cursor < 1024:
                seq = ev._seq
                ev._seq = seq + 1
                ev._size += 1
                heappush(ev._wheel[slot & ev._mask], (t, seq, t2))
            else:
                ev.push(t, t2)
        deferred = self._l2_deferred[channel]
        if deferred:
            pending_map = mshr._pending
            n_entries = mshr.n_entries
            while deferred and len(pending_map) < n_entries:
                # Parked entries are always RETRY_L2 (see the L2 miss
                # path); re-drive them through _l2_miss directly.
                self._l2_miss(deferred.popleft(), now)
        self._req_pool.append(request)

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------

    def run(
        self,
        max_cycles: WholeCycles,
        warmup: WholeCycles | None = None,
        initial_tlp: dict[int, int] | None = None,
    ) -> SimResult:
        """Simulate for ``max_cycles`` and return measured-region results.

        ``warmup`` cycles (default: 20% of the run) are excluded from the
        reported samples so cold caches and controller search transients
        do not skew steady-state metrics.
        """
        if warmup is None:
            warmup = max_cycles // 5
        if warmup >= max_cycles:
            raise ValueError("warmup must be shorter than the run")
        if self._ran:
            raise RuntimeError(
                "a Simulator instance runs once; build a new one to re-run"
            )
        self._ran = True

        initial_tlp = initial_tlp or {}
        for app_id in range(len(self.apps)):
            self.set_tlp(app_id, initial_tlp.get(app_id, self.config.max_tlp))

        self.events.push(float(warmup), self._begin_measurement)

        for ev in self._arrivals:
            if ev.cycle >= max_cycles:
                continue
            self.events.push(float(ev.cycle), partial(self._tenancy_event, ev))

        if self.controller is not None:
            self.controller.start(self, 0.0)
            self._schedule_controller_window(self.controller.sample_period)

        self.events.run_until(float(max_cycles))

        if self._prof is not None:
            self._sample_profiling()
            self._publish_profiling()

        samples = self.collector.measurement(float(max_cycles))
        measured = float(max_cycles) - warmup
        busy = sum(
            ch.busy_cycles - base
            for ch, base in zip(self.channels, self._busy_at_measurement)
        )
        return SimResult(
            samples=samples,
            cycles=measured,
            tlp_timeline=list(self.tlp_timeline),
            windows=list(self.window_log),
            final_tlp=dict(self.current_tlp),
            dram_utilization=busy / (measured * len(self.channels)),
            roster=list(self.tenancy.timeline),
        )

    def _tenancy_event(self, ev: TenancyEvent, now: Cycles) -> None:
        """Apply one scheduled roster change (the arrival-event handler)."""
        if ev.action == "attach":
            assert ev.profile is not None
            self.tenancy.attach(ev.profile, now)
        else:
            assert ev.app_id is not None
            self.tenancy.detach(ev.app_id, now)

    def _begin_measurement(self, now: Cycles) -> None:
        """End of warmup: snapshot counters and per-channel busy cycles
        so dram_utilization, like every other reported metric, covers
        only the measured (post-warmup) region."""
        self.collector.start_measurement(now)
        self._busy_at_measurement = [ch.busy_cycles for ch in self.channels]
        if self._prof is not None:
            self._sample_profiling()

    def _sample_profiling(self) -> None:
        """Fold current occupancies into the high-water marks.

        Called at window boundaries (and warmup end / run end), not per
        event, so profiling adds nothing to the dispatch loop beyond the
        per-stage increment.
        """
        hw = self._prof_hw
        hw[0] = max(hw[0], len(self.events))
        hw[1] = max(hw[1], len(self._txn_pool))
        hw[2] = max(hw[2], len(self._req_pool))

    def _publish_profiling(self) -> None:
        """Fold self-profiling aggregates into the ambient registry.

        Counters are additive across the Simulators of one run (a sweep
        job simulates several configurations); high-water gauges take
        the max so the registry reports the worst case seen.  This is
        the R003-safe seam: nothing profiling-related enters SimResult.
        """
        registry = get_metrics()
        prof = self._prof
        assert prof is not None
        dispatched = 0
        for stage_id, name in enumerate(_STAGE_NAMES):
            count = prof[stage_id]
            dispatched += count
            if count:
                registry.inc(f"engine.dispatch.{name}", count)
        registry.inc("engine.events.dispatched", dispatched)
        for name, value in (
            ("engine.wheel.high_water", self._prof_hw[0]),
            ("engine.txn_pool.high_water", self._prof_hw[1]),
            ("engine.req_pool.high_water", self._prof_hw[2]),
        ):
            registry.set_gauge(
                name, max(registry.gauges.get(name, 0.0), float(value))
            )

    def _schedule_controller_window(self, when: Cycles) -> None:
        self.events.push(when, self._controller_window)

    def _controller_window(self, now: Cycles) -> None:
        assert self.controller is not None
        if self._prof is not None:
            self._sample_profiling()
        # A tenancy event at this exact cycle already sealed the window;
        # skip the zero-cycle cut but keep the window cadence.
        if now > self.collector.window_start:
            windows = self.collector.cut_window(now)
            self.window_log.append((now, windows))
            self.controller.on_window(self, now, windows)
        self._schedule_controller_window(now + self.controller.sample_period)
