"""The discrete-event simulation engine.

:class:`Simulator` wires cores, L1 caches, the crossbar, L2 slices and
DRAM channels together and drives every warp's closed loop:

    compute phase -> memory instruction -> L1 -> (miss) crossbar -> L2
    -> (miss) DRAM -> fill L2 -> response -> fill L1 -> wake warp -> ...

Multi-application execution follows the paper's methodology (§II): each
application is mapped to an exclusive set of cores (equal split by
default) and shares everything beyond the cores — L2 slices, the
crossbar, and DRAM bandwidth.  All statistics are kept per application.

A TLP controller (see :mod:`repro.core.controller`) can be attached; it
is invoked every ``sample_period`` cycles with per-application window
samples and may retarget each application's warp limit, which is applied
SWL-style by :meth:`Simulator.set_tlp`.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.config import GPUConfig
from repro.sim.address import AddressMap
from repro.sim.cache import MSHRTable, SetAssocCache
from repro.sim.core import Core, Warp
from repro.sim.dram import DRAMChannel, DRAMRequest
from repro.sim.interconnect import Crossbar
from repro.sim.stats import StatsCollector, WindowSample

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.controller import TLPController
    from repro.workloads.synthetic import AppProfile

__all__ = ["EventQueue", "Simulator", "SimResult"]


class EventQueue:
    """A time-ordered queue of callbacks, with deterministic tie-breaks."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._seq = 0
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, fn: Callable[[float], None]) -> None:
        if time < self.now:
            raise ValueError(f"event scheduled in the past: {time} < {self.now}")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def run_until(self, t_end: float) -> None:
        heap = self._heap
        while heap and heap[0][0] <= t_end:
            time, _, fn = heapq.heappop(heap)
            self.now = time
            fn(time)
        self.now = t_end


@dataclass
class SimResult:
    """Outcome of one simulation run.

    ``samples`` covers the measured region (post-warmup); ``windows``
    logs every controller sampling window; ``tlp_timeline`` records each
    (time, app_id, tlp) actuation.
    """

    samples: dict[int, WindowSample]
    cycles: float
    tlp_timeline: list[tuple[float, int, int]]
    windows: list[tuple[float, dict[int, WindowSample]]] = field(default_factory=list)
    final_tlp: dict[int, int] = field(default_factory=dict)
    dram_utilization: float = 0.0

    def ipc(self, app_id: int) -> float:
        return self.samples[app_id].ipc

    def eb(self, app_id: int) -> float:
        return self.samples[app_id].eb

    def bw(self, app_id: int) -> float:
        return self.samples[app_id].bw

    def cmr(self, app_id: int) -> float:
        return self.samples[app_id].cmr

    @property
    def app_ids(self) -> list[int]:
        return sorted(self.samples)


class Simulator:
    """Whole-GPU simulator executing one or more applications."""

    def __init__(
        self,
        config: GPUConfig,
        apps: "list[AppProfile]",
        core_split: tuple[int, ...] | None = None,
        controller: "TLPController | None" = None,
        seed: int | None = None,
        l2_way_quota: dict[int, int] | None = None,
    ) -> None:
        if not apps:
            raise ValueError("need at least one application")
        self.config = config
        self.apps = list(apps)
        self.controller = controller
        self.seed = config.base_seed if seed is None else seed
        self.addr_map = AddressMap.from_config(config)
        self.events = EventQueue()
        self.crossbar = Crossbar(config)

        if core_split is None:
            per_app = config.n_cores // len(apps)
            if per_app < 1:
                raise ValueError("more applications than cores")
            core_split = tuple(per_app for _ in apps)
        if sum(core_split) > config.n_cores:
            raise ValueError(f"core split {core_split} exceeds {config.n_cores} cores")
        if len(core_split) != len(apps):
            raise ValueError("core_split length must match number of apps")
        self.core_split = core_split

        # Cores, private L1s and per-core MSHRs.
        self.cores: list[Core] = []
        self.l1s: list[SetAssocCache] = []
        self.l1_mshrs: list[MSHRTable] = []
        self.cores_of_app: dict[int, list[Core]] = {a: [] for a in range(len(apps))}
        core_id = 0
        for app_id, n in enumerate(core_split):
            for _ in range(n):
                core = Core(core_id, app_id, config)
                self.cores.append(core)
                self.cores_of_app[app_id].append(core)
                self.l1s.append(
                    SetAssocCache(config.l1.n_sets, config.l1.assoc, config.l1.line_bytes)
                )
                self.l1_mshrs.append(MSHRTable(config.l1.mshr_entries))
                core_id += 1

        # Shared L2 slices and DRAM channels, one pair per partition.
        geom = config.l2_per_channel
        self.l2s = [
            SetAssocCache(geom.n_sets, geom.assoc, geom.line_bytes)
            for _ in range(config.n_channels)
        ]
        if l2_way_quota:
            for l2 in self.l2s:
                l2.way_quota = dict(l2_way_quota)
        self.l2_mshrs = [
            MSHRTable(geom.mshr_entries * 4) for _ in range(config.n_channels)
        ]
        # Back-pressure: accesses that found their MSHR table full wait
        # here and are re-driven as fills release entries.
        self._l1_deferred: list[deque[Callable[[float], None]]] = [
            deque() for _ in self.cores
        ]
        self._l2_deferred: list[deque[Callable[[float], None]]] = [
            deque() for _ in range(config.n_channels)
        ]
        self.channels = [
            DRAMChannel(ch, config, self.addr_map, self.events.push)
            for ch in range(config.n_channels)
        ]
        # DRAM-queue backpressure: L2 misses deferred while a channel's
        # queue is full, re-driven as the scheduler dequeues.
        self._dram_deferred: list[deque[Callable[[float], None]]] = [
            deque() for _ in range(config.n_channels)
        ]
        for ch, channel in enumerate(self.channels):
            channel.on_dequeue = (
                lambda now, c=ch: self._drain_dram_deferred(c, now)
            )

        self.collector = StatsCollector(
            list(range(len(apps))), config.peak_bw_lines_per_cycle
        )
        self.tlp_timeline: list[tuple[float, int, int]] = []
        self.window_log: list[tuple[float, dict[int, WindowSample]]] = []
        self.current_tlp: dict[int, int] = {}
        self._ran = False

        # Populate warp contexts; warps of one core share a sequential
        # cursor so adjacent warps touch adjacent lines (row locality).
        for app_id, profile in enumerate(self.apps):
            for core in self.cores_of_app[app_id]:
                core_stream = profile.make_core_stream(
                    app_id, core.core_id, self.addr_map
                )
                for w in range(config.max_warps_per_core):
                    stream = profile.make_stream(
                        app_id=app_id,
                        core_id=core.core_id,
                        warp_id=w,
                        seed=self.seed,
                        addr_map=self.addr_map,
                        core_stream=core_stream,
                    )
                    core.add_warp(stream)

    # ------------------------------------------------------------------
    # TLP actuation
    # ------------------------------------------------------------------

    def set_tlp(self, app_id: int, tlp: int) -> None:
        """Set application ``app_id``'s warp limit on all of its cores."""
        tlp = max(1, min(tlp, self.config.max_tlp))
        now = self.events.now
        self.current_tlp[app_id] = tlp
        self.tlp_timeline.append((now, app_id, tlp))
        for core in self.cores_of_app[app_id]:
            for warp in core.set_tlp(tlp):
                self._start_warp(core, warp, now)

    def set_l1_bypass(self, app_id: int, bypass: bool) -> None:
        """Enable/disable L1 fill bypassing for an application."""
        for core in self.cores_of_app[app_id]:
            l1 = self.l1s[core.core_id]
            if bypass:
                l1.bypass_apps.add(app_id)
            else:
                l1.bypass_apps.discard(app_id)

    def set_l2_bypass(self, app_id: int, bypass: bool) -> None:
        """Enable/disable L2 fill bypassing for an application."""
        for l2 in self.l2s:
            if bypass:
                l2.bypass_apps.add(app_id)
            else:
                l2.bypass_apps.discard(app_id)

    # ------------------------------------------------------------------
    # Warp loop
    # ------------------------------------------------------------------

    def _start_warp(self, core: Core, warp: Warp, now: float) -> None:
        n_inst, lines = warp.stream.next_request()
        done = core.issue.request(now, n_inst)
        self.events.push(
            done, lambda t: self._compute_done(core, warp, n_inst, lines, t)
        )

    def _compute_done(
        self, core: Core, warp: Warp, n_inst: int, lines: list[int], now: float
    ) -> None:
        self.collector.note_insts(warp.app_id, n_inst)
        warp.iterations += 1
        if not lines:
            self._iteration_complete(core, warp, now)
            return
        warp.pending = len(lines)
        warp.issue_time = now
        l1 = self.l1s[core.core_id]
        n_hits = 0
        for line in lines:
            hit = l1.access(line, warp.app_id)
            self.collector.note_l1(warp.app_id, hit)
            if hit:
                n_hits += 1
            else:
                self._l1_miss(core, warp, line, now)
        if n_hits:
            self.events.push(
                now + self.config.l1_hit_latency,
                lambda t: self._warp_responses(core, warp, n_hits, t),
            )

    def _warp_responses(self, core: Core, warp: Warp, n: int, now: float) -> None:
        warp.pending -= n
        if warp.pending < 0:
            raise RuntimeError("warp received more responses than requests")
        if warp.pending == 0:
            self.collector.note_mem_request(warp.app_id, now - warp.issue_time)
            self._iteration_complete(core, warp, now)

    def _iteration_complete(self, core: Core, warp: Warp, now: float) -> None:
        if warp.active:
            self._start_warp(core, warp, now)
        else:
            warp.parked = True

    # ------------------------------------------------------------------
    # Memory hierarchy
    # ------------------------------------------------------------------

    def _l1_miss(self, core: Core, warp: Warp, line: int, now: float) -> None:
        status = self.l1_mshrs[core.core_id].allocate(line, warp)
        if status == "merged":
            return
        if status == "full":
            # Back-pressure: park the access; it is re-driven when a fill
            # frees an MSHR entry (see _l1_fill).
            self._l1_deferred[core.core_id].append(
                lambda t: self._l1_miss(core, warp, line, t)
            )
            return
        channel = self.addr_map.channel_of(line)
        arrive = self.crossbar.send_request(channel, now)
        self.events.push(
            arrive, lambda t: self._l2_access(channel, core, line, warp.app_id, t)
        )

    def _l2_access(
        self, channel: int, core: Core, line: int, app_id: int, now: float
    ) -> None:
        l2 = self.l2s[channel]
        hit = l2.access(line, app_id)
        self.collector.note_l2(app_id, hit)
        if hit:
            deliver = self.crossbar.send_response(
                channel, now + self.config.l2_hit_latency
            )
            self.events.push(deliver, lambda t: self._l1_fill(core, line, app_id, t))
            return
        self._l2_miss(channel, core, line, app_id, now)

    def _l2_miss(
        self, channel: int, core: Core, line: int, app_id: int, now: float
    ) -> None:
        """Allocate the L2 miss and send it to DRAM (access already counted)."""
        status = self.l2_mshrs[channel].allocate(line, core)
        if status == "merged":
            return
        if status == "full":
            self._l2_deferred[channel].append(
                lambda t: self._l2_miss(channel, core, line, app_id, t)
            )
            return
        self._to_dram(channel, line, app_id, now)

    def _to_dram(self, channel: int, line: int, app_id: int, now: float) -> None:
        """Enqueue at the channel, deferring while its queue is full."""
        if self.channels[channel].is_full:
            self._dram_deferred[channel].append(
                lambda t: self._to_dram(channel, line, app_id, t)
            )
            return
        bank, row = self.addr_map.bank_row_of(line)
        request = DRAMRequest(
            line_addr=line,
            app_id=app_id,
            bank=bank,
            row=row,
            enqueue_time=now,
            callback=lambda req, t, ch=channel: self._dram_done(ch, req, t),
        )
        self.channels[channel].enqueue(request, now)

    def _drain_dram_deferred(self, channel: int, now: float) -> None:
        deferred = self._dram_deferred[channel]
        if deferred and not self.channels[channel].is_full:
            deferred.popleft()(now)

    def _dram_done(self, channel: int, request: DRAMRequest, now: float) -> None:
        self.collector.note_dram(request.app_id, request.row_hit)
        self.l2s[channel].fill(request.line_addr, request.app_id)
        for core in self.l2_mshrs[channel].release(request.line_addr):
            deliver = self.crossbar.send_response(channel, now)
            self.events.push(
                deliver,
                lambda t, c=core: self._l1_fill(c, request.line_addr, request.app_id, t),
            )
        self._drain_deferred(
            self._l2_deferred[channel], self.l2_mshrs[channel], now
        )

    def _l1_fill(self, core: Core, line: int, app_id: int, now: float) -> None:
        self.l1s[core.core_id].fill(line, app_id)
        for warp in self.l1_mshrs[core.core_id].release(line):
            self._warp_responses(core, warp, 1, now)
        self._drain_deferred(
            self._l1_deferred[core.core_id], self.l1_mshrs[core.core_id], now
        )

    @staticmethod
    def _drain_deferred(
        deferred: deque[Callable[[float], None]], mshr: MSHRTable, now: float
    ) -> None:
        """Re-drive parked accesses while the MSHR table has free entries."""
        while deferred and len(mshr) < mshr.n_entries:
            deferred.popleft()(now)

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------

    def run(
        self,
        max_cycles: int,
        warmup: int | None = None,
        initial_tlp: dict[int, int] | None = None,
    ) -> SimResult:
        """Simulate for ``max_cycles`` and return measured-region results.

        ``warmup`` cycles (default: 20% of the run) are excluded from the
        reported samples so cold caches and controller search transients
        do not skew steady-state metrics.
        """
        if warmup is None:
            warmup = max_cycles // 5
        if warmup >= max_cycles:
            raise ValueError("warmup must be shorter than the run")
        if self._ran:
            raise RuntimeError(
                "a Simulator instance runs once; build a new one to re-run"
            )
        self._ran = True

        initial_tlp = initial_tlp or {}
        for app_id in range(len(self.apps)):
            self.set_tlp(app_id, initial_tlp.get(app_id, self.config.max_tlp))

        # Snapshot per-channel busy cycles at the start of measurement so
        # dram_utilization, like every other reported metric, covers only
        # the measured (post-warmup) region.
        busy_at_measurement = [0.0] * len(self.channels)

        def _begin_measurement(t: float) -> None:
            self.collector.start_measurement(t)
            busy_at_measurement[:] = [ch.busy_cycles for ch in self.channels]

        self.events.push(float(warmup), _begin_measurement)

        if self.controller is not None:
            self.controller.start(self, 0.0)
            self._schedule_controller_window(self.controller.sample_period)

        self.events.run_until(float(max_cycles))

        samples = self.collector.measurement(float(max_cycles))
        measured = float(max_cycles) - warmup
        busy = sum(
            ch.busy_cycles - base
            for ch, base in zip(self.channels, busy_at_measurement)
        )
        return SimResult(
            samples=samples,
            cycles=measured,
            tlp_timeline=list(self.tlp_timeline),
            windows=list(self.window_log),
            final_tlp=dict(self.current_tlp),
            dram_utilization=busy / (measured * len(self.channels)),
        )

    def _schedule_controller_window(self, when: float) -> None:
        self.events.push(when, self._controller_window)

    def _controller_window(self, now: float) -> None:
        assert self.controller is not None
        windows = self.collector.cut_window(now)
        self.window_log.append((now, windows))
        self.controller.on_window(self, now, windows)
        self._schedule_controller_window(now + self.controller.sample_period)
