"""Optional instrumentation probes.

The standard statistics (:mod:`repro.sim.stats`) are the averages the
paper's mechanisms consume.  Probes add deeper, opt-in visibility for
debugging and analysis without touching the default simulation path:

* :class:`LatencyHistogram` — log-bucketed per-application memory-
  latency distribution (P50/P95/P99, not just the mean);
* :class:`QueueDepthProbe` — periodic samples of each DRAM channel's
  queue depth and of the deferred (back-pressured) queues;
* :class:`OccupancyProbe` — periodic samples of L2 occupancy per
  application (who actually holds the shared cache).

Attach probes with :func:`attach`, run the simulation, then read the
probe objects.  Attaching wraps/schedules hooks on the simulator
instance; it never alters timing.

Every probe offers ``to_events()``, which renders its collected data as
:class:`repro.obs.Event` records (cycle-stamped, so traced runs stay
deterministic) ready to extend a tracer's event list for the Perfetto
export.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.trace import CLOCK_CYCLES, Event
from repro.units import Cycles, TraceTicks

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = [
    "LatencyHistogram",
    "QueueDepthProbe",
    "OccupancyProbe",
    "attach",
]


class LatencyHistogram:
    """Log₂-bucketed histogram of warp memory-request latencies.

    Buckets are [2^k, 2^(k+1)) cycles; percentiles are interpolated
    within a bucket, which is plenty for tail comparisons.
    """

    def __init__(self, max_exponent: int = 24) -> None:
        self.max_exponent = max_exponent
        self._buckets: dict[int, list[int]] = {}

    def record(self, app_id: int, latency: Cycles) -> None:
        if latency < 0:
            raise ValueError("latency cannot be negative")
        buckets = self._buckets.setdefault(
            app_id, [0] * (self.max_exponent + 1)
        )
        exp = 0 if latency < 1 else min(
            int(math.log2(latency)), self.max_exponent
        )
        buckets[exp] += 1

    def count(self, app_id: int) -> int:
        return sum(self._buckets.get(app_id, []))

    def percentile(self, app_id: int, q: float) -> Cycles:
        """Approximate q-quantile (q in (0, 1]) of an app's latency."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        buckets = self._buckets.get(app_id)
        if not buckets or not any(buckets):
            raise ValueError(f"no latency samples for app {app_id}")
        total = sum(buckets)
        cumulative = []
        running = 0
        for n in buckets:
            running += n
            cumulative.append(running)
        target = q * total
        idx = bisect_right(cumulative, target - 1e-12)
        idx = min(idx, len(buckets) - 1)
        lo, hi = 2**idx, 2 ** (idx + 1)
        prev = cumulative[idx - 1] if idx else 0
        in_bucket = buckets[idx]
        frac = (target - prev) / in_bucket if in_bucket else 0.0
        return lo + frac * (hi - lo)

    def summary(self, app_id: int) -> dict[str, float]:
        return {
            "p50": self.percentile(app_id, 0.50),
            "p95": self.percentile(app_id, 0.95),
            "p99": self.percentile(app_id, 0.99),
            "count": float(self.count(app_id)),
        }

    def to_events(self, ts: TraceTicks = 0.0) -> list[Event]:
        """One instant event per app with its latency percentiles."""
        return [
            Event(
                name=f"latency.app{app_id}",
                cat="probe",
                ph="i",
                ts=ts,
                clock=CLOCK_CYCLES,
                args=self.summary(app_id),
            )
            for app_id in sorted(self._buckets)
            if any(self._buckets[app_id])
        ]


@dataclass
class QueueDepthProbe:
    """Periodic samples of DRAM queue and deferred-queue depths."""

    period: Cycles = 1000.0
    #: (time, channel, queue_depth, deferred_depth)
    samples: list[tuple[float, int, int, int]] = field(default_factory=list)

    def max_depth(self, channel: int | None = None) -> int:
        depths = [
            q for _, ch, q, _ in self.samples
            if channel is None or ch == channel
        ]
        return max(depths, default=0)

    def mean_depth(self, channel: int | None = None) -> float:
        depths = [
            q for _, ch, q, _ in self.samples
            if channel is None or ch == channel
        ]
        return sum(depths) / len(depths) if depths else 0.0

    def ever_backpressured(self) -> bool:
        return any(d > 0 for _, _, _, d in self.samples)

    def to_events(self) -> list[Event]:
        """One counter event per (sample, channel) with both depths."""
        return [
            Event(
                name=f"dram.ch{ch}",
                cat="probe",
                ph="C",
                ts=t,
                clock=CLOCK_CYCLES,
                args={"queue": depth, "deferred": deferred},
            )
            for t, ch, depth, deferred in self.samples
        ]


@dataclass
class OccupancyProbe:
    """Periodic samples of L2 lines held per application."""

    period: Cycles = 2000.0
    #: (time, {app_id: resident lines across all slices})
    samples: list[tuple[float, dict[int, int]]] = field(default_factory=list)

    def mean_share(self, app_id: int) -> float:
        """Average fraction of resident L2 lines owned by ``app_id``."""
        shares = []
        for _, occupancy in self.samples:
            total = sum(occupancy.values())
            if total:
                shares.append(occupancy.get(app_id, 0) / total)
        return sum(shares) / len(shares) if shares else 0.0

    def to_events(self) -> list[Event]:
        """One counter event per sample with per-app resident lines."""
        return [
            Event(
                name="l2.occupancy",
                cat="probe",
                ph="C",
                ts=t,
                clock=CLOCK_CYCLES,
                args={f"app{a}": occupancy[a] for a in sorted(occupancy)},
            )
            for t, occupancy in self.samples
        ]


def attach(
    sim: "Simulator",
    latency: LatencyHistogram | None = None,
    queues: QueueDepthProbe | None = None,
    occupancy: OccupancyProbe | None = None,
) -> None:
    """Attach probes to a simulator before calling ``run``.

    The latency probe wraps the collector's request hook; the periodic
    probes self-reschedule on the event queue.  None of them changes
    simulated timing.
    """
    if latency is not None:
        original = sim.collector.note_mem_request

        def recording(app_id: int, lat: Cycles) -> None:
            latency.record(app_id, lat)
            original(app_id, lat)

        sim.collector.note_mem_request = recording  # type: ignore[method-assign]

    if queues is not None:
        def sample_queues(now: Cycles) -> None:
            for ch, channel in enumerate(sim.channels):
                queues.samples.append(
                    (now, ch, channel.queue_depth, len(sim._dram_deferred[ch]))
                )
            sim.events.push(now + queues.period, sample_queues)

        sim.events.push(queues.period, sample_queues)

    if occupancy is not None:
        def sample_occupancy(now: Cycles) -> None:
            merged: dict[int, int] = {}
            for l2 in sim.l2s:
                for app, lines in l2.occupancy_by_app().items():
                    merged[app] = merged.get(app, 0) + lines
            occupancy.samples.append((now, merged))
            sim.events.push(now + occupancy.period, sample_occupancy)

        sim.events.push(occupancy.period, sample_occupancy)
