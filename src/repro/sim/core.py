"""GPU core (SM / compute unit) model: warp contexts, issue bandwidth,
and static-warp-limiting (SWL) TLP control.

A warp alternates between a *compute phase* (a run of non-memory
instructions, whose length comes from the application's memory intensity
r_m) and a *memory instruction* that issues one or more coalesced
cache-line accesses and blocks until the last response returns.  This
closed-loop structure is what makes IPC rise with TLP while memory
latency is being hidden, and fall once cache thrashing and queueing
dominate — the behaviour in Figure 2 of the paper.

Issue bandwidth is modelled by :class:`IssueServer`: the core's two warp
schedulers collectively issue ``issue_width`` instructions per cycle,
shared greedy-oldest-first (GTO-like) among warps in compute phase; a
single warp can retire at most one instruction per cycle.

TLP is enforced SWL-style (§II): only the first ``tlp * schedulers``
warp contexts may issue.  Deactivated warps drain their outstanding
memory request and park; reactivated warps resume their instruction
stream where they left off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.config import GPUConfig
from repro.units import Cycles, Insts, InstsPerCycle

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import MemTxn

__all__ = ["WarpStream", "Warp", "IssueServer", "Core"]


class WarpStream(Protocol):
    """Per-warp synthetic instruction/address stream.

    Implementations live in :mod:`repro.workloads.synthetic`.
    """

    def next_request(self) -> tuple[int, list[int]]:
        """Return the next iteration of the warp loop.

        The first element is the number of warp instructions retired in
        this iteration (the compute run plus the memory instruction);
        the second is the list of cache-line addresses the memory
        instruction touches after coalescing (possibly empty for a
        pure-compute chunk).
        """
        ...


class Warp:
    """One warp context on a core."""

    __slots__ = ("warp_id", "app_id", "stream", "active", "parked", "pending",
                 "issue_time", "iterations", "compute_txn", "resp_txn")

    def __init__(self, warp_id: int, app_id: int, stream: WarpStream) -> None:
        self.warp_id = warp_id
        self.app_id = app_id
        self.stream = stream
        #: allowed to issue by the current TLP limit
        self.active = False
        #: drained and waiting for reactivation (True only when inactive)
        self.parked = True
        #: outstanding memory responses for the current memory instruction
        self.pending = 0
        #: time the in-flight memory instruction was issued (for latency)
        self.issue_time: Cycles = 0.0
        self.iterations = 0
        #: the warp's recurring engine transactions (compute-phase
        #: completion and L1-hit response); at most one of each is ever
        #: in flight, so the engine reuses them instead of allocating
        #: per iteration.  Wired up by the Simulator at construction.
        self.compute_txn: MemTxn | None = None
        self.resp_txn: MemTxn | None = None


class IssueServer:
    """Shared instruction-issue bandwidth of one core.

    ``request`` reserves ``n_inst`` instructions' worth of issue slots
    and returns the cycle at which the requesting warp's compute phase
    completes: never faster than the core-wide ``issue_width`` allows in
    aggregate, and never faster than one instruction per cycle for the
    individual warp.
    """

    __slots__ = ("issue_width", "free_at")

    def __init__(self, issue_width: InstsPerCycle) -> None:
        if issue_width <= 0:
            raise ValueError("issue_width must be positive")
        self.issue_width: InstsPerCycle = issue_width
        self.free_at: Cycles = 0.0

    def request(self, now: Cycles, n_inst: Insts) -> Cycles:
        start = now if now > self.free_at else self.free_at
        self.free_at = start + n_inst / self.issue_width
        finish = self.free_at
        # 1 IPC per-warp ceiling: n_inst deliberately converts to cycles
        # at the 1-inst-per-cycle retire limit.
        min_finish = now + n_inst  # repro: noqa[R012]
        return finish if finish > min_finish else min_finish


class Core:
    """One GPU core: warp contexts + issue server + SWL TLP limit."""

    __slots__ = ("core_id", "app_id", "config", "issue", "warps", "tlp",
                 "fill_txn", "fill_time", "tick_head", "tick_tail")

    def __init__(self, core_id: int, app_id: int, config: GPUConfig) -> None:
        self.core_id = core_id
        self.app_id = app_id
        self.config = config
        self.issue = IssueServer(config.issue_width)
        self.warps: list[Warp] = []
        self.tlp = config.max_tlp
        #: the core's most recently scheduled, still-queued L1 fill
        #: transaction and its event time; a new fill due at exactly the
        #: same instant coalesces into it (engine fold, see
        #: ``MemTxn.L1_FILL_MULTI``).  Cleared when the event dispatches.
        self.fill_txn: "MemTxn | None" = None
        self.fill_time: Cycles = -1.0
        #: open per-core compute stride chain: head/tail of the linked
        #: chain of same-instant compute records riding one queued
        #: event (engine fold, see ``Simulator._start_warp``).  Cleared
        #: when the head dispatches.
        self.tick_head: "MemTxn | None" = None
        self.tick_tail: "MemTxn | None" = None

    def add_warp(self, stream: WarpStream) -> Warp:
        warp = Warp(len(self.warps), self.app_id, stream)
        self.warps.append(warp)
        return warp

    @property
    def active_limit(self) -> int:
        """Number of warp contexts allowed to issue at the current TLP."""
        limit = self.tlp * self.config.schedulers_per_core
        return min(limit, len(self.warps))

    def set_tlp(self, tlp: int) -> list[Warp]:
        """Apply a new warp limit; returns parked warps to (re)start.

        Warps beyond the new limit have ``active`` cleared and will park
        when their in-flight iteration drains.  Warps newly inside the
        limit that were parked are returned so the engine can restart
        their loops.
        """
        if tlp < 1:
            raise ValueError("TLP must be at least 1")
        self.tlp = min(tlp, self.config.max_tlp)
        limit = self.active_limit
        to_start: list[Warp] = []
        for i, warp in enumerate(self.warps):
            should_run = i < limit
            if should_run and not warp.active:
                warp.active = True
                if warp.parked:
                    warp.parked = False
                    to_start.append(warp)
            elif not should_run and warp.active:
                warp.active = False
        return to_start
