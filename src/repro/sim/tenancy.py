"""Open-system tenancy: the live application roster and its lifecycle.

The paper evaluates fixed 2-app co-runs, but a production GPU juggles a
churning mix: jobs arrive, run for a while, and leave.  This module
makes the roster a first-class runtime object instead of a
constructor-time constant:

* :func:`split_cores` is the one deterministic core-partitioning rule —
  an equal split with the remainder handed to the first applications, so
  no core is ever silently idle.
* :class:`TenancyEvent` is one scheduled roster change (an arrival with
  its application profile, or a departure by app id), validated at
  construction and carried by :class:`repro.workloads.arrivals`
  schedules.
* :class:`Tenancy` owns the live roster of a running
  :class:`~repro.sim.engine.Simulator` and performs ``attach``/``detach``
  at cycle boundaries via *drain-and-rebind*: reassigned cores
  deactivate their warps (in-flight work drains and is credited to the
  departing owner), per-core fold state is reset so same-instant
  batches never mix applications, fresh warp contexts are populated for
  the new owner, and the stats window is sealed so no observation
  window ever straddles a roster change.

App ids are monotonic and never reused: the k-th arrival of a run gets
id ``n_initial + k``, which keeps address spaces, stream seeds, and
per-app counters disjoint across the whole run.  A simulator built
without arrival events never calls into ``attach``/``detach``, so the
closed-system behavior (and its golden fixtures) is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.units import Cycles

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import Simulator
    from repro.workloads.synthetic import AppProfile

__all__ = ["TenancyEvent", "Tenancy", "split_cores"]


def split_cores(n_cores: int, n_apps: int) -> tuple[int, ...]:
    """Deterministic equal core split with the remainder used, not lost.

    Every application gets ``n_cores // n_apps`` cores and the first
    ``n_cores % n_apps`` applications get one extra, so the split always
    sums to ``n_cores`` — 8 cores over 3 apps is ``(3, 3, 2)``, never
    ``(2, 2, 2)`` with two cores silently idle.
    """
    if n_apps < 1:
        raise ValueError("need at least one application")
    base, extra = divmod(n_cores, n_apps)
    if base < 1:
        raise ValueError("more applications than cores")
    return tuple(base + 1 if i < extra else base for i in range(n_apps))


@dataclass(frozen=True)
class TenancyEvent:
    """One scheduled roster change of an open-system run.

    An ``attach`` carries the arriving application's profile (its app id
    is assigned by the engine when the event fires: ids are monotonic
    and never reused).  A ``detach`` names the departing app id, which a
    schedule can predict deterministically — initial applications get
    ids ``0..n-1`` and the k-th arrival gets ``n + k``.
    """

    cycle: int
    action: str  # "attach" | "detach"
    profile: "AppProfile | None" = None
    app_id: int | None = None

    def __post_init__(self) -> None:
        if self.action not in ("attach", "detach"):
            raise ValueError(f"unknown tenancy action {self.action!r}")
        if self.cycle <= 0:
            raise ValueError("tenancy events must be scheduled after cycle 0")
        if self.action == "attach" and self.profile is None:
            raise ValueError("attach events need an application profile")
        if self.action == "detach" and self.app_id is None:
            raise ValueError("detach events need the departing app_id")


class Tenancy:
    """The live application roster of one running simulator.

    Owns the attach/detach lifecycle: roster membership, deterministic
    drain-and-rebind core reassignment, per-app stats stream creation,
    window sealing at churn boundaries, and the JSON-native ``timeline``
    of roster changes that rides on :class:`~repro.sim.engine.SimResult`
    (empty for a closed-system run).
    """

    __slots__ = ("sim", "live", "timeline")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: live app ids, ascending (ids are monotonic, so append keeps
        #: the order)
        self.live: list[int] = list(range(len(sim.apps)))
        #: JSON-native roster-change records, in event order
        self.timeline: list[dict] = []

    # -- lifecycle --------------------------------------------------------

    def attach(self, profile: "AppProfile", now: Cycles) -> int:
        """Admit an arriving application at a cycle boundary.

        Returns the new app id.  The arrival gets a fresh stats stream,
        a contiguous core block via rebind, and starts at maxTLP (the
        controller's ``on_attach`` hook may immediately retarget it).
        """
        sim = self.sim
        if len(self.live) >= len(sim.cores):
            raise ValueError(
                f"cannot attach: {len(self.live)} live applications already "
                f"occupy all {len(sim.cores)} cores"
            )
        self._seal_window(now)
        app_id = len(sim.apps)
        sim.apps.append(profile)
        sim.collector.add_app(app_id)
        sim._stats.append(sim.collector.apps[app_id])
        sim.cores_of_app[app_id] = []
        self.live.append(app_id)
        changed = self._rebind()
        sim.set_tlp(app_id, sim.config.max_tlp)
        for a in sorted(changed - {app_id}):
            sim.set_tlp(a, sim.current_tlp.get(a, sim.config.max_tlp))
        self._record("attach", app_id, profile, now)
        controller = sim.controller
        if controller is not None:
            hook = getattr(controller, "on_attach", None)
            if hook is not None:
                hook(sim, now, app_id)
        return app_id

    def detach(self, app_id: int, now: Cycles) -> None:
        """Retire a departing application at a cycle boundary.

        Its cores drain and rebind to the surviving applications;
        in-flight work completes and is still credited to the departed
        app's (sealed, but preserved) counters.
        """
        sim = self.sim
        if app_id not in self.live:
            raise ValueError(f"app {app_id} is not live")
        if len(self.live) == 1:
            raise ValueError("cannot detach the last live application")
        profile = sim.apps[app_id]
        self._seal_window(now)
        self.live.remove(app_id)
        sim._detached_apps.add(app_id)
        # Retire actuator state: bypass flags drop everywhere, the TLP
        # entry leaves the live map, and any still-queued delayed
        # actuations for this app become no-ops (Simulator.set_tlp
        # ignores detached apps).
        for l1 in sim.l1s:
            l1.bypass_apps.discard(app_id)
        for l2 in sim.l2s:
            l2.bypass_apps.discard(app_id)
        sim.current_tlp.pop(app_id, None)
        changed = self._rebind()
        sim.cores_of_app[app_id] = []
        for a in sorted(changed):
            sim.set_tlp(a, sim.current_tlp.get(a, sim.config.max_tlp))
        self._record("detach", app_id, profile, now)
        controller = sim.controller
        if controller is not None:
            hook = getattr(controller, "on_detach", None)
            if hook is not None:
                hook(sim, now, app_id)

    # -- internals --------------------------------------------------------

    def _seal_window(self, now: Cycles) -> None:
        """Cut the stats window at the churn boundary.

        Guarantees no :class:`~repro.sim.stats.WindowSample` ever spans
        a roster change: the sealed window lands in ``window_log`` and
        the next controller window starts from the boundary.  A churn
        event coinciding exactly with the last cut seals nothing (a
        zero-cycle window is undefined).
        """
        sim = self.sim
        if now > sim.collector.window_start:
            windows = sim.collector.cut_window(now)
            sim.window_log.append((now, windows))

    def _rebind(self) -> set[int]:
        """Reassign cores to the live roster; return apps that changed.

        Deterministic drain-and-rebind: live apps (ascending id) get
        contiguous core blocks sized by :func:`split_cores`.  A core
        changing owners deactivates its warps — their in-flight
        iterations drain and park, credited to the old owner — resets
        the per-core same-instant fold state (fill coalescing and
        compute stride chains must never batch across applications),
        and is repopulated with fresh warp contexts for the new owner.
        Returned app ids gained at least one core and need their TLP
        re-applied to activate the fresh warps.
        """
        sim = self.sim
        split = split_cores(len(sim.cores), len(self.live))
        new_owner: dict[int, int] = {}
        idx = 0
        for app_id, n in zip(self.live, split):
            for offset in range(n):
                new_owner[sim.cores[idx + offset].core_id] = app_id
            idx += n
        changed: set[int] = set()
        rosters: dict[int, list] = {a: [] for a in self.live}
        for core in sim.cores:
            owner = new_owner[core.core_id]
            rosters[owner].append(core)
            if core.app_id == owner:
                continue
            changed.add(owner)
            for warp in core.warps:
                warp.active = False
            core.warps = []
            core.app_id = owner
            core.fill_txn = None
            core.fill_time = -1.0
            core.tick_head = None
            core.tick_tail = None
            sim._populate_core(core, owner)
        for app_id, cores in rosters.items():
            sim.cores_of_app[app_id] = cores
        return changed

    def _record(
        self, event: str, app_id: int, profile: "AppProfile", now: Cycles
    ) -> None:
        sim = self.sim
        self.timeline.append(
            {
                "cycle": float(now),
                "event": event,
                "app": app_id,
                "abbr": str(getattr(profile, "abbr", "?")),
                "roster": list(self.live),
                "cores": [len(sim.cores_of_app[a]) for a in self.live],
            }
        )
