"""GDDR5 DRAM channel with FR-FCFS scheduling.

Each memory partition owns one :class:`DRAMChannel`.  A channel has
``banks_per_channel`` banks (grouped into bank groups), per-bank row
buffers, and a shared data bus.  The scheduler implements FR-FCFS
(first-ready, first-come-first-served): among queued requests it first
serves row-buffer hits (oldest hit first), falling back to the oldest
request, with a streak cap so a hot row cannot starve the queue
indefinitely.

Timing model (all in core cycles, see :class:`repro.config.DRAMTimings`):

* a row-buffer hit issues a column command and puts data on the bus
  ``t_cl`` cycles later;
* a row miss first precharges (``t_rp``, skipped if the bank is idle)
  and activates (``t_rcd``), respecting the activate-to-activate window
  ``t_rrd`` across the channel and ``t_ras`` within the bank;
* every transfer occupies the shared data bus for ``burst_cycles``;
  column commands to the same bank group are separated by ``t_ccd``.

Scheduling decisions are pipelined: the next decision is taken when the
current transfer *starts* on the bus, so activations overlap in-flight
bursts and bank-level parallelism emerges naturally.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Callable

from repro.config import GPUConfig
from repro.sim.address import AddressMap
from repro.units import Count, Cycles, Fraction, Lines

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EventQueue

__all__ = ["DRAMRequest", "DRAMChannel"]


class DRAMRequest:
    """One cache-line read request queued at a channel.

    The request is itself the data-return event: the scheduler pushes it
    on the event queue at its burst's end time, and calling it invokes
    ``callback(request, now)`` — no per-request closure is allocated.
    """

    __slots__ = (
        "line_addr", "app_id", "bank", "row", "enqueue_time", "callback",
        "row_hit",
    )

    def __init__(
        self,
        line_addr: int,
        app_id: int,
        bank: int,
        row: int,
        enqueue_time: Cycles,
        callback: Callable[["DRAMRequest", float], None],
    ) -> None:
        self.line_addr = line_addr
        self.app_id = app_id
        self.bank = bank
        self.row = row
        self.enqueue_time = enqueue_time
        self.callback = callback
        self.row_hit = False

    def __call__(self, now: Cycles) -> None:
        self.callback(self, now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DRAMRequest(line_addr={self.line_addr:#x}, app_id={self.app_id},"
            f" bank={self.bank}, row={self.row}, row_hit={self.row_hit})"
        )


class _Bank:
    __slots__ = ("open_row", "free_at", "ras_until")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.free_at: Cycles = 0.0
        self.ras_until: Cycles = 0.0


class DRAMChannel:
    """One GDDR5 channel: banks + row buffers + FR-FCFS scheduler."""

    __slots__ = (
        "channel_id", "timings", "addr_map", "frfcfs_cap", "capacity",
        "_events", "_schedule_event", "on_dequeue", "_banks",
        "_group_col_free", "queue", "bus_free", "last_activate",
        "_deciding", "_hit_streak", "row_hits", "row_misses",
        "lines_transferred", "busy_cycles", "_decide_event",
        "_bank_group_of", "_t_ccd", "_t_cl", "_t_rp", "_t_rcd", "_t_ras",
        "_t_rrd", "_burst", "_lookahead",
    )

    def __init__(
        self,
        channel_id: int,
        config: GPUConfig,
        addr_map: AddressMap,
        events: "EventQueue",
    ) -> None:
        self.channel_id = channel_id
        self.timings = config.dram
        self.addr_map = addr_map
        self.frfcfs_cap = config.frfcfs_cap
        self.capacity = config.dram_queue_depth
        #: the owning event queue; the scheduler pushes straight into its
        #: calendar wheel (same inlined fast path the engine hot loop
        #: uses) — one decision schedules two events, so the push cost
        #: is on the critical path of every DRAM line.
        self._events = events
        self._schedule_event = events.push
        # Timing scalars, flattened off the config once (the attribute
        # chain through ``self.timings`` is per-decision cost otherwise).
        t = config.dram
        self._t_ccd: Cycles = t.t_ccd
        self._t_cl: Cycles = t.t_cl
        self._t_rp: Cycles = t.t_rp
        self._t_rcd: Cycles = t.t_rcd
        self._t_ras: Cycles = t.t_ras
        self._t_rrd: Cycles = t.t_rrd
        self._burst: Cycles = t.burst_cycles
        self._lookahead: Cycles = t.row_miss_service + t.burst_cycles
        #: called after each dequeue so a backpressured upstream (the L2
        #: miss path) can re-drive a deferred request
        self.on_dequeue: Callable[[float], None] | None = None
        #: pre-bound hot references (one bound method per channel, not
        #: one per scheduling decision)
        self._decide_event = self._decide
        self._bank_group_of = addr_map.bank_group_of
        self._banks = [_Bank() for _ in range(config.banks_per_channel)]
        self._group_col_free = [0.0] * config.bank_groups_per_channel
        self.queue: list[DRAMRequest] = []
        self.bus_free: Cycles = 0.0
        self.last_activate: Cycles = -1e18
        self._deciding = False
        self._hit_streak = 0
        # statistics
        self.row_hits: Count = 0
        self.row_misses: Count = 0
        self.lines_transferred: Lines = 0
        self.busy_cycles: Cycles = 0.0

    # --- public API ------------------------------------------------------

    def enqueue(self, request: DRAMRequest, now: Cycles) -> None:
        if self.is_full:
            raise RuntimeError(
                f"channel {self.channel_id} queue overflow; check is_full first"
            )
        self.queue.append(request)
        if not self._deciding:
            self._deciding = True
            self._schedule_event(now, self._decide_event)

    @property
    def queue_depth(self) -> int:
        return len(self.queue)

    @property
    def is_full(self) -> bool:
        return len(self.queue) >= self.capacity

    def utilization(self, elapsed: Cycles) -> Fraction:
        """Fraction of elapsed cycles the data bus carried data."""
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0

    # --- scheduling -------------------------------------------------------

    #: scheduler queue visibility (real controllers scan a bounded window)
    SCAN_WINDOW = 64

    def _pick(self, now: Cycles) -> int:
        """FR-FCFS choice within the scan window.

        First ready: the oldest row-buffer hit (unless the hit streak is
        capped); otherwise the oldest request whose bank frees earliest,
        so independent banks activate in parallel.

        One pass serves both priorities: return at the first hit, and
        track the miss fallback along the way.  Once an already-ready
        bank is seen the fallback is locked (the oldest ready bank
        wins), matching the early exit the two-loop form used.
        """
        queue = self.queue
        banks = self._banks
        window = min(len(queue), self.SCAN_WINDOW)
        if self._hit_streak < self.frfcfs_cap:
            best, best_ready = 0, float("inf")
            for i in range(window):
                req = queue[i]
                bank = banks[req.bank]
                if bank.open_row == req.row:
                    return i
                if best_ready > now:
                    ready = bank.free_at
                    if ready < best_ready:
                        best, best_ready = i, ready
            return best
        best, best_ready = 0, float("inf")
        for i in range(window):
            ready = banks[queue[i].bank].free_at
            if ready < best_ready:
                best, best_ready = i, ready
                if ready <= now:
                    break  # the oldest already-ready bank wins
        return best

    def _decide(self, now: Cycles) -> None:
        queue = self.queue
        if not queue:
            self._deciding = False
            return
        # With one queued request the FR-FCFS choice is trivial; the
        # scan only runs when there is an actual decision to make.
        req = queue.pop() if len(queue) == 1 else queue.pop(self._pick(now))
        if self.on_dequeue is not None:
            self.on_dequeue(now)
        bank = self._banks[req.bank]
        group = self._bank_group_of(req.bank)
        group_col_free = self._group_col_free
        row = req.row

        row_hit = bank.open_row == row
        req.row_hit = row_hit
        if row_hit:
            self._hit_streak += 1
            self.row_hits += 1
            col_issue = now
            if bank.free_at > col_issue:
                col_issue = bank.free_at
            gcf = group_col_free[group]
            if gcf > col_issue:
                col_issue = gcf
        else:
            self._hit_streak = 0
            self.row_misses += 1
            act_start = now
            if bank.free_at > act_start:
                act_start = bank.free_at
            rrd_ok = self.last_activate + self._t_rrd
            if rrd_ok > act_start:
                act_start = rrd_ok
            if bank.open_row is not None:
                # Precharge the open row first (respect tRAS already folded
                # into bank.ras_until).
                if bank.ras_until > act_start:
                    act_start = bank.ras_until
                act_start += self._t_rp
            self.last_activate = act_start
            bank.ras_until = act_start + self._t_ras
            bank.open_row = row
            col_issue = act_start + self._t_rcd
            gcf = group_col_free[group]
            if gcf > col_issue:
                col_issue = gcf

        t_ccd = self._t_ccd
        data_ready = col_issue + self._t_cl
        group_col_free[group] = col_issue + t_ccd
        bus_free = self.bus_free
        data_start = data_ready if data_ready > bus_free else bus_free
        data_end = data_start + self._burst
        self.bus_free = data_end
        bank.free_at = col_issue + t_ccd
        self.lines_transferred += 1
        self.busy_cycles += self._burst

        # The request object is its own data-return event (see
        # DRAMRequest.__call__) — no per-burst closure.  Both pushes use
        # the calendar wheel's inlined fast path (engine-scheduled times
        # are never in the past; overflow is rare).
        ev = self._events
        slot = int(data_end) >> 4  # EventQueue.BUCKET_SHIFT
        if slot - ev._cursor < 1024:  # EventQueue.WHEEL_SIZE
            seq = ev._seq
            ev._seq = seq + 1
            ev._size += 1
            heappush(ev._wheel[slot & ev._mask], (data_end, seq, req))
        else:
            ev.push(data_end, req)
        if not queue:
            self._deciding = False
            return
        # Pipeline: a new command can be scheduled every t_ccd cycles, so
        # activations to other banks overlap the in-flight burst.  When
        # the data bus is backlogged, hold the next decision so that only
        # about one activate-to-data pipeline's worth of requests is
        # committed ahead of the bus (bounded-lookahead FR-FCFS): deep
        # enough that row-miss activations overlap at t_rrd spacing, yet
        # shallow enough that late-arriving row hits can still reorder in.
        next_decision = now + t_ccd
        lagged = data_end - self._lookahead
        if lagged > next_decision:
            next_decision = lagged
        slot = int(next_decision) >> 4
        if slot - ev._cursor < 1024:
            seq = ev._seq
            ev._seq = seq + 1
            ev._size += 1
            heappush(
                ev._wheel[slot & ev._mask],
                (next_decision, seq, self._decide_event),
            )
        else:
            ev.push(next_decision, self._decide_event)
