"""Discrete-event GPU timing simulator substrate.

This package implements the machine the paper evaluates on: multi-warp
cores with warp-limiting issue, private L1 data caches, a crossbar, a
sliced shared L2, and GDDR5-timed DRAM channels with FR-FCFS scheduling.
The paper's TLP-management mechanisms (``repro.core``) sit on top of it.
"""

from repro.sim.address import AddressMap
from repro.sim.cache import CacheStats, MSHRTable, SetAssocCache
from repro.sim.dram import DRAMChannel
from repro.sim.engine import (
    EventQueue,
    SimResult,
    Simulator,
    set_engine_profiling,
)
from repro.sim.probes import (
    LatencyHistogram,
    OccupancyProbe,
    QueueDepthProbe,
    attach,
)
from repro.sim.stats import AppStats, StatsCollector, WindowSample
from repro.sim.tenancy import Tenancy, TenancyEvent, split_cores

__all__ = [
    "AddressMap",
    "SetAssocCache",
    "CacheStats",
    "MSHRTable",
    "DRAMChannel",
    "EventQueue",
    "Simulator",
    "SimResult",
    "AppStats",
    "StatsCollector",
    "WindowSample",
    "LatencyHistogram",
    "QueueDepthProbe",
    "OccupancyProbe",
    "attach",
    "set_engine_profiling",
    "Tenancy",
    "TenancyEvent",
    "split_cores",
]
