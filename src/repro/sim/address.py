"""Global address space layout and DRAM/L2 interleaving.

The global linear address space is interleaved among the memory
partitions in chunks of ``interleave_bytes`` (256 B in Table I).  Each
memory partition owns one L2 slice and one DRAM channel, so the channel
id of an address is also its L2-slice id.

Within a channel, the channel-local address stream is mapped onto DRAM
banks row-by-row so that sequential traffic enjoys row-buffer locality
while spreading across banks at row granularity.

Applications live in disjoint regions of the address space (bit 44 and
up carry the application id), so cache sharing between co-scheduled
applications happens only through *capacity* contention, exactly as for
independent address spaces on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig

__all__ = ["AddressMap", "APP_REGION_SHIFT"]

#: Bit position where the application id is encoded in global addresses.
APP_REGION_SHIFT = 44


@dataclass(frozen=True)
class AddressMap:
    """Maps byte addresses to (channel, bank, row) and L2 sets.

    Pure functions of the configuration; shared by the L2 slices, the
    DRAM channels, and the synthetic address-stream generators.
    """

    interleave_bytes: int
    n_channels: int
    banks_per_channel: int
    bank_groups_per_channel: int
    row_bytes: int
    line_bytes: int

    @classmethod
    def from_config(cls, config: GPUConfig) -> "AddressMap":
        return cls(
            interleave_bytes=config.interleave_bytes,
            n_channels=config.n_channels,
            banks_per_channel=config.banks_per_channel,
            bank_groups_per_channel=config.bank_groups_per_channel,
            row_bytes=config.row_bytes,
            line_bytes=config.line_bytes,
        )

    # --- application regions ------------------------------------------------

    @staticmethod
    def app_base(app_id: int) -> int:
        """Base byte address of application ``app_id``'s region."""
        return (app_id + 1) << APP_REGION_SHIFT

    @staticmethod
    def app_of(addr: int) -> int:
        """Recover the application id encoded in ``addr``."""
        return (addr >> APP_REGION_SHIFT) - 1

    # --- line granularity -----------------------------------------------------

    def line_of(self, addr: int) -> int:
        """Cache-line address (byte address truncated to line granularity)."""
        return addr - (addr % self.line_bytes)

    # --- channel interleaving -------------------------------------------------

    def channel_of(self, addr: int) -> int:
        """Memory partition (channel == L2 slice) owning ``addr``."""
        return (addr // self.interleave_bytes) % self.n_channels

    def channel_local(self, addr: int) -> int:
        """Compact channel-local byte address (channel bits stripped)."""
        chunk = addr // self.interleave_bytes
        return (chunk // self.n_channels) * self.interleave_bytes + (
            addr % self.interleave_bytes
        )

    # --- DRAM geometry ----------------------------------------------------------

    def bank_row_of(self, addr: int) -> tuple[int, int]:
        """(bank, row) of ``addr`` within its channel.

        Rows are striped across banks: consecutive rows of the
        channel-local address space land in consecutive banks, so a
        long sequential stream keeps every bank's row buffer warm.
        """
        local_row = self.channel_local(addr) // self.row_bytes
        bank = local_row % self.banks_per_channel
        row = local_row // self.banks_per_channel
        return bank, row

    def bank_group_of(self, bank: int) -> int:
        """Bank group of a bank id (banks striped across groups)."""
        return bank % self.bank_groups_per_channel
