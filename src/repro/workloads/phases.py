"""Phased applications: kernels whose memory behaviour changes over time.

Real GPGPU applications run sequences of kernels with different memory
signatures; the paper's PBS restarts its search when a kernel is
re-launched, and Figure 11 shows the controller re-tuning mid-run.  A
:class:`PhasedProfile` strings several :class:`~repro.workloads.synthetic.
AppProfile` phases together: every warp switches to the next phase's
address-stream behaviour after a fixed number of loop iterations,
cycling through the phase list.

A ``PhasedProfile`` duck-types the profile interface the simulator needs
(``abbr``, ``make_core_stream``, ``make_stream``), so it can be passed
anywhere an ``AppProfile`` is accepted — including the high-level
runner and the online controllers, whose drift detection is exactly
what phase changes exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.address import AddressMap
from repro.workloads.synthetic import AppProfile, CoreStream, WarpAddressStream

__all__ = ["PhasedProfile", "PhasedStream"]


@dataclass(frozen=True)
class PhasedProfile:
    """A cyclic sequence of behaviour phases for one application."""

    abbr: str
    phases: tuple[AppProfile, ...]
    iterations_per_phase: int = 200

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a phased profile needs at least one phase")
        if self.iterations_per_phase < 1:
            raise ValueError("iterations_per_phase must be >= 1")

    @property
    def name(self) -> str:
        inner = " -> ".join(p.abbr for p in self.phases)
        return f"phased({inner})"

    def make_core_stream(
        self, app_id: int, core_id: int, addr_map: AddressMap
    ) -> list[CoreStream]:
        """One shared cursor per phase (phases stream separate regions)."""
        return [
            phase.make_core_stream(app_id, core_id, addr_map)
            for phase in self.phases
        ]

    def make_stream(
        self,
        app_id: int,
        core_id: int,
        warp_id: int,
        seed: int,
        addr_map: AddressMap,
        core_stream: list[CoreStream],
    ) -> "PhasedStream":
        streams = [
            phase.make_stream(
                app_id, core_id, warp_id, seed + i, addr_map, core_stream[i]
            )
            for i, phase in enumerate(self.phases)
        ]
        return PhasedStream(streams, self.iterations_per_phase)


class PhasedStream:
    """Delegates to one phase's stream, rotating every N iterations."""

    def __init__(
        self, streams: list[WarpAddressStream], iterations_per_phase: int
    ) -> None:
        if not streams:
            raise ValueError("need at least one phase stream")
        self.streams = streams
        self.iterations_per_phase = iterations_per_phase
        self._iteration = 0

    @property
    def current_phase(self) -> int:
        return (self._iteration // self.iterations_per_phase) % len(self.streams)

    def next_request(self) -> tuple[int, list[int]]:
        stream = self.streams[self.current_phase]
        self._iteration += 1
        return stream.next_request()
