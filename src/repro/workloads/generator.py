"""Multi-application workload construction.

The paper studies 25 two-application workloads spanning 16 single
applications, chosen to exhibit shared cache/memory interference, and
reports ten representative pairs in its per-workload figures (Figures 4,
9 and 10).  :data:`REPRESENTATIVE_PAIRS` is exactly that list;
:data:`EVALUATED_PAIRS` is our full 25-pair set (the representative ten
plus fifteen more spanning the zoo's behaviour groups).
"""

from __future__ import annotations

import itertools

from repro.workloads.synthetic import AppProfile
from repro.workloads.table4 import APPLICATIONS, app_by_abbr

__all__ = [
    "pair",
    "triple",
    "workload_name",
    "all_pairs",
    "REPRESENTATIVE_PAIRS",
    "EVALUATED_PAIRS",
]

#: The ten pairs the paper's per-workload figures report.
REPRESENTATIVE_PAIRS: tuple[tuple[str, str], ...] = (
    ("DS", "TRD"),
    ("BFS", "FFT"),
    ("BLK", "BFS"),
    ("BLK", "TRD"),
    ("FFT", "TRD"),
    ("FWT", "TRD"),
    ("JPEG", "CFD"),
    ("JPEG", "LIB"),
    ("JPEG", "LUH"),
    ("SCP", "TRD"),
)

#: The full evaluated set: 25 pairs spanning 16 applications, mixing
#: cache-sensitive, streaming, and bandwidth-hungry behaviour the same
#: way the paper's selection does.
EVALUATED_PAIRS: tuple[tuple[str, str], ...] = REPRESENTATIVE_PAIRS + (
    ("BFS", "TRD"),
    ("BFS", "LIB"),
    ("JPEG", "TRD"),
    ("JPEG", "BLK"),
    ("LPS", "TRD"),
    ("SRAD", "BLK"),
    ("DS", "BLK"),
    ("GUPS", "LIB"),
    ("HS", "TRD"),
    ("BP", "CFD"),
    ("FFT", "BLK"),
    ("FFT", "CFD"),
    ("LUH", "TRD"),
    ("SCP", "BFS"),
    ("FWT", "LPS"),
)


def pair(abbr_a: str, abbr_b: str) -> tuple[AppProfile, AppProfile]:
    """Build a two-application workload from Table IV abbreviations."""
    return app_by_abbr(abbr_a), app_by_abbr(abbr_b)


def triple(abbr_a: str, abbr_b: str, abbr_c: str) -> tuple[AppProfile, ...]:
    """Build a three-application workload (for the §VI-D sensitivity study)."""
    return app_by_abbr(abbr_a), app_by_abbr(abbr_b), app_by_abbr(abbr_c)


def workload_name(apps: tuple[str, ...] | tuple[AppProfile, ...]) -> str:
    """Canonical workload name, e.g. ``"BFS_FFT"``."""
    abbrs = [a.abbr if isinstance(a, AppProfile) else str(a) for a in apps]
    return "_".join(abbrs)


def all_pairs() -> list[tuple[AppProfile, AppProfile]]:
    """Every unordered two-application combination of the full zoo.

    Used for the alone-ratio survey in Figure 5, which covers "all
    possible two-application workloads formed using the evaluated
    applications".
    """
    return list(itertools.combinations(APPLICATIONS, 2))
