"""Synthetic GPGPU application models.

The paper evaluates 26 CUDA applications from Rodinia, Parboil, the CUDA
SDK and SHOC (Table IV).  We have no GPU or binaries here, so each
application is replaced by a seeded stochastic model of its
*memory-system signature* — memory intensity, coalescing degree,
per-warp footprint, temporal reuse, spatial/row locality, and inter-warp
sharing — which is the only thing the paper's mechanisms observe.
"""

from repro.workloads.arrivals import ArrivalSchedule
from repro.workloads.generator import (
    EVALUATED_PAIRS,
    REPRESENTATIVE_PAIRS,
    all_pairs,
    pair,
    workload_name,
)
from repro.workloads.phases import PhasedProfile, PhasedStream
from repro.workloads.synthetic import AppProfile, CoreStream, WarpAddressStream
from repro.workloads.table4 import APPLICATIONS, app_by_abbr
from repro.workloads.trace import Trace, TraceProfile, TraceStream, record_trace

__all__ = [
    "AppProfile",
    "ArrivalSchedule",
    "WarpAddressStream",
    "CoreStream",
    "APPLICATIONS",
    "app_by_abbr",
    "pair",
    "all_pairs",
    "workload_name",
    "REPRESENTATIVE_PAIRS",
    "EVALUATED_PAIRS",
    "PhasedProfile",
    "PhasedStream",
    "Trace",
    "TraceProfile",
    "TraceStream",
    "record_trace",
]
