"""Open-system arrival model: who runs when.

The paper evaluates *closed* 2-app co-runs — the roster is fixed for the
whole simulation.  A production GPU is an *open* system: jobs arrive,
execute for a while, and depart.  An :class:`ArrivalSchedule` captures
one such run as data — the initial roster plus a time-ordered tuple of
:class:`~repro.sim.tenancy.TenancyEvent` roster changes — which the
engine replays at cycle boundaries.

Two constructors cover the methodology:

* :meth:`ArrivalSchedule.closed` — no events; byte-for-byte the
  behavior of today's fixed-roster runs.
* :meth:`ArrivalSchedule.seeded` — a reproducible stochastic trace:
  exponential interarrival and lifetime draws from a seeded RNG, with
  capacity (``max_live``) and occupancy (``min_live``) guards.  The same
  seed always yields the same trace, so open-system experiments cache
  and compare like closed ones.

App-id bookkeeping mirrors the engine: initial applications get ids
``0..n-1`` and the k-th arrival gets ``n + k`` (monotonic, never
reused), so a schedule can name departing apps deterministically.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.sim.tenancy import TenancyEvent
from repro.workloads.synthetic import AppProfile

__all__ = ["ArrivalSchedule"]


@dataclass(frozen=True)
class ArrivalSchedule:
    """One open-system run: initial roster plus scheduled roster changes."""

    initial: tuple[AppProfile, ...]
    events: tuple[TenancyEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.initial:
            raise ValueError("schedule needs at least one initial application")
        cycles = [ev.cycle for ev in self.events]
        if cycles != sorted(cycles):
            raise ValueError("tenancy events must be in non-decreasing cycle order")

    @property
    def is_closed(self) -> bool:
        return not self.events

    @classmethod
    def closed(cls, apps: Sequence[AppProfile]) -> "ArrivalSchedule":
        """A fixed-roster run — exactly today's closed-system behavior."""
        return cls(initial=tuple(apps), events=())

    @classmethod
    def seeded(
        cls,
        initial: Sequence[AppProfile],
        candidates: Sequence[AppProfile],
        *,
        max_cycles: int,
        seed: int,
        mean_interarrival: float,
        mean_lifetime: float,
        max_live: int,
        min_live: int = 1,
    ) -> "ArrivalSchedule":
        """A reproducible stochastic arrival/departure trace.

        Arrivals are a Poisson process (exponential interarrivals drawn
        from ``random.Random(seed)``); every application — initial ones
        included — draws an exponential lifetime.  An arrival is dropped
        when the roster is at ``max_live``; a departure is deferred one
        lifetime draw when it would push the roster below ``min_live``.
        Arriving profiles rotate through ``candidates`` by app id, so
        the mix is seed-independent given the same id sequence.
        """
        if not candidates:
            raise ValueError("need at least one candidate profile for arrivals")
        if not 1 <= min_live <= max_live:
            raise ValueError("need 1 <= min_live <= max_live")
        if len(initial) > max_live:
            raise ValueError("initial roster exceeds max_live")
        if mean_interarrival <= 0 or mean_lifetime <= 0:
            raise ValueError("mean interarrival and lifetime must be positive")
        rng = random.Random(seed)
        initial = tuple(initial)
        live: set[int] = set(range(len(initial)))
        #: (departure_cycle, app_id) min-heap
        departures: list[tuple[int, int]] = []
        # Draw initial lifetimes in sorted id order, not set order (the
        # draw sequence must not depend on hash iteration, R015).
        for app_id in sorted(live):
            t = max(1, int(rng.expovariate(1.0 / mean_lifetime)))
            heapq.heappush(departures, (t, app_id))
        next_id = len(initial)
        next_arrival = max(1, int(rng.expovariate(1.0 / mean_interarrival)))
        events: list[TenancyEvent] = []
        while True:
            due = departures[0][0] if departures else max_cycles
            t = min(next_arrival, due)
            if t >= max_cycles:
                break
            # Departures first at equal time: frees a slot the arrival
            # can use, and the engine forbids detaching the last app.
            if departures and due <= next_arrival:
                cycle, app_id = heapq.heappop(departures)
                if len(live) <= min_live:
                    # Too few tenants to leave now — extend its stay.
                    stay = max(1, int(rng.expovariate(1.0 / mean_lifetime)))
                    heapq.heappush(departures, (cycle + stay, app_id))
                    continue
                live.discard(app_id)
                events.append(
                    TenancyEvent(cycle=cycle, action="detach", app_id=app_id)
                )
                continue
            cycle = next_arrival
            next_arrival = cycle + max(
                1, int(rng.expovariate(1.0 / mean_interarrival))
            )
            if len(live) >= max_live:
                continue  # at capacity: this arrival is turned away
            profile = candidates[next_id % len(candidates)]
            lifetime = max(1, int(rng.expovariate(1.0 / mean_lifetime)))
            events.append(
                TenancyEvent(cycle=cycle, action="attach", profile=profile)
            )
            live.add(next_id)
            heapq.heappush(departures, (cycle + lifetime, next_id))
            next_id += 1
        return cls(initial=initial, events=tuple(events))
