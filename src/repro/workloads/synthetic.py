"""Synthetic application profiles and per-warp address streams.

An :class:`AppProfile` captures the memory-system signature of one
GPGPU application:

``r_m``
    Fraction of instructions that are memory instructions (the paper's
    application-level property from Equation 2; arithmetic intensity is
    ``(1 - r_m) / r_m``).
``coalesce``
    Cache lines touched per memory instruction after coalescing
    (1 for fully coalesced stride-1 warps; larger for divergent ones).
``divergent``
    Whether the coalesced lines are independent irregular addresses
    (BFS-style) or one sequential block (streaming style).
``footprint_lines`` / ``p_reuse``
    Temporal locality: each warp keeps a ring of recently touched lines
    of size ``footprint_lines`` and revisits it with probability
    ``p_reuse``.  TLP times footprint versus L1 capacity decides cache
    friendliness — thrashing at high TLP is *emergent*, not scripted.
``p_seq``
    Spatial locality: probability the next access continues
    sequentially, which also produces DRAM row-buffer locality.
``shared_frac`` / ``shared_lines``
    Inter-warp sharing: fraction of accesses that go to an
    application-wide shared region (hits mostly in L2).
``stream_lines``
    Size of each core's streaming region (jump targets for the
    non-sequential remainder).

Sequential accesses of all warps on one core advance a *shared* cursor
(:class:`CoreStream`): on real hardware, consecutive warps of a
coalesced kernel read consecutive 128-byte segments, which is what
produces DRAM row-buffer locality across warps.  Temporal reuse remains
per-warp.  Streams are deterministic functions of (seed, app, core,
warp).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.address import AddressMap

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import GPUConfig

__all__ = ["AppProfile", "WarpAddressStream", "CoreStream", "stream_seed"]


def stream_seed(seed: int, app_id: int, core_id: int, warp_id: int) -> int:
    """A stable, well-mixed RNG seed for one warp's stream."""
    x = (seed * 1_000_003) ^ (app_id * 7_919) ^ (core_id * 104_729) ^ (warp_id * 31)
    # splitmix-style finalization for good low-bit diffusion
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


@dataclass(frozen=True)
class AppProfile:
    """Memory-system signature of one synthetic GPGPU application."""

    abbr: str
    name: str
    r_m: float
    coalesce: int = 1
    divergent: bool = False
    footprint_lines: int = 8
    p_reuse: float = 0.0
    p_seq: float = 0.9
    shared_frac: float = 0.0
    shared_lines: int = 4096
    stream_lines: int = 1 << 20
    gap_jitter: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 < self.r_m <= 1.0:
            raise ValueError(f"{self.abbr}: r_m must be in (0, 1]")
        if self.coalesce < 1:
            raise ValueError(f"{self.abbr}: coalesce must be >= 1")
        if self.p_reuse + self.p_seq + self.shared_frac > 1.0 + 1e-9:
            raise ValueError(f"{self.abbr}: locality probabilities exceed 1")
        if self.footprint_lines < 1 or self.stream_lines < 1:
            raise ValueError(f"{self.abbr}: footprint/stream sizes must be >= 1")

    @property
    def inst_gap(self) -> int:
        """Mean warp instructions per memory instruction (>= 1)."""
        return max(1, round(1.0 / self.r_m))

    @property
    def arithmetic_intensity(self) -> float:
        """Compute-to-memory instruction ratio, (1 - r_m) / r_m."""
        return (1.0 - self.r_m) / self.r_m

    def make_core_stream(
        self, app_id: int, core_id: int, addr_map: AddressMap
    ) -> "CoreStream":
        """Build the per-core shared streaming cursor for this profile."""
        line = addr_map.line_bytes
        app_base = AddressMap.app_base(app_id)
        base = app_base + self.shared_lines * line + core_id * self.stream_lines * line
        return CoreStream(base=base, n_lines=self.stream_lines, line_bytes=line)

    def make_stream(
        self,
        app_id: int,
        core_id: int,
        warp_id: int,
        seed: int,
        addr_map: AddressMap,
        core_stream: "CoreStream",
    ) -> "WarpAddressStream":
        """Build this profile's deterministic stream for one warp."""
        rng = random.Random(stream_seed(seed, app_id, core_id, warp_id))
        return WarpAddressStream(
            profile=self,
            line_bytes=addr_map.line_bytes,
            shared_base=AddressMap.app_base(app_id),
            core_stream=core_stream,
            rng=rng,
        )


class CoreStream:
    """Per-(application, core) shared sequential cursor.

    All warps of a core draw their sequential accesses from this cursor,
    so simultaneously-running warps touch adjacent lines and adjacent
    DRAM rows, as coalesced GPGPU kernels do.
    """

    __slots__ = ("base", "n_lines", "line_bytes", "_offset")

    def __init__(self, base: int, n_lines: int, line_bytes: int) -> None:
        self.base = base
        self.n_lines = n_lines
        self.line_bytes = line_bytes
        self._offset = 0

    def next_line(self) -> int:
        line = self.base + self._offset * self.line_bytes
        self._offset += 1
        if self._offset >= self.n_lines:
            self._offset = 0
        return line

    def jump(self, offset: int) -> None:
        self._offset = offset % self.n_lines


class WarpAddressStream:
    """Generates (instruction count, line addresses) iterations for a warp.

    Implements the :class:`repro.sim.core.WarpStream` protocol.  The
    profile's (frozen) parameters and the RNG's bound methods are cached
    at construction: ``next_request`` runs once per warp-loop iteration,
    on the engine's hot path.  The sequence of RNG draws is part of the
    deterministic stream definition and must not change.
    """

    __slots__ = (
        "profile", "line_bytes", "shared_base", "core_stream", "rng",
        "_ring", "_ring_pos", "_random", "_randrange", "_inst_gap",
        "_gap_jitter", "_gap_lo", "_p_reuse", "_p_seq", "_shared_frac",
        "_shared_lines", "_stream_lines", "_divergent", "_coalesce",
    )

    def __init__(
        self,
        profile: AppProfile,
        line_bytes: int,
        shared_base: int,
        core_stream: CoreStream,
        rng: random.Random,
    ) -> None:
        self.profile = profile
        self.line_bytes = line_bytes
        self.shared_base = shared_base
        self.core_stream = core_stream
        self.rng = rng
        self._random = rng.random
        self._randrange = rng.randrange
        self._inst_gap = profile.inst_gap
        self._gap_jitter = profile.gap_jitter
        self._gap_lo = 1.0 - profile.gap_jitter / 2.0
        self._p_reuse = profile.p_reuse
        self._p_seq = profile.p_seq
        self._shared_frac = profile.shared_frac
        self._shared_lines = profile.shared_lines
        self._stream_lines = profile.stream_lines
        self._divergent = profile.divergent
        self._coalesce = profile.coalesce
        # Pre-populate the reuse ring so temporal locality is stationary
        # from the first access: an empty ring would make early windows
        # look far more cache-friendly than steady state (the ring takes
        # footprint_lines iterations per warp to fill otherwise).
        self._ring: list[int] = [
            core_stream.base + rng.randrange(profile.stream_lines) * line_bytes
            for _ in range(profile.footprint_lines)
        ]
        self._ring_pos = 0

    # --- internals -----------------------------------------------------

    def _one_line(self) -> int:
        """Pick one line address according to the locality mix.

        The ring is created full, so remembering a line is always an
        in-place overwrite at the ring cursor.
        """
        r = self._random()
        ring = self._ring
        if r < self._p_reuse and ring:
            return ring[self._randrange(len(ring))]
        r -= self._p_reuse
        cs = self.core_stream
        if r < self._p_seq:
            pass
        else:
            r -= self._p_seq
            if r < self._shared_frac:
                return (
                    self.shared_base
                    + self._randrange(self._shared_lines) * self.line_bytes
                )
            # Random jump within the core's streaming region; sequential
            # accesses continue from the jump target (row locality
            # resumes).
            cs._offset = self._randrange(self._stream_lines) % cs.n_lines
        # Inlined CoreStream.next_line: advance the shared cursor.
        offset = cs._offset
        line = cs.base + offset * cs.line_bytes
        offset += 1
        cs._offset = 0 if offset >= cs.n_lines else offset
        pos = self._ring_pos
        ring[pos] = line
        self._ring_pos = (pos + 1) % len(ring)
        return line

    # --- WarpStream protocol ----------------------------------------------

    def next_request(self) -> tuple[int, list[int]]:
        gap = self._inst_gap
        jitter = self._gap_jitter
        if jitter:
            gap = max(1, int(gap * (self._gap_lo + jitter * self._random())))
        if self._divergent:
            lines: list[int] = []
            for _ in range(self._coalesce):
                line = self._one_line()
                if line not in lines:
                    lines.append(line)
        else:
            first = self._one_line()
            coalesce = self._coalesce
            if coalesce == 1:
                lines = [first]
            else:
                line_bytes = self.line_bytes
                lines = [first + i * line_bytes for i in range(coalesce)]
        return gap, lines
