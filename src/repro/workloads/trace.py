"""Record and replay address traces.

Downstream users often have memory traces from real hardware or other
simulators.  This module closes the loop in both directions:

* :func:`record_trace` runs an application's synthetic streams for a
  fixed number of requests per warp and captures the (instruction-gap,
  line-addresses) sequence;
* :class:`TraceProfile` duck-types the profile interface, replaying a
  recorded :class:`Trace` inside the simulator (cycling when a warp
  exhausts its recording);
* traces serialize to a compact JSON file via :meth:`Trace.save` /
  :meth:`Trace.load`.

Replaying a trace is deterministic by construction, which also makes
traces useful as golden inputs in regression tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import GPUConfig
from repro.sim.address import AddressMap
from repro.workloads.synthetic import AppProfile

__all__ = ["Trace", "TraceProfile", "TraceStream", "record_trace"]

#: one warp's recording: a list of (inst_gap, [line addresses]) requests
WarpTrace = list[tuple[int, list[int]]]


@dataclass
class Trace:
    """Per-(core, warp) recorded request streams for one application."""

    abbr: str
    warps: dict[tuple[int, int], WarpTrace] = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(len(t) for t in self.warps.values())

    def save(self, path: str | Path) -> None:
        payload = {
            "abbr": self.abbr,
            "warps": [
                {"core": core, "warp": warp,
                 "requests": [[gap, lines] for gap, lines in trace]}
                for (core, warp), trace in sorted(self.warps.items())
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        payload = json.loads(Path(path).read_text())
        warps = {
            (entry["core"], entry["warp"]): [
                (gap, list(lines)) for gap, lines in entry["requests"]
            ]
            for entry in payload["warps"]
        }
        return cls(abbr=payload["abbr"], warps=warps)


def record_trace(
    profile: AppProfile,
    config: GPUConfig,
    app_id: int = 0,
    n_cores: int | None = None,
    requests_per_warp: int = 256,
    seed: int = 0,
) -> Trace:
    """Capture ``requests_per_warp`` requests from every warp's stream."""
    if requests_per_warp < 1:
        raise ValueError("requests_per_warp must be >= 1")
    n_cores = n_cores if n_cores is not None else config.n_cores
    addr_map = AddressMap.from_config(config)
    trace = Trace(abbr=profile.abbr)
    for core_id in range(n_cores):
        core_stream = profile.make_core_stream(app_id, core_id, addr_map)
        streams = [
            profile.make_stream(
                app_id, core_id, warp_id, seed, addr_map, core_stream
            )
            for warp_id in range(config.max_warps_per_core)
        ]
        for warp_id in range(config.max_warps_per_core):
            trace.warps[(core_id, warp_id)] = []
        # Interleave the recording round-robin across warps: concurrent
        # warps share the sequential cursor, so recording them serially
        # would assign each warp a long private chunk and destroy the
        # cross-warp row-buffer adjacency the replay should exhibit.
        for _ in range(requests_per_warp):
            for warp_id, stream in enumerate(streams):
                trace.warps[(core_id, warp_id)].append(stream.next_request())
    return trace


class TraceStream:
    """Replays one warp's recorded requests, cycling at the end."""

    def __init__(self, requests: WarpTrace) -> None:
        if not requests:
            raise ValueError("cannot replay an empty warp trace")
        self.requests = requests
        self._pos = 0

    def next_request(self) -> tuple[int, list[int]]:
        gap, lines = self.requests[self._pos]
        self._pos += 1
        if self._pos >= len(self.requests):
            self._pos = 0
        return gap, list(lines)


@dataclass(frozen=True)
class TraceProfile:
    """Profile facade replaying a :class:`Trace` inside the simulator.

    The trace's (core, warp) keys are matched modulo the recorded core
    count, so a trace captured on N cores can drive any core assignment.
    """

    trace: Trace

    @property
    def abbr(self) -> str:
        return self.trace.abbr

    def _recorded_cores(self) -> list[int]:
        return sorted({core for core, _ in self.trace.warps})

    def make_core_stream(self, app_id: int, core_id: int, addr_map) -> None:
        return None  # traces carry their own addresses; no shared cursor

    def make_stream(
        self, app_id: int, core_id: int, warp_id: int, seed: int,
        addr_map, core_stream,
    ) -> TraceStream:
        cores = self._recorded_cores()
        source_core = cores[core_id % len(cores)]
        key = (source_core, warp_id)
        if key not in self.trace.warps:
            raise KeyError(
                f"trace for {self.abbr} has no warp {warp_id} on core "
                f"{source_core}"
            )
        return TraceStream(self.trace.warps[key])
