"""The 26-application zoo of Table IV.

Each entry is a synthetic stand-in for the corresponding CUDA workload
(Rodinia / Parboil / CUDA SDK / SHOC / GUPS), parameterized to evoke its
published memory behaviour:

* compute-bound kernels (LUD, NW, QTC, ...) barely touch memory;
* streaming kernels (BLK, SCP, LIB, RED, SCAN, ...) have near-unity
  combined miss rates, so their effective bandwidth equals their
  attained DRAM bandwidth (the paper calls BLK out for exactly this);
* cache-sensitive kernels (BFS, JPEG, LPS, DS, FFT, ...) amplify DRAM
  bandwidth through low miss rates at moderate TLP and thrash at high
  TLP;
* bandwidth hogs with mediocre locality (TRD, FWT, GUPS, CFD) pressure
  the shared memory system.

The group labels G1–G4 of Table IV are *measured*, not declared: the
paper buckets applications by their EB at bestTLP, and so do we — see
:func:`repro.experiments.table4.run_table4` which derives groups from
simulated EB values.  :data:`GROUP_QUANTILES` defines the bucket edges.
"""

from __future__ import annotations

from repro.workloads.synthetic import AppProfile

__all__ = ["APPLICATIONS", "app_by_abbr", "GROUP_QUANTILES"]

#: Quantile edges used to bucket applications into G1..G4 by EB@bestTLP.
GROUP_QUANTILES = (0.25, 0.5, 0.75)

APPLICATIONS: tuple[AppProfile, ...] = (
    # --- compute-bound, low memory demand (expected G1) -----------------
    AppProfile("LUD", "LU Decomposition (Rodinia)", r_m=0.005, coalesce=1,
               footprint_lines=4, p_reuse=0.75, p_seq=0.20),
    AppProfile("NW", "Needleman-Wunsch (Rodinia)", r_m=0.006, coalesce=1,
               footprint_lines=4, p_reuse=0.70, p_seq=0.25),
    AppProfile("QTC", "Quality Threshold Clustering (SHOC)", r_m=0.007,
               coalesce=2, divergent=True, footprint_lines=4, p_reuse=0.65,
               p_seq=0.15),
    AppProfile("HISTO", "Histogramming (Parboil)", r_m=0.010, coalesce=1,
               footprint_lines=6, p_reuse=0.45, p_seq=0.15,
               shared_frac=0.35, shared_lines=512),
    AppProfile("SAD", "Sum of Absolute Differences (Parboil)", r_m=0.008,
               coalesce=1, footprint_lines=6, p_reuse=0.65, p_seq=0.30),
    AppProfile("RAY", "Ray Tracing (CUDA SDK)", r_m=0.012, coalesce=4,
               divergent=True, footprint_lines=8, p_reuse=0.65, p_seq=0.10),
    # --- streaming / cache-insensitive (expected G2) ----------------------
    AppProfile("RED", "Reduction (SHOC)", r_m=0.12, coalesce=1,
               footprint_lines=2, p_reuse=0.0, p_seq=0.97),
    AppProfile("SCAN", "Scan (SHOC)", r_m=0.14, coalesce=1,
               footprint_lines=2, p_reuse=0.0, p_seq=0.95),
    AppProfile("SC", "Streamcluster (Rodinia)", r_m=0.16, coalesce=1,
               footprint_lines=4, p_reuse=0.05, p_seq=0.85,
               shared_frac=0.08, shared_lines=1024),
    AppProfile("GUPS", "Giga-Updates Per Second", r_m=0.30, coalesce=1,
               footprint_lines=1, p_reuse=0.0, p_seq=0.0,
               stream_lines=1 << 21),
    AppProfile("TRD", "Transpose Diagonal (SHOC)", r_m=0.30, coalesce=2,
               footprint_lines=4, p_reuse=0.05, p_seq=0.45),
    AppProfile("FWT", "Fast Walsh Transform (CUDA SDK)", r_m=0.26,
               coalesce=2, divergent=True, footprint_lines=8, p_reuse=0.10,
               p_seq=0.55),
    # --- high-bandwidth streaming (expected G3) ---------------------------
    AppProfile("BLK", "Blackscholes (CUDA SDK)", r_m=0.25, coalesce=1,
               footprint_lines=1, p_reuse=0.0, p_seq=0.985),
    AppProfile("SCP", "Scalar Product (CUDA SDK)", r_m=0.22, coalesce=1,
               footprint_lines=2, p_reuse=0.0, p_seq=0.97),
    AppProfile("LIB", "LIBOR Monte Carlo (CUDA SDK)", r_m=0.18, coalesce=1,
               footprint_lines=2, p_reuse=0.05, p_seq=0.92),
    AppProfile("CONS", "Separable Convolution (CUDA SDK)", r_m=0.22,
               coalesce=1, footprint_lines=8, p_reuse=0.15, p_seq=0.80),
    AppProfile("SRAD", "Speckle-Reducing Diffusion (Rodinia)", r_m=0.20,
               coalesce=1, footprint_lines=8, p_reuse=0.10, p_seq=0.85),
    AppProfile("LUH", "LULESH hydrodynamics", r_m=0.22, coalesce=1,
               footprint_lines=16, p_reuse=0.20, p_seq=0.65,
               shared_frac=0.10, shared_lines=2048),
    AppProfile("CFD", "CFD Euler Solver (Rodinia)", r_m=0.28, coalesce=4,
               divergent=True, footprint_lines=16, p_reuse=0.30, p_seq=0.25,
               shared_frac=0.20, shared_lines=2048),
    AppProfile("BP", "Backpropagation (Rodinia)", r_m=0.15, coalesce=1,
               footprint_lines=8, p_reuse=0.15, p_seq=0.60,
               shared_frac=0.20, shared_lines=2048),
    # --- cache-amplified, high EB (expected G4) -----------------------------
    AppProfile("HS", "Hotspot (Rodinia)", r_m=0.18, coalesce=1,
               footprint_lines=12, p_reuse=0.35, p_seq=0.60),
    AppProfile("FFT", "Fast Fourier Transform (Parboil)", r_m=0.30,
               coalesce=2, footprint_lines=32, p_reuse=0.35, p_seq=0.45),
    AppProfile("BFS", "Breadth-First Search (Rodinia)", r_m=0.35,
               coalesce=6, divergent=True, footprint_lines=12, p_reuse=0.55,
               p_seq=0.10, shared_frac=0.15, shared_lines=1024),
    AppProfile("DS", "Depth-of-field / Separable Downsample", r_m=0.24,
               coalesce=1, footprint_lines=24, p_reuse=0.40, p_seq=0.50),
    AppProfile("LPS", "3D Laplace Solver (CUDA SDK)", r_m=0.20, coalesce=1,
               footprint_lines=24, p_reuse=0.30, p_seq=0.62),
    AppProfile("JPEG", "JPEG Decode (CUDA SDK)", r_m=0.14, coalesce=1,
               footprint_lines=24, p_reuse=0.35, p_seq=0.55),
)

_BY_ABBR = {p.abbr: p for p in APPLICATIONS}
if len(_BY_ABBR) != len(APPLICATIONS):  # pragma: no cover - author error guard
    raise RuntimeError("duplicate application abbreviation in Table IV zoo")


def app_by_abbr(abbr: str) -> AppProfile:
    """Look up an application profile by its Table IV abbreviation."""
    try:
        return _BY_ABBR[abbr.upper()]
    except KeyError:
        known = ", ".join(sorted(_BY_ABBR))
        raise KeyError(f"unknown application {abbr!r}; known: {known}") from None
