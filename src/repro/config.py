"""Configuration for the simulated GPU.

The geometry and timing here follow Table I of the paper (a generic
GPGPU-Sim-style GPU with private L1 data caches, a sliced shared L2, a
crossbar interconnect, and six GDDR5 memory controllers scheduled with
FR-FCFS).  Everything is expressed in *core cycles*: we run the whole
model in one clock domain and fold the core/interconnect/DRAM clock
ratios into the latency and bandwidth parameters.

Three presets are provided:

``paper_config``
    Full-scale geometry matching the paper (24 cores, 6 channels).
    Used by the benchmark harness.

``medium_config``
    A half-scale GPU that keeps the cache-per-warp and bandwidth-per-core
    ratios of the paper configuration so contention behaviour is
    preserved, while simulating ~4x faster.  Default for experiments.

``small_config``
    A tiny GPU for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "DRAMTimings",
    "CacheGeometry",
    "GPUConfig",
    "paper_config",
    "medium_config",
    "small_config",
    "TLP_LEVELS",
    "MAX_TLP",
]

#: TLP levels evaluated in the paper (warps per scheduler, per core).  The
#: maximum is 24 because each core supports 48 warps split over two warp
#: schedulers.  Eight levels per application yield the paper's 64
#: two-application combinations.
TLP_LEVELS: tuple[int, ...] = (1, 2, 4, 6, 8, 12, 16, 24)

#: The maximum TLP value (``maxTLP`` in the paper).
MAX_TLP: int = TLP_LEVELS[-1]


@dataclass(frozen=True)
class DRAMTimings:
    """GDDR5-like DRAM timing parameters, in core cycles.

    Based on the Hynix GDDR5 timings cited in Table I (t_CL=12, t_RP=12,
    t_RAS=28, t_CCD=2, t_RCD=12, t_RRD=6, memory clock 924 MHz vs. a
    1400 MHz core clock; we round the clock-domain conversion into the
    values below).
    """

    t_cl: int = 18  # CAS latency
    t_rp: int = 18  # row precharge
    t_rcd: int = 18  # RAS-to-CAS delay
    t_ras: int = 42  # row-active minimum
    t_ccd: int = 3  # column-to-column (same bank group burst gap)
    t_rrd: int = 9  # activate-to-activate, different banks
    burst_cycles: int = 6  # data-bus occupancy of one 128B line transfer

    @property
    def row_hit_service(self) -> int:
        """Cycles from scheduling a row-buffer hit to data on the bus."""
        return self.t_cl

    @property
    def row_miss_service(self) -> int:
        """Cycles for a precharge + activate + CAS sequence."""
        return self.t_rp + self.t_rcd + self.t_cl


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache array."""

    size_bytes: int
    assoc: int
    line_bytes: int = 128
    mshr_entries: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError(
                f"cache size {self.size_bytes} is not divisible by "
                f"assoc({self.assoc}) * line({self.line_bytes})"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class GPUConfig:
    """Full description of the simulated GPU.

    The defaults correspond to the paper-scale machine; use the preset
    constructors rather than instantiating this directly.
    """

    # --- cores -----------------------------------------------------------
    n_cores: int = 24
    warp_size: int = 32
    max_warps_per_core: int = 48
    schedulers_per_core: int = 2
    issue_width: int = 2  # instructions issued per core per cycle (total)

    # --- caches ----------------------------------------------------------
    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=16 * 1024, assoc=4)
    )
    l2_per_channel: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=256 * 1024, assoc=16)
    )

    # --- memory system ----------------------------------------------------
    n_channels: int = 6
    banks_per_channel: int = 16
    bank_groups_per_channel: int = 4
    interleave_bytes: int = 256  # global address space interleaving chunk
    row_bytes: int = 2048  # DRAM row-buffer size per bank
    dram: DRAMTimings = field(default_factory=DRAMTimings)
    frfcfs_cap: int = 4  # max consecutive row hits before oldest-first
    dram_queue_depth: int = 48  # per-channel request queue (backpressures L2)

    # --- latencies (core cycles) -----------------------------------------
    l1_hit_latency: int = 28
    l2_hit_latency: int = 120
    icnt_latency: int = 40  # one-way crossbar traversal
    icnt_flits_per_cycle_per_port: float = 1.0

    # --- simulation control ------------------------------------------------
    tlp_levels: tuple[int, ...] = TLP_LEVELS
    base_seed: int = 0xEB  # mixed into per-warp stream seeds

    def __post_init__(self) -> None:
        if self.n_cores % 2:
            raise ValueError("n_cores must be even to split between two apps")
        if self.max_warps_per_core % self.schedulers_per_core:
            raise ValueError("max_warps_per_core must divide evenly")
        if max(self.tlp_levels) > self.max_tlp:
            raise ValueError(
                f"tlp_levels {self.tlp_levels} exceed max TLP {self.max_tlp}"
            )

    # --- derived quantities -----------------------------------------------
    @property
    def max_tlp(self) -> int:
        """Maximum warps per scheduler (``maxTLP`` in the paper)."""
        return self.max_warps_per_core // self.schedulers_per_core

    @property
    def line_bytes(self) -> int:
        return self.l1.line_bytes

    @property
    def peak_bw_lines_per_cycle(self) -> float:
        """Peak DRAM bandwidth, in cache lines per core cycle (all channels)."""
        return self.n_channels / self.dram.burst_cycles

    @property
    def l2_total_bytes(self) -> int:
        return self.l2_per_channel.size_bytes * self.n_channels

    def with_(self, **kwargs) -> "GPUConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def paper_config() -> GPUConfig:
    """Paper-scale GPU (Table I geometry)."""
    return GPUConfig()


def medium_config() -> GPUConfig:
    """Half-scale GPU preserving cache/BW per-core ratios; ~4x faster."""
    return GPUConfig(
        n_cores=8,
        n_channels=2,
        l1=CacheGeometry(size_bytes=16 * 1024, assoc=4),
        l2_per_channel=CacheGeometry(size_bytes=256 * 1024, assoc=16),
    )


def small_config() -> GPUConfig:
    """Tiny GPU for unit tests; single-digit-millisecond simulations."""
    return GPUConfig(
        n_cores=2,
        n_channels=1,
        banks_per_channel=4,
        bank_groups_per_channel=2,
        l1=CacheGeometry(size_bytes=4 * 1024, assoc=4, mshr_entries=16),
        l2_per_channel=CacheGeometry(size_bytes=32 * 1024, assoc=8),
        max_warps_per_core=48,
        tlp_levels=TLP_LEVELS,
    )
