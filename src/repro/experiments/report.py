"""ASCII rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
and tables report; these helpers format them consistently.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = ["render_table", "geomean", "fmt", "normalize_to", "sparkline"]

#: eight-level unicode bars for sparklines
_SPARK_BARS = "▁▂▃▄▅▆▇█"


def fmt(value: object, width: int = 0) -> str:
    """Format one cell: floats to 3 significant places, rest via str."""
    if isinstance(value, float):
        text = f"{value:.3f}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, guarding tiny values to keep the log finite."""
    values = list(values)
    if not values:
        raise ValueError("geomean of nothing")
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


def sparkline(values: Iterable[float]) -> str:
    """Render a sequence as a compact unicode bar chart.

    Useful for showing curve *shapes* (the IPC/EB inflections of
    Figure 2, TLP timelines of Figure 11) inside text reports.
    """
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_BARS[0] * len(values)
    span = hi - lo
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK_BARS) - 1))
        out.append(_SPARK_BARS[idx])
    return "".join(out)


def normalize_to(values: dict[str, float], base_key: str) -> dict[str, float]:
    """Normalize a mapping of scheme -> metric to one scheme's value."""
    base = values[base_key]
    if base <= 0:
        raise ValueError(f"cannot normalize to non-positive base {base}")
    return {k: v / base for k, v in values.items()}
