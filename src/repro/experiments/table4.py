"""Table IV: per-application characterization.

For every application in the zoo: IPC at bestTLP, EB at bestTLP, and the
behaviour group G1–G4.  As in the paper, groups are assigned from the
measured alone-EB values — the quartile edges in
:data:`repro.workloads.table4.GROUP_QUANTILES` bucket the 26 apps into
four EB bands from low (G1) to high (G4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table
from repro.workloads.table4 import APPLICATIONS, GROUP_QUANTILES

__all__ = ["Table4Row", "Table4Result", "run_table4", "group_scale_factors"]


@dataclass
class Table4Row:
    abbr: str
    best_tlp: int
    ipc: float
    eb: float
    group: str


@dataclass
class Table4Result:
    rows: list[Table4Row]

    def row(self, abbr: str) -> Table4Row:
        for r in self.rows:
            if r.abbr == abbr:
                return r
        raise KeyError(abbr)

    @property
    def groups(self) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {"G1": [], "G2": [], "G3": [], "G4": []}
        for r in self.rows:
            out[r.group].append(r.abbr)
        return out

    def group_mean_eb(self, group: str) -> float:
        ebs = [r.eb for r in self.rows if r.group == group]
        if not ebs:
            raise KeyError(f"no applications in group {group}")
        return sum(ebs) / len(ebs)

    def render(self) -> str:
        ordered = sorted(self.rows, key=lambda r: r.eb)
        return render_table(
            ("app", "bestTLP", "IPC@bestTLP", "EB@bestTLP", "group"),
            [(r.abbr, r.best_tlp, r.ipc, r.eb, r.group) for r in ordered],
            title="Table IV: application characteristics (sorted by EB)",
        )


def run_table4(ctx: ExperimentContext) -> Table4Result:
    profiles = [ctx.alone(app) for app in APPLICATIONS]
    ebs = sorted(p.eb_alone for p in profiles)

    def quantile(q: float) -> float:
        idx = q * (len(ebs) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(ebs) - 1)
        return ebs[lo] + (ebs[hi] - ebs[lo]) * (idx - lo)

    edges = [quantile(q) for q in GROUP_QUANTILES]

    def group_of(eb: float) -> str:
        for i, edge in enumerate(edges):
            if eb <= edge:
                return f"G{i + 1}"
        return f"G{len(edges) + 1}"

    rows = [
        Table4Row(
            abbr=p.abbr,
            best_tlp=p.best_tlp,
            ipc=p.ipc_alone,
            eb=p.eb_alone,
            group=group_of(p.eb_alone),
        )
        for p in profiles
    ]
    return Table4Result(rows=rows)


def group_scale_factors(
    table: Table4Result, abbrs: tuple[str, ...]
) -> list[float]:
    """The paper's user-supplied scaling mode: each application uses the
    average alone-EB of the group it belongs to (§IV)."""
    return [table.group_mean_eb(table.row(a).group) for a in abbrs]
