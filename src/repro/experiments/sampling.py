"""Monitoring-interval sensitivity (§V-E).

The paper empirically found a sampling window of a few thousand cycles
per TLP combination sufficient — "trends do not change significantly
beyond" it.  This experiment sweeps the online PBS-WS controller's
sample period on one workload and reports the achieved WS and the
search cost, showing the flat region the paper's choice sits in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pbs import PBSController
from repro.core.runner import run_combo
from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table

__all__ = ["SamplingSweep", "run_sampling_sweep"]

DEFAULT_PERIODS = (1000, 2000, 3000, 6000)


@dataclass
class SamplingSweep:
    workload: str
    #: period -> (WS, final combo, cycles spent searching)
    rows: dict[int, tuple[float, tuple[int, ...] | None, float]]

    def ws(self, period: int) -> float:
        return self.rows[period][0]

    @property
    def flat_region_spread(self) -> float:
        """max/min WS across the swept periods (1.0 = fully flat)."""
        values = [ws for ws, _, _ in self.rows.values()]
        return max(values) / max(min(values), 1e-12)

    def render(self) -> str:
        table_rows = [
            (period, ws, str(combo), search_cycles)
            for period, (ws, combo, search_cycles) in sorted(self.rows.items())
        ]
        table = render_table(
            ("sample period", "WS", "final combo", "search cycles"),
            table_rows,
            title=f"§V-E monitoring-interval sensitivity ({self.workload}, "
                  f"PBS-WS)",
        )
        return table + (
            f"\nmax/min WS across periods = {self.flat_region_spread:.2f}"
        )


def run_sampling_sweep(
    ctx: ExperimentContext,
    pair_names=("BLK", "TRD"),
    periods=DEFAULT_PERIODS,
) -> SamplingSweep:
    apps = ctx.pair_apps(*pair_names)
    alone = ctx.alone_for(apps)
    rows: dict[int, tuple[float, tuple[int, ...] | None, float]] = {}
    for period in periods:
        controller = PBSController("ws", n_apps=2, sample_period=period)
        result = run_combo(
            ctx.config, apps, (ctx.config.max_tlp, ctx.config.max_tlp),
            ctx.lengths.dynamic_cycles, ctx.lengths.dynamic_warmup,
            seed=ctx.seed, controller=controller,
        )
        ws = sum(
            result.samples[a].ipc / alone[a].ipc_alone for a in (0, 1)
        )
        # search cost: time of the last TLP actuation (settling point)
        settled_at = max((t for t, _, _ in result.tlp_timeline), default=0.0)
        rows[period] = (ws, controller.final_combo, settled_at)
    return SamplingSweep(workload="_".join(pair_names), rows=rows)
