"""Experiment drivers that regenerate every table and figure of the paper.

Each ``fig*.py`` / ``table4.py`` module exposes a ``run_*`` function that
returns plain data structures (and can render them as ASCII tables via
:mod:`repro.experiments.report`).  Heavy simulation results are cached on
disk by :mod:`repro.experiments.common` so the benchmark suite can be
re-run cheaply.
"""

from repro.experiments.common import ExperimentContext, ResultStore
from repro.experiments.open_system import (
    SCENARIOS,
    OpenRunReport,
    OpenScenario,
    run_open_scenario,
)

__all__ = [
    "ExperimentContext",
    "ResultStore",
    "OpenScenario",
    "OpenRunReport",
    "SCENARIOS",
    "run_open_scenario",
]
