"""Seed-robustness study: are the headline comparisons stable?

Every simulation here is stochastic (seeded address streams), so the
scheme comparisons could in principle be seed artifacts.  This
experiment re-runs the static headline comparison — bestTLP vs
PBS-Offline-WS vs BF-WS vs optWS — across several seeds on a subset of
workloads and reports the per-seed normalized WS, its spread, and
whether the paper's ordering survives every seed.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.experiments.report import geomean, render_table

__all__ = ["RobustnessResult", "run_robustness"]

DEFAULT_WORKLOADS = (("BLK", "TRD"), ("BFS", "FFT"), ("JPEG", "LIB"),
                     ("DS", "TRD"))
DEFAULT_SCHEMES = ("besttlp", "pbs-offline-ws", "bf-ws", "opt-ws")


@dataclass
class RobustnessResult:
    schemes: tuple[str, ...]
    seeds: tuple[int, ...]
    #: seed -> scheme -> gmean normalized WS over the workload subset
    gmeans: dict[int, dict[str, float]]

    def spread(self, scheme: str) -> tuple[float, float]:
        values = [self.gmeans[s][scheme] for s in self.seeds]
        mean = statistics.fmean(values)
        std = statistics.pstdev(values)
        return mean, std

    def ordering_stable(self, better: str, worse: str) -> bool:
        """Does ``better`` beat ``worse`` under every seed?"""
        return all(
            self.gmeans[s][better] >= self.gmeans[s][worse]
            for s in self.seeds
        )

    def render(self) -> str:
        rows = []
        for scheme in self.schemes:
            mean, std = self.spread(scheme)
            per_seed = [self.gmeans[s][scheme] for s in self.seeds]
            rows.append((scheme, mean, std) + tuple(per_seed))
        headers = ("scheme", "mean", "std") + tuple(
            f"seed {s}" for s in self.seeds
        )
        return render_table(
            headers, rows,
            title="Seed robustness: normalized WS gmean over "
                  f"{len(DEFAULT_WORKLOADS)} workloads",
        )


def run_robustness(
    ctx: ExperimentContext,
    seeds: tuple[int, ...] = (1, 2, 3),
    workloads=DEFAULT_WORKLOADS,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
) -> RobustnessResult:
    gmeans: dict[int, dict[str, float]] = {}
    for seed in seeds:
        seeded = dataclasses.replace(ctx, seed=seed)
        per_scheme: dict[str, list[float]] = {s: [] for s in schemes}
        for names in workloads:
            apps = seeded.pair_apps(*names)
            base = seeded.scheme(apps, "besttlp").ws
            for scheme in schemes:
                value = seeded.scheme(apps, scheme).ws
                per_scheme[scheme].append(value / max(base, 1e-12))
        gmeans[seed] = {s: geomean(v) for s, v in per_scheme.items()}
    return RobustnessResult(schemes=schemes, seeds=seeds, gmeans=gmeans)
