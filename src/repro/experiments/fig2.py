"""Figure 2: the effect of TLP on IPC, BW, CMR and EB for a single
application (BFS in the paper), all normalized to its bestTLP values.

The shapes to reproduce: IPC and BW rise with TLP until contention sets
in; CMR grows monotonically at higher TLP; and EB — the combined metric —
tracks IPC closely (Figure 2d), which is the empirical basis for using
EB as the runtime optimization target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table, sparkline

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    abbr: str
    best_tlp: int
    levels: list[int]
    ipc: list[float]  # normalized to bestTLP
    bw: list[float]
    cmr: list[float]
    eb: list[float]

    @property
    def ipc_eb_correlation(self) -> float:
        """Pearson correlation between the IPC and EB curves (Fig 2d)."""
        n = len(self.ipc)
        mi, me = sum(self.ipc) / n, sum(self.eb) / n
        cov = sum((i - mi) * (e - me) for i, e in zip(self.ipc, self.eb))
        vi = sum((i - mi) ** 2 for i in self.ipc)
        ve = sum((e - me) ** 2 for e in self.eb)
        if vi == 0 or ve == 0:
            return 1.0
        return cov / (vi * ve) ** 0.5

    def render(self) -> str:
        rows = [
            (lv, i, b, c, e)
            for lv, i, b, c, e in zip(
                self.levels, self.ipc, self.bw, self.cmr, self.eb
            )
        ]
        table = render_table(
            ("TLP", "IPC", "BW", "CMR", "EB"),
            rows,
            title=(
                f"Figure 2: effect of TLP on {self.abbr} "
                f"(normalized to bestTLP={self.best_tlp})"
            ),
        )
        shapes = (
            f"\nIPC {sparkline(self.ipc)}   BW {sparkline(self.bw)}   "
            f"CMR {sparkline(self.cmr)}   EB {sparkline(self.eb)}"
        )
        return table + shapes + (
            f"\ncorr(IPC, EB) = {self.ipc_eb_correlation:.3f}"
        )


def run_fig2(ctx: ExperimentContext, abbr: str = "BFS") -> Fig2Result:
    from repro.workloads.table4 import app_by_abbr

    profile = ctx.alone(app_by_abbr(abbr))
    best = profile.sweep[profile.best_tlp]
    levels = sorted(profile.sweep)
    return Fig2Result(
        abbr=abbr,
        best_tlp=profile.best_tlp,
        levels=levels,
        ipc=[profile.sweep[lv].ipc / best.ipc for lv in levels],
        bw=[profile.sweep[lv].bw / best.bw for lv in levels],
        cmr=[profile.sweep[lv].cmr / best.cmr for lv in levels],
        eb=[profile.sweep[lv].eb / best.eb for lv in levels],
    )
