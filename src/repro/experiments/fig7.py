"""Figure 7: how PBS-FI and PBS-HS walk the surface (BLK_TRD in the paper).

Two views are reported for the fairness search: the scaled EB-difference
along each application's TLP axis (a fair combination has a difference
near zero), and the EB-HS surface for the harmonic search.  The
experiment also runs the offline searches and compares their picks with
the exhaustive optFI / optHS oracles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TLP_LEVELS
from repro.core.offline import (
    oracle_search,
    pbs_offline_search,
    sampled_scale,
)
from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table
from repro.metrics.bandwidth import eb_hs

__all__ = ["Fig7Result", "run_fig7"]


@dataclass
class Fig7Result:
    workload: str
    abbrs: tuple[str, str]
    levels: list[int]
    scale: list[float]
    #: scaled EB difference (app0 - app1) vs TLP-app0, per iso TLP-app1
    eb_diff: dict[int, list[float]]
    #: EB-HS vs TLP-app0, per iso TLP-app1
    ebhs: dict[int, list[float]]
    pbs_fi_combo: tuple[int, ...]
    opt_fi_combo: tuple[int, ...]
    pbs_hs_combo: tuple[int, ...]
    opt_hs_combo: tuple[int, ...]

    def render(self) -> str:
        diff_rows = [
            (f"TLP-{self.abbrs[1]}={co}",) + tuple(series)
            for co, series in sorted(self.eb_diff.items())
        ]
        hs_rows = [
            (f"TLP-{self.abbrs[1]}={co}",) + tuple(series)
            for co, series in sorted(self.ebhs.items())
        ]
        head = (f"TLP-{self.abbrs[0]} ->",) + tuple(map(str, self.levels))
        out = [
            render_table(head, diff_rows,
                         title=f"Figure 7(a,b): scaled EB-difference "
                               f"({self.workload})"),
            render_table(head, hs_rows,
                         title=f"Figure 7(c,d): EB-HS ({self.workload})"),
            f"PBS-FI choice {self.pbs_fi_combo} vs optFI {self.opt_fi_combo}",
            f"PBS-HS choice {self.pbs_hs_combo} vs optHS {self.opt_hs_combo}",
        ]
        return "\n\n".join(out)


def run_fig7(
    ctx: ExperimentContext, pair_names=("BLK", "TRD")
) -> Fig7Result:
    apps = ctx.pair_apps(*pair_names)
    surface = ctx.surface(apps)
    alone = ctx.alone_for(apps)
    scale = sampled_scale(surface, 2)
    levels = list(TLP_LEVELS)
    iso_levels = [1, 4, 8, 24]

    def diff(combo) -> float:
        s = surface[combo].samples
        return s[0].eb / scale[0] - s[1].eb / scale[1]

    def hs(combo) -> float:
        s = surface[combo].samples
        return eb_hs([s[0].eb, s[1].eb], scale)

    eb_diff = {
        co: [diff((lv, co)) for lv in levels] for co in iso_levels
    }
    ebhs = {co: [hs((lv, co)) for lv in levels] for co in iso_levels}

    pbs_fi, _ = pbs_offline_search(surface, "fi", 2, scale=scale)
    pbs_hs, _ = pbs_offline_search(surface, "hs", 2, scale=scale)
    alone_ipcs = [p.ipc_alone for p in alone]
    return Fig7Result(
        workload="_".join(pair_names),
        abbrs=pair_names,
        levels=levels,
        scale=scale,
        eb_diff=eb_diff,
        ebhs=ebhs,
        pbs_fi_combo=pbs_fi,
        opt_fi_combo=oracle_search(surface, "fi", alone_ipcs),
        pbs_hs_combo=pbs_hs,
        opt_hs_combo=oracle_search(surface, "hs", alone_ipcs),
    )
