"""Tail-latency view of TLP management.

The paper argues in averages (bandwidth, miss rates); the probes make
the same story visible in distributions: under bestTLP+bestTLP the
bandwidth hog keeps the shared queues deep and the victim's P99 memory
latency high, while the optWS combination drains the queues and
compresses the tail.  This experiment runs both combinations with
latency/queue/occupancy probes attached and reports the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table
from repro.sim import (
    LatencyHistogram,
    OccupancyProbe,
    QueueDepthProbe,
    Simulator,
    attach,
)

__all__ = ["LatencyStudy", "run_latency_study"]


@dataclass
class LatencyStudy:
    workload: str
    combos: dict[str, tuple[int, ...]]
    #: label -> app -> {p50, p95, p99, count}
    latency: dict[str, dict[int, dict[str, float]]]
    #: label -> mean DRAM queue depth
    queue_depth: dict[str, float]
    #: label -> app -> mean L2 occupancy share
    l2_share: dict[str, dict[int, float]]

    def render(self) -> str:
        rows = []
        for label in self.combos:
            for app in (0, 1):
                s = self.latency[label][app]
                rows.append((
                    label, str(self.combos[label]), f"app{app}",
                    s["p50"], s["p95"], s["p99"],
                    self.l2_share[label][app],
                ))
        table = render_table(
            ("scenario", "combo", "app", "P50", "P95", "P99", "L2 share"),
            rows,
            title=f"Memory-latency tails and L2 occupancy ({self.workload})",
        )
        depths = "  ".join(
            f"{label}: mean queue={d:.1f}" for label, d in self.queue_depth.items()
        )
        return table + "\n" + depths


def run_latency_study(
    ctx: ExperimentContext, pair_names=("JPEG", "TRD")
) -> LatencyStudy:
    apps = ctx.pair_apps(*pair_names)
    alone = ctx.alone_for(apps)
    surface = ctx.surface(apps)

    def ws_of(combo) -> float:
        return sum(
            surface[combo].samples[a].ipc / alone[a].ipc_alone for a in (0, 1)
        )

    combos = {
        "bestTLP+bestTLP": tuple(p.best_tlp for p in alone),
        "optWS": max(surface, key=ws_of),
    }

    latency: dict[str, dict[int, dict[str, float]]] = {}
    queue_depth: dict[str, float] = {}
    l2_share: dict[str, dict[int, float]] = {}
    for label, combo in combos.items():
        sim = Simulator(ctx.config, apps, seed=ctx.seed)
        hist, queues, occ = LatencyHistogram(), QueueDepthProbe(), OccupancyProbe()
        attach(sim, latency=hist, queues=queues, occupancy=occ)
        sim.run(
            ctx.lengths.eval_cycles,
            warmup=ctx.lengths.eval_warmup,
            initial_tlp={0: combo[0], 1: combo[1]},
        )
        latency[label] = {a: hist.summary(a) for a in (0, 1)}
        queue_depth[label] = queues.mean_depth()
        l2_share[label] = {a: occ.mean_share(a) for a in (0, 1)}

    return LatencyStudy(
        workload="_".join(pair_names),
        combos=combos,
        latency=latency,
        queue_depth=queue_depth,
        l2_share=l2_share,
    )
