"""Pattern-consistency survey across the full evaluated workload set.

Figure 6 demonstrates the pattern on one workload; the paper asserts it
holds "in all our evaluated workloads" (§V).  This experiment quantifies
that claim: for every evaluated pair and both applications, it measures
how tightly the EB-WS inflection point clusters across iso-co-runner-TLP
curves, and how many search samples PBS needs versus the exhaustive 64.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.offline import pbs_offline_search
from repro.experiments.common import ExperimentContext
from repro.experiments.fig6 import run_fig6
from repro.experiments.report import render_table
from repro.workloads.generator import EVALUATED_PAIRS

__all__ = ["PatternSurvey", "run_pattern_survey"]


@dataclass
class PatternSurvey:
    #: workload -> (consistency app0, consistency app1)
    consistency: dict[str, tuple[float, float]]
    #: workload -> number of distinct combos PBS sampled
    pbs_samples: dict[str, int]

    @property
    def mean_consistency(self) -> float:
        values = [c for pair in self.consistency.values() for c in pair]
        return sum(values) / len(values)

    @property
    def mean_samples(self) -> float:
        return sum(self.pbs_samples.values()) / len(self.pbs_samples)

    @property
    def worst_workload(self) -> str:
        return min(
            self.consistency,
            key=lambda wl: min(self.consistency[wl]),
        )

    def render(self) -> str:
        rows = [
            (wl, self.consistency[wl][0], self.consistency[wl][1],
             self.pbs_samples[wl])
            for wl in sorted(self.consistency)
        ]
        table = render_table(
            ("workload", "consistency app0", "consistency app1",
             "PBS samples (of 64)"),
            rows,
            title="§V pattern survey across the evaluated workloads",
        )
        return table + (
            f"\nmean consistency = {self.mean_consistency:.2f}   "
            f"mean PBS samples = {self.mean_samples:.1f} / 64"
        )


def run_pattern_survey(
    ctx: ExperimentContext, pairs=EVALUATED_PAIRS
) -> PatternSurvey:
    consistency: dict[str, tuple[float, float]] = {}
    samples: dict[str, int] = {}
    for names in pairs:
        fig6 = run_fig6(ctx, pair_names=names)
        consistency[fig6.workload] = (
            fig6.pattern_consistency(0),
            fig6.pattern_consistency(1),
        )
        surface = ctx.surface(ctx.pair_apps(*names))
        _, log = pbs_offline_search(surface, "ws", 2)
        samples[fig6.workload] = log.n_samples
    return PatternSurvey(consistency=consistency, pbs_samples=samples)
