"""Figure 8 / §V-E: hardware organization and overhead accounting.

The PBS unit is tiny; the paper breaks its cost into storage,
computation, and communication.  This module computes the same budget
from a configuration so the claim is checkable:

* storage — two 32-bit counters per core (L1 accesses/misses), three
  32-bit counters and one 5-bit register per memory partition (L2
  accesses/misses per app, attained bandwidth), plus the 16-entry
  sampling table (~160 bytes);
* computation — a linear scan over the sampling table per window;
* communication — the designated partition relays ~69 bits to the cores
  each sampling window, charged at 100 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig
from repro.core.controller import COUNTER_RELAY_CYCLES
from repro.experiments.report import render_table

__all__ = ["OverheadBudget", "run_fig8"]

COUNTER_BITS = 32
BW_REGISTER_BITS = 5
SAMPLING_TABLE_ENTRIES = 16


@dataclass
class OverheadBudget:
    per_core_bits: int
    per_partition_bits: int
    sampling_table_bytes: int
    total_storage_bytes: float
    relay_bits_per_window: int
    relay_latency_cycles: int
    table_scan_entries: int

    def render(self) -> str:
        rows = [
            ("per-core counters (bits)", self.per_core_bits),
            ("per-partition counters (bits)", self.per_partition_bits),
            ("sampling table (bytes)", self.sampling_table_bytes),
            ("total storage (bytes)", self.total_storage_bytes),
            ("relay traffic per window (bits)", self.relay_bits_per_window),
            ("relay latency (cycles)", self.relay_latency_cycles),
            ("table entries scanned per decision", self.table_scan_entries),
        ]
        return render_table(
            ("overhead component", "value"),
            rows,
            title="Figure 8 / §V-E: PBS hardware overhead budget",
        )


def run_fig8(config: GPUConfig, n_apps: int = 2) -> OverheadBudget:
    per_core = 2 * COUNTER_BITS  # L1 accesses + misses
    per_partition = n_apps * (3 * COUNTER_BITS) + BW_REGISTER_BITS
    # each table line: per-app EB values (16-bit fixed point) + combo tag
    table_bytes = SAMPLING_TABLE_ENTRIES * (n_apps * 2 + n_apps)
    total = (
        config.n_cores * per_core / 8
        + config.n_channels * per_partition / 8
        + table_bytes
    )
    relay_bits = n_apps * (2 * COUNTER_BITS) + BW_REGISTER_BITS
    return OverheadBudget(
        per_core_bits=per_core,
        per_partition_bits=per_partition,
        sampling_table_bytes=table_bytes,
        total_storage_bytes=total,
        relay_bits_per_window=relay_bits,
        relay_latency_cycles=COUNTER_RELAY_CYCLES,
        table_scan_entries=SAMPLING_TABLE_ENTRIES,
    )
