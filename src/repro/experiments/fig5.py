"""Figure 5: IPC alone-ratio versus EB alone-ratio across two-application
workloads.

The paper's argument for optimizing EB-based rather than IPC-based sums:
the bias either sum has toward one co-runner is its *alone ratio*
max(M1/M2, M2/M1), and across all pairs the EB alone-ratio is much lower
than the IPC alone-ratio, so EB sums are the safer proxy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.experiments.report import geomean, render_table
from repro.metrics.bandwidth import alone_ratio
from repro.workloads.table4 import APPLICATIONS

__all__ = ["Fig5Result", "run_fig5"]


@dataclass
class Fig5Result:
    pairs: list[tuple[str, str]]
    ipc_ar: list[float]
    eb_ar: list[float]

    @property
    def mean_ipc_ar(self) -> float:
        return geomean(self.ipc_ar)

    @property
    def mean_eb_ar(self) -> float:
        return geomean(self.eb_ar)

    @property
    def eb_wins_fraction(self) -> float:
        """Fraction of pairs where the EB bias is smaller."""
        wins = sum(1 for i, e in zip(self.ipc_ar, self.eb_ar) if e <= i)
        return wins / len(self.pairs)

    def render(self) -> str:
        worst = sorted(
            zip(self.pairs, self.ipc_ar, self.eb_ar),
            key=lambda t: -t[1],
        )[:10]
        table = render_table(
            ("pair", "IPC_AR", "EB_AR"),
            [(f"{a}_{b}", i, e) for (a, b), i, e in worst],
            title="Figure 5: alone ratios (10 most IPC-biased pairs shown)",
        )
        return table + (
            f"\npairs={len(self.pairs)}  gmean IPC_AR={self.mean_ipc_ar:.2f}"
            f"  gmean EB_AR={self.mean_eb_ar:.2f}"
            f"  EB bias smaller in {self.eb_wins_fraction:.0%} of pairs"
        )


def run_fig5(ctx: ExperimentContext) -> Fig5Result:
    profiles = {app.abbr: ctx.alone(app) for app in APPLICATIONS}
    pairs, ipc_ar, eb_ar = [], [], []
    for a, b in itertools.combinations(sorted(profiles), 2):
        pa, pb = profiles[a], profiles[b]
        pairs.append((a, b))
        ipc_ar.append(alone_ratio(pa.ipc_alone, pb.ipc_alone))
        eb_ar.append(alone_ratio(pa.eb_alone, pb.eb_alone))
    return Fig5Result(pairs=pairs, ipc_ar=ipc_ar, eb_ar=eb_ar)
