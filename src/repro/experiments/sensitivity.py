"""§VI-D sensitivity studies.

Three studies from the paper's discussion section:

* **three-application workloads** — PBS extends beyond pairs: the
  criticality ranking orders the search and each non-critical
  application is tuned in turn;
* **core partitioning** — unequal core splits between the two
  applications (PBS sits on top of whatever split the system chose);
* **L2 partitioning** — way-partitioning the shared L2 between the
  applications, with and without TLP management.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import evaluate_scheme, profile_alone
from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table
from repro.workloads.table4 import app_by_abbr

__all__ = [
    "ThreeAppResult",
    "CoreSplitResult",
    "L2PartitionResult",
    "run_three_apps",
    "run_core_split",
    "run_l2_partition",
]


@dataclass
class ThreeAppResult:
    workload: str
    ws: dict[str, float]
    fi: dict[str, float]

    def render(self) -> str:
        rows = [(s, self.ws[s], self.fi[s]) for s in self.ws]
        return render_table(
            ("scheme", "WS", "FI"),
            rows,
            title=f"§VI-D: three-application workload {self.workload}",
        )


def run_three_apps(
    ctx: ExperimentContext, names=("BFS", "FFT", "BLK"),
    schemes=("besttlp", "maxtlp", "pbs-ws", "pbs-fi"),
) -> ThreeAppResult:
    apps = [app_by_abbr(n) for n in names]
    per_app = ctx.config.n_cores // len(apps)
    if per_app < 1:
        raise ValueError(
            f"{ctx.config.n_cores} cores cannot host {len(apps)} applications"
        )
    split = tuple(per_app for _ in apps)
    alone = [
        profile_alone(ctx.config, a, per_app, lengths=ctx.lengths, seed=ctx.seed)
        for a in apps
    ]
    ws, fi = {}, {}
    for scheme in schemes:
        r = evaluate_scheme(
            ctx.config, apps, scheme, alone,
            lengths=ctx.lengths, seed=ctx.seed, core_split=split,
        )
        ws[scheme], fi[scheme] = r.ws, r.fi
    return ThreeAppResult(workload="_".join(names), ws=ws, fi=fi)


@dataclass
class CoreSplitResult:
    workload: str
    #: split -> scheme -> WS
    ws: dict[tuple[int, int], dict[str, float]]

    def render(self) -> str:
        schemes = next(iter(self.ws.values())).keys()
        rows = [
            (f"{split[0]}+{split[1]} cores",)
            + tuple(values[s] for s in schemes)
            for split, values in sorted(self.ws.items())
        ]
        return render_table(
            ("core split",) + tuple(schemes),
            rows,
            title=f"§VI-D: core-partitioning sensitivity ({self.workload})",
        )


def run_core_split(
    ctx: ExperimentContext, pair_names=("BLK", "TRD"),
    schemes=("besttlp", "pbs-ws"),
) -> CoreSplitResult:
    apps = ctx.pair_apps(*pair_names)
    n = ctx.config.n_cores
    # Quarter / even / three-quarter splits; the second app takes the
    # remainder so every split sums to n (the engine rejects idle cores).
    candidates = [(n // 4, n - n // 4), (n // 2, n - n // 2),
                  (3 * n // 4, n - 3 * n // 4)]
    splits = sorted({s for s in candidates if s[0] >= 1 and s[1] >= 1})
    ws: dict[tuple[int, int], dict[str, float]] = {}
    for split in splits:
        alone = [
            profile_alone(ctx.config, a, split[i], lengths=ctx.lengths,
                          seed=ctx.seed)
            for i, a in enumerate(apps)
        ]
        ws[split] = {}
        for scheme in schemes:
            r = evaluate_scheme(
                ctx.config, apps, scheme, alone,
                lengths=ctx.lengths, seed=ctx.seed, core_split=split,
            )
            ws[split][scheme] = r.ws
    return CoreSplitResult(workload="_".join(pair_names), ws=ws)


@dataclass
class L2PartitionResult:
    workload: str
    #: partitioning label -> scheme -> WS
    ws: dict[str, dict[str, float]]

    def render(self) -> str:
        schemes = next(iter(self.ws.values())).keys()
        rows = [
            (label,) + tuple(values[s] for s in schemes)
            for label, values in self.ws.items()
        ]
        return render_table(
            ("L2 policy",) + tuple(schemes),
            rows,
            title=f"§VI-D: L2-partitioning sensitivity ({self.workload})",
        )


def run_l2_partition(
    ctx: ExperimentContext, pair_names=("BLK", "TRD"),
    schemes=("besttlp", "pbs-ws"),
) -> L2PartitionResult:
    from repro.core.runner import run_combo
    from repro.core.dyncta import DynCTAController  # noqa: F401 (doc link)

    apps = ctx.pair_apps(*pair_names)
    alone = ctx.alone_for(apps)
    half_ways = ctx.config.l2_per_channel.assoc // 2
    ws: dict[str, dict[str, float]] = {}
    for label, quota in (("shared L2", None),
                         ("way-partitioned L2", {0: half_ways, 1: half_ways})):
        ws[label] = {}
        for scheme in schemes:
            if scheme == "besttlp":
                combo = tuple(p.best_tlp for p in alone)
                result = run_combo(
                    ctx.config, apps, combo, ctx.lengths.eval_cycles,
                    ctx.lengths.eval_warmup, seed=ctx.seed,
                    l2_way_quota=quota,
                )
            else:
                from repro.core.pbs import PBSController

                metric = scheme.rsplit("-", 1)[-1]
                controller = PBSController(
                    metric, n_apps=2,
                    sample_period=ctx.lengths.sample_period,
                )
                result = run_combo(
                    ctx.config, apps, (24, 24), ctx.lengths.dynamic_cycles,
                    ctx.lengths.dynamic_warmup, seed=ctx.seed,
                    controller=controller, l2_way_quota=quota,
                )
            sds = [
                result.samples[a].ipc / alone[a].ipc_alone for a in (0, 1)
            ]
            ws[label][scheme] = sum(sds)
    return L2PartitionResult(workload="_".join(pair_names), ws=ws)
