"""Figure 11: TLP of each application over time under online PBS.

For BLK_BFS the paper shows the per-application warp limit as PBS-WS and
PBS-FI sample combinations and settle, including occasional mid-run
re-tuning.  This experiment extracts the TLP timelines from the online
runs and summarizes the phases (searching vs settled) and the dominant
combination.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table

__all__ = ["TimelineResult", "run_fig11"]


@dataclass
class TimelineResult:
    workload: str
    scheme: str
    #: (start_time, tlp_app0, tlp_app1) segments
    segments: list[tuple[float, int, int]]
    total_cycles: float

    def _dwell(self) -> Counter:
        dwell: Counter = Counter()
        for (start, a0, a1), nxt in zip(self.segments, self.segments[1:]):
            dwell[(a0, a1)] += nxt[0] - start
        if self.segments:
            start, a0, a1 = self.segments[-1]
            dwell[(a0, a1)] += self.total_cycles - start
        return dwell

    @property
    def dominant_combo(self) -> tuple[int, int]:
        dwell = self._dwell()
        return max(dwell, key=dwell.__getitem__)

    @property
    def dominant_dwell_fraction(self) -> float:
        """Fraction of the run spent at the dominant combination."""
        dwell = self._dwell()
        return dwell[self.dominant_combo] / self.total_cycles

    @property
    def n_changes(self) -> int:
        return len(self.segments) - 1

    @property
    def settle_time(self) -> float:
        """Start time of the final (settled) segment."""
        return self.segments[-1][0] if self.segments else 0.0

    def render(self) -> str:
        shown = self.segments[:6] + (
            [("...",) * 3] if len(self.segments) > 7 else []
        ) + self.segments[-1:]
        rows = [
            (seg[0], seg[1], seg[2]) for seg in shown
        ]
        table = render_table(
            ("cycle", "TLP-app0", "TLP-app1"),
            rows,
            title=f"Figure 11: TLP over time, {self.workload} under "
            f"{self.scheme}",
        )
        return table + (
            f"\nchanges={self.n_changes}  settled at cycle "
            f"{self.settle_time:.0f}/{self.total_cycles:.0f}  dominant combo "
            f"{self.dominant_combo}"
        )


def _segments(timeline, n_apps: int) -> list[tuple[float, int, int]]:
    current = [0] * n_apps
    segments: list[tuple[float, int, int]] = []
    by_time: dict[float, dict[int, int]] = {}
    for t, app, tlp in timeline:
        by_time.setdefault(t, {})[app] = tlp
    for t in sorted(by_time):
        for app, tlp in by_time[t].items():
            current[app] = tlp
        segments.append((t, current[0], current[1]))
    # merge consecutive identical combos
    merged = [segments[0]]
    for seg in segments[1:]:
        if seg[1:] != merged[-1][1:]:
            merged.append(seg)
    return merged


def run_fig11(
    ctx: ExperimentContext,
    pair_names=("BLK", "BFS"),
    scheme: str = "pbs-ws",
) -> TimelineResult:
    apps = ctx.pair_apps(*pair_names)
    result = ctx.scheme(apps, scheme)
    return TimelineResult(
        workload="_".join(pair_names),
        scheme=scheme,
        segments=_segments(result.result.tlp_timeline, 2),
        total_cycles=ctx.lengths.dynamic_cycles,
    )
