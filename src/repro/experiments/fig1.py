"""Figure 1: the motivation — WS and FI of BFS_FFT under bestTLP+bestTLP,
maxTLP+maxTLP, and the optWS / optFI oracles, normalized to
bestTLP+bestTLP.

The paper's point: running each application at its alone-best TLP is
sub-optimal once they share the GPU; the oracle combinations deliver
substantially higher throughput and fairness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table

__all__ = ["Fig1Result", "run_fig1"]

SCHEMES = ("besttlp", "maxtlp", "opt-ws", "opt-fi")


@dataclass
class Fig1Result:
    workload: str
    ws: dict[str, float]  # scheme -> normalized WS
    fi: dict[str, float]  # scheme -> normalized FI
    combos: dict[str, tuple[int, ...] | None]

    def render(self) -> str:
        rows = [
            (s, self.ws[s], self.fi[s], str(self.combos[s])) for s in SCHEMES
        ]
        return render_table(
            ("scheme", "WS (norm)", "FI (norm)", "TLP combo"),
            rows,
            title=f"Figure 1: motivation on {self.workload} "
            f"(normalized to bestTLP+bestTLP)",
        )


def run_fig1(ctx: ExperimentContext, pair_names=("BFS", "FFT")) -> Fig1Result:
    apps = ctx.pair_apps(*pair_names)
    results = ctx.schemes(apps, SCHEMES)
    base = results["besttlp"]
    return Fig1Result(
        workload=base.workload,
        ws={s: r.ws / base.ws for s, r in results.items()},
        fi={s: r.fi / base.fi for s, r in results.items()},
        combos={s: r.combo for s, r in results.items()},
    )
