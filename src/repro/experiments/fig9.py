"""Figures 9 and 10 (and the §VI-C HS results): scheme comparison across
workloads.

For each workload, every scheme's WS / FI / HS is normalized to the
bestTLP+bestTLP baseline; the representative ten are reported per
workload, and the geometric mean is taken across the full evaluated set,
exactly as the paper's figures do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import ExperimentContext
from repro.experiments.report import geomean, render_table
from repro.workloads.generator import EVALUATED_PAIRS, REPRESENTATIVE_PAIRS

__all__ = ["SchemeComparison", "run_fig9", "run_fig10", "run_hs", "run_comparison"]

#: schemes reported in Figure 9 (WS flavours)
WS_SCHEMES = (
    "besttlp", "dyncta", "modbypass",
    "pbs-ws", "pbs-offline-ws", "bf-ws", "opt-ws",
)
#: schemes reported in Figure 10 (FI flavours)
FI_SCHEMES = (
    "besttlp", "dyncta", "modbypass",
    "pbs-fi", "pbs-offline-fi", "bf-fi", "opt-fi",
)
#: schemes reported in the §VI-C HS discussion
HS_SCHEMES = (
    "besttlp", "dyncta", "modbypass",
    "pbs-hs", "pbs-offline-hs", "bf-hs", "opt-hs",
)


@dataclass
class SchemeComparison:
    metric: str  # "ws" | "fi" | "hs"
    schemes: tuple[str, ...]
    #: workload -> scheme -> normalized metric
    per_workload: dict[str, dict[str, float]]
    representative: list[str] = field(default_factory=list)

    def gmean(self, scheme: str) -> float:
        return geomean(
            values[scheme] for values in self.per_workload.values()
        )

    def render(self) -> str:
        headers = ("workload",) + self.schemes
        rows = []
        shown = self.representative or sorted(self.per_workload)
        for wl in shown:
            values = self.per_workload[wl]
            rows.append((wl,) + tuple(values[s] for s in self.schemes))
        rows.append(
            ("Gmean(all)",) + tuple(self.gmean(s) for s in self.schemes)
        )
        fig = {"ws": "Figure 9 (WS)", "fi": "Figure 10 (FI)",
               "hs": "§VI-C (HS)"}[self.metric]
        return render_table(
            headers, rows,
            title=f"{fig}: normalized to bestTLP+bestTLP "
            f"({len(self.per_workload)} workloads in Gmean)",
        )


def run_comparison(
    ctx: ExperimentContext,
    metric: str,
    schemes: tuple[str, ...],
    pairs=EVALUATED_PAIRS,
    representative=REPRESENTATIVE_PAIRS,
) -> SchemeComparison:
    per_workload: dict[str, dict[str, float]] = {}
    for names in pairs:
        apps = ctx.pair_apps(*names)
        results = ctx.schemes(apps, schemes)
        base_value = getattr(results["besttlp"], metric)
        per_workload["_".join(names)] = {
            s: getattr(r, metric) / max(base_value, 1e-12)
            for s, r in results.items()
        }
    return SchemeComparison(
        metric=metric,
        schemes=schemes,
        per_workload=per_workload,
        representative=["_".join(n) for n in representative],
    )


def run_fig9(ctx: ExperimentContext, pairs=EVALUATED_PAIRS) -> SchemeComparison:
    return run_comparison(ctx, "ws", WS_SCHEMES, pairs)


def run_fig10(ctx: ExperimentContext, pairs=EVALUATED_PAIRS) -> SchemeComparison:
    return run_comparison(ctx, "fi", FI_SCHEMES, pairs)


def run_hs(ctx: ExperimentContext, pairs=EVALUATED_PAIRS) -> SchemeComparison:
    return run_comparison(ctx, "hs", HS_SCHEMES, pairs)
