"""Figure 6: the patterns that make PBS possible.

For one workload (BLK_TRD in the paper) this experiment sweeps the full
TLP surface and reports, per co-runner TLP (iso-TLP curves), the EB-WS
series along the other application's TLP axis.  The *pattern* claim:
each application's inflection point — the TLP level after which EB-WS
drops the most — sits at (nearly) the same level regardless of the
co-runner's TLP, so one probe sweep suffices to locate it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TLP_LEVELS
from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table

__all__ = ["Fig6Result", "run_fig6", "inflection_level"]


def inflection_level(levels: list[int], series: list[float]) -> int:
    """The level just before the sharpest drop (argmax if monotone)."""
    drops = [series[k] - series[k + 1] for k in range(len(series) - 1)]
    if drops and max(drops) > 0:
        return levels[max(range(len(drops)), key=drops.__getitem__)]
    return levels[max(range(len(series)), key=series.__getitem__)]


@dataclass
class Fig6Result:
    workload: str
    abbrs: tuple[str, str]
    levels: list[int]
    #: ebws[app][co_tlp] = EB-WS series along app's TLP axis
    ebws: dict[int, dict[int, list[float]]]
    #: per-app EB surfaces, same indexing
    eb_self: dict[int, dict[int, list[float]]]

    def inflections(self, app: int) -> dict[int, int]:
        """Inflection level of ``app`` for each co-runner TLP."""
        return {
            co: inflection_level(self.levels, series)
            for co, series in self.ebws[app].items()
        }

    def pattern_consistency(self, app: int) -> float:
        """Fraction of iso-curves whose inflection is within one lattice
        step of the modal inflection level."""
        infl = list(self.inflections(app).values())
        mode = max(set(infl), key=infl.count)
        idx = {lv: i for i, lv in enumerate(self.levels)}
        close = sum(1 for lv in infl if abs(idx[lv] - idx[mode]) <= 1)
        return close / len(infl)

    def render(self) -> str:
        blocks = []
        for app in (0, 1):
            rows = []
            for co, series in sorted(self.ebws[app].items()):
                rows.append((f"co-TLP={co}",) + tuple(series))
            table = render_table(
                (f"TLP-{self.abbrs[app]} ->",) + tuple(map(str, self.levels)),
                rows,
                title=(
                    f"Figure 6: EB-WS vs TLP-{self.abbrs[app]} "
                    f"({self.workload}); pattern consistency "
                    f"{self.pattern_consistency(app):.0%}"
                ),
            )
            blocks.append(table)
        return "\n\n".join(blocks)


def run_fig6(
    ctx: ExperimentContext, pair_names=("BLK", "TRD")
) -> Fig6Result:
    apps = ctx.pair_apps(*pair_names)
    surface = ctx.surface(apps)
    levels = list(TLP_LEVELS)

    def series_for(app: int, co_tlp: int, extract) -> list[float]:
        out = []
        for lv in levels:
            combo = (lv, co_tlp) if app == 0 else (co_tlp, lv)
            out.append(extract(surface[combo]))
        return out

    iso_levels = [1, 2, 4, 8, 16, 24]
    ebws = {
        app: {
            co: series_for(
                app, co, lambda r: r.samples[0].eb + r.samples[1].eb
            )
            for co in iso_levels
        }
        for app in (0, 1)
    }
    eb_self = {
        app: {
            co: series_for(app, co, lambda r, a=app: r.samples[a].eb)
            for co in iso_levels
        }
        for app in (0, 1)
    }
    return Fig6Result(
        workload="_".join(pair_names),
        abbrs=pair_names,
        levels=levels,
        ebws=ebws,
        eb_self=eb_self,
    )
