"""Open-system scenarios: dynamic arrivals/departures under a policy.

The paper's experiments are closed 2-app co-runs.  This suite opens the
system: an :class:`OpenScenario` describes an initial roster plus
scheduled (or seeded stochastic) arrivals and departures, and
:func:`run_open_scenario` replays it under any registered scheduler
policy (:mod:`repro.core.policy`), returning time-weighted WS/FI/HS
over the churning roster.

Epoch assembly: the run is split at the warmup boundary and at every
roster change; within an epoch the roster is constant, so the paper's
closed-form metrics apply.  Each live application's epoch IPC is the
window-log aggregate (sum of instructions over sum of cycles of the
windows cut inside the epoch — the tenancy manager seals a window at
every churn boundary, so no window straddles an epoch).  Slowdowns are
measured against :meth:`~repro.experiments.common.ExperimentContext.
alone` profiles (alone at half the machine, the paper's reference); the
time-weighted metrics then reduce exactly to the closed forms when the
roster never changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.policy import make_policy
from repro.experiments.common import ExperimentContext
from repro.metrics.tenancy import time_weighted_objective
from repro.sim import SimResult, Simulator, TenancyEvent
from repro.workloads import ArrivalSchedule, app_by_abbr

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.synthetic import AppProfile

__all__ = [
    "OpenScenario",
    "OpenRunReport",
    "SCENARIOS",
    "build_schedule",
    "run_open_scenario",
    "assemble_epochs",
]


@dataclass(frozen=True)
class OpenScenario:
    """One open-system experiment, described as data.

    Explicit mode: ``arrivals`` are ``(cycle, abbr)`` pairs and
    ``departures`` are ``(cycle, app_id)`` pairs (ids follow the
    engine's monotonic numbering: initial apps are ``0..n-1``, the k-th
    arrival is ``n + k``).  Seeded mode (``mean_interarrival > 0``):
    a reproducible stochastic trace drawn by
    :meth:`repro.workloads.ArrivalSchedule.seeded` from ``candidates``.
    Cycle positions are *fractions* of the run length, so the same
    scenario scales from quick test runs to full-length ones.
    """

    name: str
    initial: tuple[str, ...]
    arrivals: tuple[tuple[float, str], ...] = ()
    departures: tuple[tuple[float, int], ...] = ()
    candidates: tuple[str, ...] = ()
    mean_interarrival: float = 0.0  # fraction of the run; > 0 → seeded
    mean_lifetime: float = 0.0  # fraction of the run
    max_live: int = 0  # 0 → as many as the machine can host
    min_live: int = 1


#: Named scenarios for the ``repro sim open`` CLI and the smoke tests.
#: ``two-phase`` exercises the full lifecycle deterministically: a third
#: app arrives early (forcing a PBS re-search), then the heaviest
#: initial app departs (forcing another).  ``churn`` draws a seeded
#: Poisson trace over four candidate profiles.
SCENARIOS: dict[str, OpenScenario] = {
    "two-phase": OpenScenario(
        name="two-phase",
        initial=("BLK", "TRD"),
        arrivals=((0.25, "LUD"),),
        departures=((0.55, 0),),
    ),
    "churn": OpenScenario(
        name="churn",
        initial=("BLK", "TRD"),
        candidates=("LUD", "BFS", "GUPS", "RED"),
        mean_interarrival=0.22,
        mean_lifetime=0.35,
        max_live=0,
        min_live=2,
    ),
}


def build_schedule(
    scenario: OpenScenario,
    *,
    cycles: int,
    warmup: int,
    seed: int,
    max_live_cap: int,
) -> ArrivalSchedule:
    """Materialize a scenario's schedule for a concrete run length."""
    initial = tuple(app_by_abbr(a) for a in scenario.initial)

    def cyc(frac: float) -> int:
        # Events land after warmup so every epoch is inside the
        # measured region; fractions position them along what remains.
        return max(1, warmup + int(frac * (cycles - warmup)))

    if scenario.mean_interarrival > 0:
        max_live = scenario.max_live or max_live_cap
        return ArrivalSchedule.seeded(
            initial,
            tuple(app_by_abbr(a) for a in scenario.candidates),
            max_cycles=cycles,
            seed=seed,
            mean_interarrival=scenario.mean_interarrival * (cycles - warmup),
            mean_lifetime=scenario.mean_lifetime * (cycles - warmup),
            max_live=min(max_live, max_live_cap),
            min_live=scenario.min_live,
        )
    events = sorted(
        [
            TenancyEvent(cycle=cyc(f), action="attach", profile=app_by_abbr(abbr))
            for f, abbr in scenario.arrivals
        ]
        + [
            TenancyEvent(cycle=cyc(f), action="detach", app_id=app_id)
            for f, app_id in scenario.departures
        ],
        key=lambda ev: ev.cycle,
    )
    return ArrivalSchedule(initial=initial, events=tuple(events))


@dataclass
class OpenRunReport:
    """One open-system run: result, roster timeline, and TW metrics.

    Carries the same attribute surface as
    :class:`repro.core.runner.SchemeResult` (``result`` / ``workload`` /
    ``scheme`` / ``decisions``), so the live-telemetry emitters accept
    it unchanged.
    """

    scheme: str  # policy name
    workload: str  # scenario name
    result: SimResult
    epochs: list[tuple[float, list[float]]]  # (duration, slowdowns)
    ws: float
    fi: float
    hs: float
    decisions: list[dict] = field(default_factory=list)

    @property
    def n_arrivals(self) -> int:
        return sum(1 for r in self.result.roster if r["event"] == "attach")

    @property
    def n_departures(self) -> int:
        return sum(1 for r in self.result.roster if r["event"] == "detach")


def assemble_epochs(
    result: SimResult,
    warmup: float,
    alone_ipc: dict[int, float],
) -> list[tuple[float, list[float]]]:
    """Split a run's window log into constant-roster epochs.

    Returns ``(duration, slowdowns)`` pairs ordered in time; windows cut
    at or before ``warmup`` are excluded, matching the closed-system
    measurement region.  ``alone_ipc`` maps app id to its alone IPC
    (slowdown denominator); apps with no alone profile are skipped.
    """
    # The roster at warmup: initial apps (every id that never appears as
    # an attach), updated by any churn that happened inside warmup.
    attached = {r["app"] for r in result.roster if r["event"] == "attach"}
    roster = sorted(set(range(len(result.samples))) - attached)
    boundaries: list[tuple[float, list[int]]] = [(warmup, roster)]
    for rec in result.roster:
        if rec["cycle"] <= warmup:
            boundaries[0] = (warmup, list(rec["roster"]))
        else:
            boundaries.append((float(rec["cycle"]), list(rec["roster"])))
    boundaries.append((float(result.cycles) + warmup, []))  # end sentinel

    epochs: list[tuple[float, list[float]]] = []
    end_cycle = boundaries[-1][0]
    for (t0, live), (t1, _next) in zip(boundaries, boundaries[1:]):
        t1 = min(t1, end_cycle)
        if t1 <= t0:
            continue
        insts = {a: 0.0 for a in live}
        spans = {a: 0.0 for a in live}
        for cut, samples in result.windows:
            if cut <= t0 or cut > t1:
                continue
            for a in live:
                if a in samples:
                    insts[a] += samples[a].insts
                    spans[a] += samples[a].cycles
        sds = []
        for a in live:
            ref = alone_ipc.get(a)
            if not ref or spans[a] <= 0:
                continue
            sds.append((insts[a] / spans[a]) / ref)
        if sds:
            epochs.append((t1 - t0, sds))
    return epochs


def run_open_scenario(
    ctx: ExperimentContext,
    scenario: OpenScenario,
    policy: str = "pbs-ws",
    cycles: int | None = None,
    warmup: int | None = None,
    **policy_kwargs: object,
) -> OpenRunReport:
    """Run one open-system scenario under a named policy."""
    cycles = cycles if cycles is not None else ctx.lengths.dynamic_cycles
    warmup = warmup if warmup is not None else ctx.lengths.dynamic_warmup
    schedule = build_schedule(
        scenario,
        cycles=cycles,
        warmup=warmup,
        seed=ctx.seed,
        max_live_cap=ctx.config.n_cores,
    )
    policy_kwargs.setdefault("sample_period", ctx.lengths.sample_period)
    controller = make_policy(
        policy, n_apps=len(schedule.initial), **policy_kwargs
    )
    sim = Simulator(
        ctx.config,
        list(schedule.initial),
        controller=controller,
        seed=ctx.seed,
        arrivals=schedule.events,
    )
    result = sim.run(cycles, warmup=warmup)

    # Alone references for every profile that ever ran.  Arrivals map to
    # their engine-assigned ids: initial apps 0..n-1, k-th attach n+k.
    profiles: dict[int, "AppProfile"] = {
        a: p for a, p in enumerate(schedule.initial)
    }
    attach_ids = sorted(
        r["app"] for r in result.roster if r["event"] == "attach"
    )
    attach_events = [ev for ev in schedule.events if ev.action == "attach"]
    for app_id, ev in zip(attach_ids, attach_events):
        profiles[app_id] = ev.profile
    alone_ipc = {
        a: ctx.alone(p).ipc_alone for a, p in sorted(profiles.items())
    }
    epochs = assemble_epochs(result, float(warmup), alone_ipc)
    return OpenRunReport(
        scheme=policy,
        workload=scenario.name,
        result=result,
        epochs=epochs,
        ws=time_weighted_objective("ws", epochs),
        fi=time_weighted_objective("fi", epochs),
        hs=time_weighted_objective("hs", epochs),
        decisions=list(getattr(controller, "decision_log", [])),
    )
