"""Figure 4: where the shared resources go — per-application slowdown and
effective-bandwidth breakdowns under bestTLP+bestTLP versus optWS for the
ten representative workloads.

The two observations this experiment checks (§IV):

* Observation 1 — the TLP combination with the highest total EB (EB-WS)
  also has (near-)highest WS;
* the bestTLP combination leaves a significant WS gap to optWS, caused
  by disproportionate resource consumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table
from repro.workloads.generator import REPRESENTATIVE_PAIRS

__all__ = ["Fig4Row", "Fig4Result", "run_fig4", "run_observation2"]


@dataclass
class Fig4Row:
    workload: str
    sd_base: tuple[float, float]
    sd_opt: tuple[float, float]
    eb_base: tuple[float, float]
    eb_opt: tuple[float, float]

    @property
    def ws_base(self) -> float:
        return sum(self.sd_base)

    @property
    def ws_opt(self) -> float:
        return sum(self.sd_opt)

    @property
    def ebws_base(self) -> float:
        return sum(self.eb_base)

    @property
    def ebws_opt(self) -> float:
        return sum(self.eb_opt)


@dataclass
class Fig4Result:
    rows: list[Fig4Row]

    def render(self) -> str:
        table_rows = []
        for r in self.rows:
            table_rows.append(
                (
                    r.workload,
                    f"{r.sd_base[0]:.2f}+{r.sd_base[1]:.2f}",
                    f"{r.sd_opt[0]:.2f}+{r.sd_opt[1]:.2f}",
                    r.ws_opt / r.ws_base,
                    f"{r.eb_base[0]:.2f}+{r.eb_base[1]:.2f}",
                    f"{r.eb_opt[0]:.2f}+{r.eb_opt[1]:.2f}",
                )
            )
        return render_table(
            ("workload", "SD base", "SD optWS", "WS gain",
             "EB base", "EB optWS"),
            table_rows,
            title="Figure 4: slowdown and EB breakdowns, bestTLP vs optWS",
        )


@dataclass
class Observation2Result:
    """Observation 2 (§IV): maximizing raw instruction throughput (IT =
    sum of IPCs) is not the same as maximizing WS."""

    #: workload -> (argmax-IT combo, argmax-WS combo, WS@optIT / WS@optWS)
    rows: dict[str, tuple[tuple[int, ...], tuple[int, ...], float]]

    @property
    def divergent_workloads(self) -> list[str]:
        return [wl for wl, (it, ws, _) in self.rows.items() if it != ws]

    def render(self) -> str:
        table_rows = [
            (wl, str(it), str(ws), ratio)
            for wl, (it, ws, ratio) in sorted(self.rows.items())
        ]
        table = render_table(
            ("workload", "optIT combo", "optWS combo", "WS@optIT / WS@optWS"),
            table_rows,
            title="Observation 2: instruction throughput vs weighted speedup",
        )
        return table + (
            f"\noptIT != optWS in {len(self.divergent_workloads)} of "
            f"{len(self.rows)} workloads"
        )


def run_observation2(
    ctx: ExperimentContext, pairs=REPRESENTATIVE_PAIRS
) -> Observation2Result:
    rows = {}
    for names in pairs:
        apps = ctx.pair_apps(*names)
        surface = ctx.surface(apps)
        alone = ctx.alone_for(apps)

        def it(combo):
            return sum(surface[combo].samples[a].ipc for a in (0, 1))

        def ws(combo):
            return sum(
                surface[combo].samples[a].ipc / alone[a].ipc_alone
                for a in (0, 1)
            )

        opt_it = max(surface, key=it)
        opt_ws = max(surface, key=ws)
        rows["_".join(names)] = (opt_it, opt_ws, ws(opt_it) / ws(opt_ws))
    return Observation2Result(rows=rows)


def run_fig4(
    ctx: ExperimentContext, pairs=REPRESENTATIVE_PAIRS
) -> Fig4Result:
    rows = []
    for names in pairs:
        apps = ctx.pair_apps(*names)
        base = ctx.scheme(apps, "besttlp")
        opt = ctx.scheme(apps, "opt-ws")
        rows.append(
            Fig4Row(
                workload=base.workload,
                sd_base=(base.sds[0], base.sds[1]),
                sd_opt=(opt.sds[0], opt.sds[1]),
                eb_base=(base.ebs[0], base.ebs[1]),
                eb_opt=(opt.ebs[0], opt.ebs[1]),
            )
        )
    return Fig4Result(rows=rows)
