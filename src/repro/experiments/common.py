"""Shared experiment machinery: disk-cached profiling and evaluation.

Every experiment consumes three kinds of simulation products:

* *alone profiles* — per-application bestTLP sweeps (Table IV, SD bases);
* *surfaces* — one short run per TLP combination of a workload
  (64 for pairs), feeding the brute-force/oracle/offline searches and
  the pattern figures;
* *scheme evaluations* — full runs of one scheme on one workload.

All three are pure functions of (config, workload, run lengths, seed),
so :class:`ResultStore` caches them as JSON under ``results/`` keyed by
a fingerprint of those inputs.  Delete the directory to recompute.

Simulation products are computed through :mod:`repro.exec`: a context's
``n_jobs`` (default: ``$REPRO_JOBS``, else all cores) fans independent
runs out over a process pool, and its ``progress`` callback reports
sweep completion.  :class:`ResultStore` writes are atomic and use
unique temp names, so concurrent workers — including several processes
sharing one ``results/`` directory — never corrupt each other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.config import GPUConfig, TLP_LEVELS
from repro.core.runner import (
    AloneProfile,
    RunLengths,
    SchemeResult,
    alone_from_sweep,
    emit_scheme_events,
    evaluate_scheme,
    profile_surface,
)
from repro.exec.jobs import SimJob, run_sim_job
from repro.exec.pool import ProgressFn, run_jobs
from repro.obs.io import atomic_write_text
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.sim import SimResult, WindowSample
from repro.workloads.synthetic import AppProfile
from repro.workloads.table4 import app_by_abbr

__all__ = ["ResultStore", "ExperimentContext", "DEFAULT_RESULTS_DIR",
           "CACHE_FORMAT", "SCHEME_VERSIONS", "atomic_write_text"]

DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"

#: Serialization-format version, folded into every cache key.  Bump it
#: whenever the JSON layout of a cached product changes so stale entries
#: are recomputed rather than half-deserialized.
#:
#: v2: ``SimResult.windows`` round-trips (older entries dropped the
#: window log, so cached scheme evaluations disagreed with fresh ones
#: for window-log consumers such as the fig11 timeline experiments).
#:
#: v3: ``SchemeResult.decisions`` round-trips (the controllers'
#: structured decision logs, consumed by the trace/summarize tooling).
#:
#: v4: ``SimResult.roster`` round-trips (open-system tenancy timelines;
#: the key is omitted entirely for closed-system results, whose payloads
#: are byte-identical to v3).
CACHE_FORMAT = 4

#: Algorithm-version salts folded into scheme cache keys.  Bump a
#: family's version when its controller/search logic changes so stale
#: cached evaluations are recomputed — without discarding everything
#: else (surfaces, alone profiles, other schemes).
SCHEME_VERSIONS: dict[str, int] = {
    "pbs": 2,  # v2: coordinate-descent refinement pass (stage 4)
    "dyncta": 1,
    "ccws": 1,
    "modbypass": 1,
    "static": 1,  # besttlp / maxtlp / bf-* / opt-*
}


def _scheme_version(scheme: str) -> int:
    for family in ("pbs", "dyncta", "ccws", "modbypass"):
        if scheme.startswith(family):
            return SCHEME_VERSIONS[family]
    return SCHEME_VERSIONS["static"]

_SAMPLE_FIELDS = (
    "app_id", "cycles", "insts", "ipc", "l1_miss_rate", "l2_miss_rate",
    "cmr", "bw", "eb", "avg_mem_latency", "row_hit_rate",
)


def _sample_to_dict(sample: WindowSample) -> dict:
    return {f: getattr(sample, f) for f in _SAMPLE_FIELDS}


def _sample_from_dict(data: dict) -> WindowSample:
    return WindowSample(**{f: data[f] for f in _SAMPLE_FIELDS})


def _result_to_dict(result: SimResult) -> dict:
    return {
        "samples": {str(a): _sample_to_dict(s) for a, s in result.samples.items()},
        "cycles": result.cycles,
        "tlp_timeline": result.tlp_timeline,
        "windows": [
            [t, {str(a): _sample_to_dict(s) for a, s in samples.items()}]
            for t, samples in result.windows
        ],
        "final_tlp": {str(a): t for a, t in result.final_tlp.items()},
        "dram_utilization": result.dram_utilization,
        # Closed-system results have an empty roster timeline; omitting
        # the key keeps their payloads (and the golden fixtures) stable.
        **({"roster": result.roster} if result.roster else {}),
    }


def _result_from_dict(data: dict) -> SimResult:
    return SimResult(
        samples={int(a): _sample_from_dict(s) for a, s in data["samples"].items()},
        cycles=data["cycles"],
        tlp_timeline=[tuple(t) for t in data["tlp_timeline"]],
        windows=[
            (t, {int(a): _sample_from_dict(s) for a, s in samples.items()})
            for t, samples in data["windows"]
        ],
        final_tlp={int(a): t for a, t in data["final_tlp"].items()},
        dram_utilization=data["dram_utilization"],
        roster=data.get("roster", []),
    )


def _fingerprint(*parts: object) -> str:
    blob = json.dumps([repr(p) for p in parts], sort_keys=True).encode()
    return hashlib.md5(blob).hexdigest()[:16]


# ``atomic_write_text`` (the one sanctioned way to write under
# ``results/``, lint rule R006) lives in :mod:`repro.obs.io` so the
# observability sinks can use it without importing the experiment
# layer; this module remains its canonical public home.


class ResultStore:
    """JSON-on-disk memoization of simulation products.

    Safe for concurrent writers: each save streams into a uniquely named
    temp file (pid + random suffix) and is published with an atomic
    ``os.replace``, so two processes saving the same key race benignly —
    readers see either complete version, never a torn file.

    Loads and saves count into the ambient metrics registry
    (``cache.<kind>.hit`` / ``.miss`` / ``.save``) so a traced run can
    report how much of it was served from cache.
    """

    def __init__(self, root: Path | str = DEFAULT_RESULTS_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{key}.json"

    def load(self, kind: str, key: str) -> dict | None:
        path = self._path(kind, key)
        if not path.exists():
            get_metrics().inc(f"cache.{kind}.miss")
            return None
        get_metrics().inc(f"cache.{kind}.hit")
        with path.open() as fh:
            return json.load(fh)

    def save(self, kind: str, key: str, data: dict) -> None:
        get_metrics().inc(f"cache.{kind}.save")
        atomic_write_text(self._path(kind, key), json.dumps(data))


@dataclass
class ExperimentContext:
    """Configuration + cache for one experimental campaign.

    All experiment drivers take a context so tests can run them with a
    tiny config and a temporary cache directory.  ``n_jobs`` controls
    the process pool used for simulation sweeps (``None`` resolves to
    ``$REPRO_JOBS``, else all cores; ``1`` forces serial execution);
    ``progress`` receives ``(done, total, job)`` as sweep jobs complete.
    """

    config: GPUConfig
    lengths: RunLengths = dataclasses.field(default_factory=RunLengths)
    seed: int = 1
    store: ResultStore = dataclasses.field(default_factory=ResultStore)
    n_jobs: int | None = None
    progress: ProgressFn | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    # --- keys ------------------------------------------------------------

    def _profile_key(self, *parts: object) -> str:
        """Key for profiling products: only profile lengths matter."""
        return _fingerprint(
            CACHE_FORMAT,
            dataclasses.asdict(self.config),
            (self.lengths.profile_cycles, self.lengths.profile_warmup),
            self.seed,
            *parts,
        )

    def _key(self, *parts: object) -> str:
        return _fingerprint(
            CACHE_FORMAT,
            dataclasses.asdict(self.config),
            dataclasses.asdict(self.lengths),
            self.seed,
            *parts,
        )

    def _worker_clone(self) -> "ExperimentContext":
        """A picklable copy for pool workers: serial, no callbacks."""
        return dataclasses.replace(self, n_jobs=1, progress=None)

    # --- alone profiles -----------------------------------------------------

    def _alone_key(self, app: AppProfile, n_cores: int) -> str:
        # The full profile repr is part of the key, so editing an
        # application's parameters invalidates its cached products.
        return self._profile_key("alone", repr(app), n_cores)

    def _load_alone(self, key: str) -> AloneProfile | None:
        cached = self.store.load("alone", key)
        if cached is None:
            return None
        return AloneProfile(
            abbr=cached["abbr"],
            best_tlp=cached["best_tlp"],
            ipc_alone=cached["ipc_alone"],
            eb_alone=cached["eb_alone"],
            sweep={
                int(lv): _sample_from_dict(s) for lv, s in cached["sweep"].items()
            },
        )

    def _save_alone(self, key: str, profile: AloneProfile) -> None:
        self.store.save(
            "alone",
            key,
            {
                "abbr": profile.abbr,
                "best_tlp": profile.best_tlp,
                "ipc_alone": profile.ipc_alone,
                "eb_alone": profile.eb_alone,
                "sweep": {
                    str(lv): _sample_to_dict(s) for lv, s in profile.sweep.items()
                },
            },
        )

    def _alone_jobs(self, app: AppProfile, n_cores: int) -> list[SimJob]:
        return [
            SimJob(
                config=self.config,
                apps=(app,),
                combo=(level,),
                cycles=self.lengths.profile_cycles,
                warmup=self.lengths.profile_warmup,
                seed=self.seed,
                core_split=(n_cores,),
                tag=("alone", app.abbr, level),
            )
            for level in TLP_LEVELS
        ]

    def alone(self, app: AppProfile, n_cores: int | None = None) -> AloneProfile:
        n_cores = n_cores if n_cores is not None else self.config.n_cores // 2
        return self.alone_for([app], n_cores=n_cores)[0]

    def alone_for(
        self, apps: list[AppProfile], n_cores: int | None = None
    ) -> list[AloneProfile]:
        """Alone-profile every application, sweeping all of them at once.

        The uncached applications' per-level runs are flattened into one
        job batch so a single pool pass covers e.g. the whole 26-app zoo
        (208 independent simulations) instead of one 8-level sweep at a
        time.
        """
        n_cores = n_cores if n_cores is not None else self.config.n_cores // len(apps)
        keys = [self._alone_key(app, n_cores) for app in apps]
        profiles: dict[int, AloneProfile] = {}
        missing: list[int] = []
        for i, key in enumerate(keys):
            cached = self._load_alone(key)
            if cached is not None:
                profiles[i] = cached
            else:
                missing.append(i)
        if missing:
            jobs = [
                job for i in missing for job in self._alone_jobs(apps[i], n_cores)
            ]
            with get_tracer().span(
                "profile_alone",
                apps=[apps[i].abbr for i in missing],
                n_jobs=len(jobs),
            ):
                results = run_jobs(
                    run_sim_job, jobs, n_jobs=self.n_jobs, progress=self.progress
                )
            n_levels = len(TLP_LEVELS)
            for slot, i in enumerate(missing):
                chunk = results[slot * n_levels : (slot + 1) * n_levels]
                sweep = {
                    level: result.samples[0]
                    for level, result in zip(TLP_LEVELS, chunk)
                }
                profile = alone_from_sweep(apps[i].abbr, sweep)
                self._save_alone(keys[i], profile)
                profiles[i] = profile
        return [profiles[i] for i in range(len(apps))]

    # --- surfaces ------------------------------------------------------------

    def surface(
        self, apps: list[AppProfile], core_split: tuple[int, ...] | None = None
    ) -> dict[tuple[int, ...], SimResult]:
        key = self._profile_key("surface", tuple(repr(a) for a in apps), core_split)
        cached = self.store.load("surface", key)
        if cached is not None:
            return {
                tuple(json.loads(combo)): _result_from_dict(res)
                for combo, res in cached.items()
            }
        with get_tracer().span(
            "profile_surface", workload="_".join(a.abbr for a in apps)
        ):
            surface = profile_surface(
                self.config,
                apps,
                lengths=self.lengths,
                seed=self.seed,
                core_split=core_split,
                n_jobs=self.n_jobs,
                progress=self.progress,
            )
        self.store.save(
            "surface",
            key,
            {json.dumps(list(c)): _result_to_dict(r) for c, r in surface.items()},
        )
        return surface

    # --- scheme evaluations ----------------------------------------------------

    def _scheme_key(
        self,
        apps: list[AppProfile],
        scheme: str,
        core_split: tuple[int, ...] | None,
    ) -> str:
        version = _scheme_version(scheme)
        # Version 1 keys keep the historical format so existing cached
        # evaluations of unchanged scheme families remain valid.
        parts = ("scheme", tuple(repr(a) for a in apps), scheme)
        if version != 1:
            parts += (f"v{version}",)
        return self._key(*parts, core_split)

    def _load_scheme(self, key: str) -> SchemeResult | None:
        cached = self.store.load("scheme", key)
        if cached is None:
            return None
        return SchemeResult(
            scheme=cached["scheme"],
            workload=cached["workload"],
            combo=tuple(cached["combo"]) if cached["combo"] else None,
            sds=cached["sds"],
            ws=cached["ws"],
            fi=cached["fi"],
            hs=cached["hs"],
            ebs=cached["ebs"],
            ipcs=cached["ipcs"],
            result=_result_from_dict(cached["result"]),
            decisions=cached.get("decisions", []),
        )

    def scheme(
        self,
        apps: list[AppProfile],
        scheme: str,
        core_split: tuple[int, ...] | None = None,
    ) -> SchemeResult:
        name = "_".join(a.abbr for a in apps)
        key = self._scheme_key(apps, scheme, core_split)
        cached = self._load_scheme(key)
        if cached is not None:
            # Telemetry replays identically from the cached window and
            # decision logs: a fully cached run still yields a full trace.
            emit_scheme_events(cached)
            return cached
        alone = self.alone_for(apps)
        needs_surface = scheme.startswith(("bf-", "opt-", "pbs-offline-"))
        surface = self.surface(apps, core_split) if needs_surface else None
        result = evaluate_scheme(
            self.config,
            apps,
            scheme,
            alone,
            surface=surface,
            lengths=self.lengths,
            seed=self.seed,
            core_split=core_split,
            workload=name,
        )
        self.store.save(
            "scheme",
            key,
            {
                "scheme": result.scheme,
                "workload": result.workload,
                "combo": list(result.combo) if result.combo else None,
                "sds": result.sds,
                "ws": result.ws,
                "fi": result.fi,
                "hs": result.hs,
                "ebs": result.ebs,
                "ipcs": result.ipcs,
                "result": _result_to_dict(result.result),
                "decisions": result.decisions,
            },
        )
        emit_scheme_events(result)
        return result

    def schemes(
        self,
        apps: list[AppProfile],
        schemes: "list[str] | tuple[str, ...]",
        core_split: tuple[int, ...] | None = None,
    ) -> dict[str, SchemeResult]:
        """Evaluate several schemes on one workload, in parallel.

        The shared prerequisites (alone profiles; the surface, if any
        scheme searches one) are computed first — themselves in parallel
        across their runs — so the scheme-level workers all hit cache
        for them.  Each uncached scheme then runs as one pool job that
        writes its result into the (concurrent-safe) store.
        """
        schemes = list(schemes)
        keys = {s: self._scheme_key(apps, s, core_split) for s in schemes}
        results: dict[str, SchemeResult] = {}
        missing: list[str] = []
        for s in schemes:
            cached = self._load_scheme(keys[s])
            if cached is not None:
                results[s] = cached
            else:
                missing.append(s)
        if missing:
            self.alone_for(apps)
            if any(
                s.startswith(("bf-", "opt-", "pbs-offline-")) for s in missing
            ):
                self.surface(apps, core_split)
            tasks = [
                _SchemeTask(
                    ctx=self._worker_clone(),
                    apps=tuple(apps),
                    scheme=s,
                    core_split=core_split,
                )
                for s in missing
            ]
            with get_tracer().span(
                "evaluate_schemes",
                workload="_".join(a.abbr for a in apps),
                schemes=list(missing),
            ):
                computed = run_jobs(
                    _run_scheme_task, tasks,
                    n_jobs=self.n_jobs, progress=self.progress,
                )
            results.update(zip(missing, computed))
        # Emit telemetry in the parent process: pool workers and cache
        # loads both bypass the ambient tracer, but the window/decision
        # logs ride on every SchemeResult, so replaying them here yields
        # the same trace regardless of where the evaluation ran.
        for s in schemes:
            emit_scheme_events(results[s])
        return {s: results[s] for s in schemes}

    # --- convenience ------------------------------------------------------------

    def pair_apps(self, abbr_a: str, abbr_b: str) -> list[AppProfile]:
        return [app_by_abbr(abbr_a), app_by_abbr(abbr_b)]


@dataclass(frozen=True)
class _SchemeTask:
    """One scheme evaluation as a picklable pool job."""

    ctx: ExperimentContext
    apps: tuple[AppProfile, ...]
    scheme: str
    core_split: tuple[int, ...] | None

    @property
    def tag(self) -> tuple:
        return ("scheme", "_".join(a.abbr for a in self.apps), self.scheme)

    def __repr__(self) -> str:
        workload = "_".join(a.abbr for a in self.apps)
        return f"_SchemeTask({self.scheme!r} on {workload})"


def _run_scheme_task(task: _SchemeTask) -> SchemeResult:
    """Pool worker: evaluate (and cache) one scheme in a subprocess."""
    return task.ctx.scheme(list(task.apps), task.scheme, task.core_split)
