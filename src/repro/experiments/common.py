"""Shared experiment machinery: disk-cached profiling and evaluation.

Every experiment consumes three kinds of simulation products:

* *alone profiles* — per-application bestTLP sweeps (Table IV, SD bases);
* *surfaces* — one short run per TLP combination of a workload
  (64 for pairs), feeding the brute-force/oracle/offline searches and
  the pattern figures;
* *scheme evaluations* — full runs of one scheme on one workload.

All three are pure functions of (config, workload, run lengths, seed),
so :class:`ResultStore` caches them as JSON under ``results/`` keyed by
a fingerprint of those inputs.  Delete the directory to recompute.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.config import GPUConfig
from repro.core.runner import (
    AloneProfile,
    RunLengths,
    SchemeResult,
    evaluate_scheme,
    profile_alone,
    profile_surface,
)
from repro.sim.engine import SimResult
from repro.sim.stats import WindowSample
from repro.workloads.synthetic import AppProfile
from repro.workloads.table4 import app_by_abbr

__all__ = ["ResultStore", "ExperimentContext", "DEFAULT_RESULTS_DIR",
           "SCHEME_VERSIONS"]

DEFAULT_RESULTS_DIR = Path(__file__).resolve().parents[3] / "results"

#: Algorithm-version salts folded into scheme cache keys.  Bump a
#: family's version when its controller/search logic changes so stale
#: cached evaluations are recomputed — without discarding everything
#: else (surfaces, alone profiles, other schemes).
SCHEME_VERSIONS: dict[str, int] = {
    "pbs": 2,  # v2: coordinate-descent refinement pass (stage 4)
    "dyncta": 1,
    "ccws": 1,
    "modbypass": 1,
    "static": 1,  # besttlp / maxtlp / bf-* / opt-*
}


def _scheme_version(scheme: str) -> int:
    for family in ("pbs", "dyncta", "ccws", "modbypass"):
        if scheme.startswith(family):
            return SCHEME_VERSIONS[family]
    return SCHEME_VERSIONS["static"]

_SAMPLE_FIELDS = (
    "app_id", "cycles", "insts", "ipc", "l1_miss_rate", "l2_miss_rate",
    "cmr", "bw", "eb", "avg_mem_latency", "row_hit_rate",
)


def _sample_to_dict(sample: WindowSample) -> dict:
    return {f: getattr(sample, f) for f in _SAMPLE_FIELDS}


def _sample_from_dict(data: dict) -> WindowSample:
    return WindowSample(**{f: data[f] for f in _SAMPLE_FIELDS})


def _result_to_dict(result: SimResult) -> dict:
    return {
        "samples": {str(a): _sample_to_dict(s) for a, s in result.samples.items()},
        "cycles": result.cycles,
        "tlp_timeline": result.tlp_timeline,
        "final_tlp": {str(a): t for a, t in result.final_tlp.items()},
        "dram_utilization": result.dram_utilization,
    }


def _result_from_dict(data: dict) -> SimResult:
    return SimResult(
        samples={int(a): _sample_from_dict(s) for a, s in data["samples"].items()},
        cycles=data["cycles"],
        tlp_timeline=[tuple(t) for t in data["tlp_timeline"]],
        final_tlp={int(a): t for a, t in data["final_tlp"].items()},
        dram_utilization=data["dram_utilization"],
    )


def _fingerprint(*parts: object) -> str:
    blob = json.dumps([repr(p) for p in parts], sort_keys=True).encode()
    return hashlib.md5(blob).hexdigest()[:16]


class ResultStore:
    """JSON-on-disk memoization of simulation products."""

    def __init__(self, root: Path | str = DEFAULT_RESULTS_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, kind: str, key: str) -> Path:
        return self.root / f"{kind}-{key}.json"

    def load(self, kind: str, key: str) -> dict | None:
        path = self._path(kind, key)
        if not path.exists():
            return None
        with path.open() as fh:
            return json.load(fh)

    def save(self, kind: str, key: str, data: dict) -> None:
        path = self._path(kind, key)
        tmp = path.with_suffix(".tmp")
        with tmp.open("w") as fh:
            json.dump(data, fh)
        tmp.replace(path)


@dataclass
class ExperimentContext:
    """Configuration + cache for one experimental campaign.

    All experiment drivers take a context so tests can run them with a
    tiny config and a temporary cache directory.
    """

    config: GPUConfig
    lengths: RunLengths = dataclasses.field(default_factory=RunLengths)
    seed: int = 1
    store: ResultStore = dataclasses.field(default_factory=ResultStore)

    # --- keys ------------------------------------------------------------

    def _profile_key(self, *parts: object) -> str:
        """Key for profiling products: only profile lengths matter."""
        return _fingerprint(
            dataclasses.asdict(self.config),
            (self.lengths.profile_cycles, self.lengths.profile_warmup),
            self.seed,
            *parts,
        )

    def _key(self, *parts: object) -> str:
        return _fingerprint(
            dataclasses.asdict(self.config),
            dataclasses.asdict(self.lengths),
            self.seed,
            *parts,
        )

    # --- alone profiles -----------------------------------------------------

    def alone(self, app: AppProfile, n_cores: int | None = None) -> AloneProfile:
        n_cores = n_cores if n_cores is not None else self.config.n_cores // 2
        # The full profile repr is part of the key, so editing an
        # application's parameters invalidates its cached products.
        key = self._profile_key("alone", repr(app), n_cores)
        cached = self.store.load("alone", key)
        if cached is not None:
            return AloneProfile(
                abbr=cached["abbr"],
                best_tlp=cached["best_tlp"],
                ipc_alone=cached["ipc_alone"],
                eb_alone=cached["eb_alone"],
                sweep={
                    int(lv): _sample_from_dict(s) for lv, s in cached["sweep"].items()
                },
            )
        profile = profile_alone(
            self.config, app, n_cores, lengths=self.lengths, seed=self.seed
        )
        self.store.save(
            "alone",
            key,
            {
                "abbr": profile.abbr,
                "best_tlp": profile.best_tlp,
                "ipc_alone": profile.ipc_alone,
                "eb_alone": profile.eb_alone,
                "sweep": {
                    str(lv): _sample_to_dict(s) for lv, s in profile.sweep.items()
                },
            },
        )
        return profile

    def alone_for(self, apps: list[AppProfile]) -> list[AloneProfile]:
        n_cores = self.config.n_cores // len(apps)
        return [self.alone(a, n_cores) for a in apps]

    # --- surfaces ------------------------------------------------------------

    def surface(
        self, apps: list[AppProfile], core_split: tuple[int, ...] | None = None
    ) -> dict[tuple[int, ...], SimResult]:
        name = "_".join(a.abbr for a in apps)
        key = self._profile_key("surface", tuple(repr(a) for a in apps), core_split)
        cached = self.store.load("surface", key)
        if cached is not None:
            return {
                tuple(json.loads(combo)): _result_from_dict(res)
                for combo, res in cached.items()
            }
        surface = profile_surface(
            self.config,
            apps,
            lengths=self.lengths,
            seed=self.seed,
            core_split=core_split,
        )
        self.store.save(
            "surface",
            key,
            {json.dumps(list(c)): _result_to_dict(r) for c, r in surface.items()},
        )
        return surface

    # --- scheme evaluations ----------------------------------------------------

    def scheme(
        self,
        apps: list[AppProfile],
        scheme: str,
        core_split: tuple[int, ...] | None = None,
    ) -> SchemeResult:
        name = "_".join(a.abbr for a in apps)
        version = _scheme_version(scheme)
        # Version 1 keys keep the historical format so existing cached
        # evaluations of unchanged scheme families remain valid.
        parts = ("scheme", tuple(repr(a) for a in apps), scheme)
        if version != 1:
            parts += (f"v{version}",)
        key = self._key(*parts, core_split)
        cached = self.store.load("scheme", key)
        alone = self.alone_for(apps)
        if cached is not None:
            return SchemeResult(
                scheme=cached["scheme"],
                workload=cached["workload"],
                combo=tuple(cached["combo"]) if cached["combo"] else None,
                sds=cached["sds"],
                ws=cached["ws"],
                fi=cached["fi"],
                hs=cached["hs"],
                ebs=cached["ebs"],
                ipcs=cached["ipcs"],
                result=_result_from_dict(cached["result"]),
            )
        needs_surface = scheme.startswith(("bf-", "opt-", "pbs-offline-"))
        surface = self.surface(apps, core_split) if needs_surface else None
        result = evaluate_scheme(
            self.config,
            apps,
            scheme,
            alone,
            surface=surface,
            lengths=self.lengths,
            seed=self.seed,
            core_split=core_split,
            workload=name,
        )
        self.store.save(
            "scheme",
            key,
            {
                "scheme": result.scheme,
                "workload": result.workload,
                "combo": list(result.combo) if result.combo else None,
                "sds": result.sds,
                "ws": result.ws,
                "fi": result.fi,
                "hs": result.hs,
                "ebs": result.ebs,
                "ipcs": result.ipcs,
                "result": _result_to_dict(result.result),
            },
        )
        return result

    # --- convenience ------------------------------------------------------------

    def pair_apps(self, abbr_a: str, abbr_b: str) -> list[AppProfile]:
        return [app_by_abbr(abbr_a), app_by_abbr(abbr_b)]
