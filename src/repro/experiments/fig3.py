"""Figure 3: effective bandwidth at each level of the memory hierarchy.

EB is defined level by level: the DRAM interface attains BW (point A in
the figure); the L2 amplifies it to BW / L2-miss-rate (point B); the L1
amplifies that to BW / CMR, which is what the cores observe (point C).
This experiment reports all three for an application at its bestTLP and
verifies the invariant A <= B <= C.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext
from repro.experiments.report import render_table

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    abbr: str
    best_tlp: int
    bw_at_dram: float  # A
    eb_at_l2: float  # B = BW / L2 miss rate
    eb_at_core: float  # C = BW / CMR
    l1_miss_rate: float
    l2_miss_rate: float

    def render(self) -> str:
        rows = [
            ("A: DRAM interface (BW)", self.bw_at_dram),
            ("B: observed by L1 (BW / L2MR)", self.eb_at_l2),
            ("C: observed by core (BW / CMR)", self.eb_at_core),
        ]
        table = render_table(
            ("hierarchy level", "effective bandwidth"),
            rows,
            title=f"Figure 3: EB through the hierarchy for {self.abbr} "
            f"@ bestTLP={self.best_tlp}",
        )
        return table + (
            f"\nL1 miss rate = {self.l1_miss_rate:.3f}, "
            f"L2 miss rate = {self.l2_miss_rate:.3f}"
        )


def run_fig3(ctx: ExperimentContext, abbr: str = "BFS") -> Fig3Result:
    from repro.workloads.table4 import app_by_abbr

    profile = ctx.alone(app_by_abbr(abbr))
    s = profile.sweep[profile.best_tlp]
    eb_l2 = s.bw / s.l2_miss_rate if s.l2_miss_rate > 0 else 0.0
    return Fig3Result(
        abbr=abbr,
        best_tlp=profile.best_tlp,
        bw_at_dram=s.bw,
        eb_at_l2=eb_l2,
        eb_at_core=s.eb,
        l1_miss_rate=s.l1_miss_rate,
        l2_miss_rate=s.l2_miss_rate,
    )
