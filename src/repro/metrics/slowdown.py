"""Slowdown-based system metrics (Table III of the paper).

All three system-level metrics are built from per-application slowdowns:

    SD_i = IPC_i(shared) / IPC_i(alone @ bestTLP, same cores)

* Weighted Speedup   WS = sum(SD_i)           -- system throughput
* Fairness Index     FI = min(SD)/max(SD)     -- 1.0 is perfectly fair
* Harmonic Speedup   HS = N / sum(1/SD_i)     -- balanced throughput+fairness

For two applications FI reduces to the paper's
``min(SD1/SD2, SD2/SD1)`` and WS has a maximum of 2 absent constructive
interference.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.units import Fraction, Ipc

__all__ = [
    "slowdown",
    "weighted_speedup",
    "fairness_index",
    "harmonic_speedup",
    "sd_objective",
]


def slowdown(ipc_shared: Ipc, ipc_alone: Ipc) -> Fraction:
    """SD of one application: shared IPC over alone IPC (at bestTLP)."""
    if ipc_alone <= 0:
        raise ValueError("alone IPC must be positive")
    if ipc_shared < 0:
        raise ValueError("shared IPC cannot be negative")
    return ipc_shared / ipc_alone


def weighted_speedup(sds: Sequence[Fraction]) -> Fraction:
    """WS: the sum of per-application slowdowns."""
    _check(sds)
    return float(sum(sds))


def fairness_index(sds: Sequence[Fraction]) -> Fraction:
    """FI: the worst pairwise slowdown imbalance, min(SD)/max(SD)."""
    _check(sds)
    if any(s < 0 for s in sds):
        raise ValueError("slowdowns cannot be negative")
    top = max(sds)
    if top == 0:
        return 1.0  # everyone is equally (infinitely) slowed down
    return min(sds) / top


def harmonic_speedup(sds: Sequence[Fraction]) -> Fraction:
    """HS: harmonic mean of slowdowns (throughput + fairness in one)."""
    _check(sds)
    if any(s <= 0 for s in sds):
        return 0.0
    return len(sds) / sum(1.0 / s for s in sds)


def sd_objective(kind: str, sds: Sequence[Fraction]) -> Fraction:
    """Dispatch on the metric name: ``"ws"``, ``"fi"``, or ``"hs"``."""
    if kind == "ws":
        return weighted_speedup(sds)
    if kind == "fi":
        return fairness_index(sds)
    if kind == "hs":
        return harmonic_speedup(sds)
    raise ValueError(f"unknown SD objective {kind!r}")


def _check(sds: Sequence[Fraction]) -> None:
    if not sds:
        raise ValueError("need at least one slowdown")
