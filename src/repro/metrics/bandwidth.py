"""Effective-bandwidth metrics (the paper's contribution, §III-B and
Table III).

Effective bandwidth gauges the rate of data delivery to the cores: the
attained DRAM bandwidth, amplified by how well the caches filter it.

    CMR = L1 miss rate x L2 miss rate     (combined miss rate)
    EB  = BW / CMR

At CMR = 1 the caches are useless and EB equals the attained DRAM
bandwidth (the BLK case in the paper); a CMR of 0.5 effectively doubles
the bandwidth the cores see.  EB-based analogues of WS / FI / HS replace
SD with EB, and — unlike SD — need no alone-run information, which is
what makes them computable at runtime:

    EB-WS = EB1 + EB2          EB-FI = min(EB1/EB2, EB2/EB1)
    EB-HS = N / sum(1/EB_i)

For fairness and HS the paper optionally *scales* each EB by the
application's alone-EB (measured by sampling with the co-runner dropped
to TLP=1, or supplied as a per-group average), to remove the bias an
alone ratio far from 1 would introduce.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.units import Fraction, FractionOfPeak

__all__ = [
    "EPS",
    "combined_miss_rate",
    "effective_bandwidth",
    "eb_ws",
    "eb_fi",
    "eb_hs",
    "eb_objective",
    "alone_ratio",
]

#: Tolerance under which a bandwidth or combined miss rate is treated
#: as zero in the EB definition (EB = attained BW / CMR).  Both inputs
#: are ratios of event counts over an observation window (bytes over
#: peak, misses over accesses), so legitimate non-zero values are
#: bounded below by 1/window — orders of magnitude above ``EPS``.
#: Anything smaller is float noise from the windowed division, and
#: dividing by it would turn EB into a meaningless huge finite number
#: instead of the defined limit cases (0 for no traffic, inf for a
#: perfectly-filtering cache hierarchy).
EPS = 1e-12


def combined_miss_rate(
    l1_miss_rate: Fraction, l2_miss_rate: Fraction
) -> Fraction:
    """CMR: product of L1 and L2 miss rates."""
    for mr in (l1_miss_rate, l2_miss_rate):
        if not 0.0 <= mr <= 1.0:
            raise ValueError(f"miss rate {mr} outside [0, 1]")
    return l1_miss_rate * l2_miss_rate


def effective_bandwidth(bw: FractionOfPeak, cmr: Fraction) -> FractionOfPeak:
    """EB: attained bandwidth amplified by the caches (BW / CMR)."""
    if bw < 0:
        raise ValueError("bandwidth cannot be negative")
    if not 0.0 <= cmr <= 1.0:
        raise ValueError(f"combined miss rate {cmr} outside [0, 1]")
    if cmr <= EPS:
        # Perfect caching: the cores see the cache bandwidth, not DRAM's.
        # A (near-)zero CMR only occurs with zero DRAM traffic in practice.
        return 0.0 if bw <= EPS else float("inf")
    return bw / cmr


def _scaled(
    ebs: Sequence[FractionOfPeak], scale: Sequence[FractionOfPeak] | None
) -> list[FractionOfPeak]:
    if scale is None:
        return list(ebs)
    if len(scale) != len(ebs):
        raise ValueError("scale length must match EB length")
    if any(s <= 0 for s in scale):
        raise ValueError("scaling factors must be positive")
    return [e / s for e, s in zip(ebs, scale)]


def eb_ws(ebs: Sequence[FractionOfPeak]) -> FractionOfPeak:
    """EB-WS: total effective bandwidth across co-runners."""
    if not ebs:
        raise ValueError("need at least one EB value")
    return float(sum(ebs))


def eb_fi(
    ebs: Sequence[FractionOfPeak], scale: Sequence[FractionOfPeak] | None = None
) -> Fraction:
    """EB-FI: balance of (optionally alone-scaled) effective bandwidths."""
    values = _scaled(ebs, scale)
    if not values:
        raise ValueError("need at least one EB value")
    if any(v < 0 for v in values):
        raise ValueError("EB values cannot be negative")
    top = max(values)
    if top == 0:
        return 1.0
    return min(values) / top


def eb_hs(
    ebs: Sequence[FractionOfPeak], scale: Sequence[FractionOfPeak] | None = None
) -> FractionOfPeak:
    """EB-HS: harmonic mean of (optionally alone-scaled) EBs."""
    values = _scaled(ebs, scale)
    if not values:
        raise ValueError("need at least one EB value")
    if any(v <= 0 for v in values):
        return 0.0
    return len(values) / sum(1.0 / v for v in values)


def eb_objective(
    kind: str,
    ebs: Sequence[FractionOfPeak],
    scale: Sequence[FractionOfPeak] | None = None,
) -> FractionOfPeak:
    """Dispatch on the EB metric name: ``"ws"``, ``"fi"``, or ``"hs"``.

    EB-WS deliberately ignores the scaling factors: the paper found the
    outliers too few to matter for throughput (§IV), and an unscaled sum
    is what the hardware can compute with no alone information at all.
    """
    if kind == "ws":
        return eb_ws(ebs)
    if kind == "fi":
        return eb_fi(ebs, scale)
    if kind == "hs":
        return eb_hs(ebs, scale)
    raise ValueError(f"unknown EB objective {kind!r}")


def alone_ratio(metric_a: float, metric_b: float) -> float:
    """Alone ratio, reported as max(a/b, b/a) as in Figure 5.

    Used for both IPC_AR and EB_AR: the bias either metric would have
    toward one of the co-scheduled applications.
    """
    if metric_a <= 0 or metric_b <= 0:
        raise ValueError("alone metrics must be positive")
    return max(metric_a / metric_b, metric_b / metric_a)
