"""System-throughput, fairness, and effective-bandwidth metrics (Table III)."""

from repro.metrics.bandwidth import (
    EPS,
    alone_ratio,
    combined_miss_rate,
    eb_fi,
    eb_hs,
    eb_objective,
    eb_ws,
    effective_bandwidth,
)
from repro.metrics.slowdown import (
    fairness_index,
    harmonic_speedup,
    sd_objective,
    slowdown,
    weighted_speedup,
)
from repro.metrics.tenancy import (
    time_weighted_fi,
    time_weighted_hs,
    time_weighted_objective,
    time_weighted_ws,
)

__all__ = [
    "EPS",
    "slowdown",
    "weighted_speedup",
    "fairness_index",
    "harmonic_speedup",
    "sd_objective",
    "combined_miss_rate",
    "effective_bandwidth",
    "eb_ws",
    "eb_fi",
    "eb_hs",
    "eb_objective",
    "alone_ratio",
    "time_weighted_objective",
    "time_weighted_ws",
    "time_weighted_fi",
    "time_weighted_hs",
]
