"""System metrics over a churning roster: time-weighted WS / FI / HS.

The paper's WS, FI and HS (Table III) assume a fixed roster for the
whole measured region.  In an open-system run the roster changes, so a
single slowdown vector does not exist — but between any two roster
changes (an *epoch*) it does.  The natural extension evaluates the
closed-form metric inside each epoch and averages across epochs
weighted by their duration:

    M_tw = sum_e (T_e * M(SD_e)) / sum_e T_e

For a static roster there is one epoch, the weight cancels, and every
time-weighted metric reduces *exactly* to its closed form — a property
the test suite pins down.

This module is pure arithmetic over ``(duration, slowdowns)`` pairs;
assembling epochs from a simulation's window log and roster timeline is
the experiment layer's job (:mod:`repro.experiments.open_system`).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.metrics.slowdown import sd_objective
from repro.units import Fraction

__all__ = [
    "time_weighted_objective",
    "time_weighted_ws",
    "time_weighted_fi",
    "time_weighted_hs",
]

#: one epoch: (duration in cycles, per-app slowdowns of the apps live then)
Epoch = tuple[float, Sequence[Fraction]]


def time_weighted_objective(kind: str, epochs: Sequence[Epoch]) -> Fraction:
    """Duration-weighted mean of ``sd_objective(kind, ...)`` over epochs.

    Each epoch spans a constant roster; its slowdown vector may have a
    different length than its neighbours'.  A single epoch returns the
    closed-form metric exactly (no float round-trip through the
    weighting).
    """
    if not epochs:
        raise ValueError("need at least one epoch")
    for duration, _sds in epochs:
        if duration <= 0:
            raise ValueError("epoch durations must be positive")
    if len(epochs) == 1:
        _duration, sds = epochs[0]
        return sd_objective(kind, list(sds))
    total = float(sum(duration for duration, _ in epochs))
    return (
        sum(duration * sd_objective(kind, list(sds)) for duration, sds in epochs)
        / total
    )


def time_weighted_ws(epochs: Sequence[Epoch]) -> Fraction:
    """Time-weighted Weighted Speedup over a churning roster."""
    return time_weighted_objective("ws", epochs)


def time_weighted_fi(epochs: Sequence[Epoch]) -> Fraction:
    """Time-weighted Fairness Index over a churning roster."""
    return time_weighted_objective("fi", epochs)


def time_weighted_hs(epochs: Sequence[Epoch]) -> Fraction:
    """Time-weighted Harmonic Speedup over a churning roster."""
    return time_weighted_objective("hs", epochs)
