"""The process-pool job runner.

Every experiment in this reproduction is dominated by embarrassingly
parallel simulation sweeps: a two-application surface is 64 independent
runs, an alone profile is 8, and a scheme comparison is one run per
(workload, scheme).  :func:`run_jobs` maps a picklable worker function
over a list of picklable job specs with a ``ProcessPoolExecutor``,
preserving the order of the input list in the returned results so
parallel sweeps are bit-identical to serial ones.

Worker-count resolution (:func:`resolve_jobs`):

1. an explicit ``n_jobs`` argument (CLI ``--jobs``);
2. the ``REPRO_JOBS`` environment variable;
3. ``os.cpu_count()``.

``n_jobs=1`` (or a single job) falls back to a plain in-process loop —
no pool, no pickling — so unit tests and cache hits pay no overhead.
A failing job aborts the batch and is re-raised as :class:`JobError`
carrying the failing spec, the original exception as its cause, the
job's duration up to the failure, and the worker-side traceback text
(which cannot cross the process boundary as an object) in ``args``.
``KeyboardInterrupt`` is never wrapped: it cancels the outstanding
futures and propagates as itself.

Telemetry: when the ambient tracer (:func:`repro.obs.get_tracer`) is
enabled, every job is timed *inside* the worker process and recorded as
a ``cat="job"`` span carrying the worker's pid and its queue wait (time
between submission and the worker actually starting, i.e. time spent
waiting for a pool slot).  Progress callbacks may opt into per-job
timing by accepting a fourth argument: ``progress(done, total, spec,
elapsed_s)``; three-argument callbacks keep working unchanged, and
:class:`ProgressThrottle` wraps either kind to cap the redraw rate.

Live telemetry: when the ambient publisher (:func:`repro.obs.live.
get_publisher`) is enabled, each pool worker is initialized with its
own :class:`~repro.obs.live.QueuePublisher` onto the parent's queue and
every job streams lifecycle records, per-window counters, optional
cProfile hot frames, and a metrics-registry snapshot back to the
collector as it completes — see :mod:`repro.obs.live`.  With the
default :class:`~repro.obs.live.NullPublisher` the entire machinery is
one attribute read.
"""

from __future__ import annotations

import cProfile
import inspect
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from functools import partial
from typing import Callable, Iterable, TypeVar

from repro.obs.live import (
    QueuePublisher,
    get_publisher,
    profile_frames,
    result_records,
    set_publisher,
)
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

__all__ = [
    "JOBS_ENV_VAR",
    "JobError",
    "ProgressFn",
    "ProgressThrottle",
    "resolve_jobs",
    "run_jobs",
]

#: Environment variable consulted when no explicit ``n_jobs`` is given.
JOBS_ENV_VAR = "REPRO_JOBS"

S = TypeVar("S")
R = TypeVar("R")

#: ``progress(done, total, spec)`` is invoked after each job completes,
#: in completion order; ``done`` counts completed jobs so a CLI can
#: render "12/64".  A callback that accepts a fourth positional
#: argument additionally receives the job's elapsed seconds.
ProgressFn = Callable[..., None]


class JobError(RuntimeError):
    """A job of a parallel batch failed.

    The failing spec is embedded in the message (and kept on ``.spec``)
    so a 64-combination sweep failure names the combination that died;
    the worker's original exception is chained as ``__cause__`` and the
    job's duration up to the failure is kept on ``.duration`` (seconds;
    ``None`` when unknown).  The worker-side traceback text is preserved
    as ``args[1]`` (and ``.remote_traceback``): for pool jobs the
    original's traceback objects do not cross the process boundary, so
    without this the failing *worker* frame would be unrecoverable from
    the parent.
    """

    def __init__(
        self,
        spec: object,
        cause: BaseException,
        duration: float | None = None,
    ) -> None:
        remote = _traceback_text(cause)
        after = f" after {duration:.3f}s" if duration is not None else ""
        super().__init__(
            f"simulation job failed{after}: {spec!r} "
            f"({type(cause).__name__}: {cause})",
            remote,
        )
        self.spec = spec
        self.duration = duration
        self.remote_traceback = remote


def _traceback_text(cause: BaseException) -> str:
    """The worker-side traceback of ``cause``, as text.

    ``concurrent.futures`` re-raises remote failures with the original
    traceback rendered into a ``_RemoteTraceback`` chained as the
    cause's ``__cause__``; ``format_exception`` follows that chain, so
    one call covers both in-process and cross-process failures.
    """
    return "".join(
        traceback.format_exception(type(cause), cause, cause.__traceback__)
    ).rstrip()


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Resolve the worker count: explicit > ``$REPRO_JOBS`` > cpu count."""
    if n_jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            try:
                n_jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR}={env!r} is not an integer"
                ) from None
        else:
            n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    return n_jobs


def _accepts_elapsed(progress: ProgressFn) -> bool:
    """Does the callback take a fourth (elapsed-seconds) argument?

    Extending the hook is opt-in by arity so every existing
    three-argument callback keeps working; inspection failures (builtins,
    exotic callables) conservatively fall back to the legacy signature.
    """
    try:
        sig = inspect.signature(progress)
    except (TypeError, ValueError):
        return False
    positional = 0
    for param in sig.parameters.values():
        if param.kind == inspect.Parameter.VAR_POSITIONAL:
            return True
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
    return positional >= 4


def _job_name(spec: object) -> str:
    """A short display name for a job's trace span."""
    tag = getattr(spec, "tag", None)
    if isinstance(tag, tuple) and tag:
        return "job:" + "/".join(str(part) for part in tag)
    return f"job:{type(spec).__name__}"


def _timed_call(worker: Callable[[S], R], spec: S) -> tuple[R, float, int]:
    """Pool worker wrapper: run the job and report its own wall time.

    Returns ``(result, elapsed_seconds, worker_pid)`` so the parent can
    separate compute time from queue wait and attribute the job to a
    worker track in the trace.  Module-level so it pickles.
    """
    t0 = time.perf_counter()
    value = worker(spec)
    return value, time.perf_counter() - t0, os.getpid()


class ProgressThrottle:
    """Rate-limits a progress callback to one delivery per interval.

    A 64-job sweep on a fast cache emits hundreds of completions per
    second; redrawing a TTY line for each is wasted stderr traffic.
    The throttle forwards at most one call per ``min_interval_s`` —
    plus, always, the final ``done == total`` call so the finished line
    lands — and keeps the 3-arg/4-arg hook contract: it accepts the
    elapsed argument itself and forwards it only when the wrapped
    callback does.
    """

    def __init__(
        self,
        progress: ProgressFn,
        min_interval_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.progress = progress
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._last: float | None = None
        self._with_elapsed = _accepts_elapsed(progress)
        self.delivered = 0
        self.dropped = 0

    def __call__(
        self, done: int, total: int, spec: object, elapsed: float = 0.0
    ) -> None:
        mark = self._clock()
        if done < total and (
            self._last is not None
            and mark - self._last < self.min_interval_s
        ):
            self.dropped += 1
            return
        self._last = mark
        self.delivered += 1
        if self._with_elapsed:
            self.progress(done, total, spec, elapsed)
        else:
            self.progress(done, total, spec)


def _init_live_worker(channel: object, config: dict) -> None:
    """Pool-worker initializer for live-telemetry runs.

    Installs a worker-side :class:`~repro.obs.live.QueuePublisher` onto
    the parent's queue (the one sanctioned worker-side ambient install —
    each child owns its process-local slot) and resets the worker's
    metrics registry: a forked child inherits the parent's counters, and
    since workers publish snapshot-then-reset *deltas*, starting from
    the parent's totals would double-count them on merge.
    """
    set_publisher(QueuePublisher(channel, worker=True, **config))
    get_metrics().reset()
    if config.get("profile"):
        from repro.sim.engine import set_engine_profiling

        set_engine_profiling(True)


def _live_timed_call(worker: Callable[[S], R], spec: S) -> tuple[R, float, int]:
    """Like :func:`_timed_call`, but streaming telemetry as it goes.

    Publishes the job lifecycle (start/done/fail), stride-capped window
    records from the job's result, cProfile hot frames when profiling,
    and — in pool workers — the metrics-registry delta accumulated by
    the job, then a throttled heartbeat.  Module-level so it pickles.
    """
    publisher = get_publisher()
    pid = os.getpid()
    name = _job_name(spec)
    publisher.publish({"type": "job_start", "job": name, "pid": pid})
    prof = cProfile.Profile() if publisher.profile else None
    t0 = time.perf_counter()
    try:
        if prof is not None:
            value = prof.runcall(worker, spec)
        else:
            value = worker(spec)
    except Exception as exc:
        publisher.publish(
            {
                "type": "job_fail",
                "job": name,
                "pid": pid,
                "error": f"{type(exc).__name__}: {exc}",
            }
        )
        raise
    elapsed = time.perf_counter() - t0
    publisher.publish(
        {
            "type": "job_done",
            "job": name,
            "pid": pid,
            "elapsed_s": round(elapsed, 6),
        }
    )
    # SchemeResults are streamed by the parent's emit_scheme_events —
    # the single seam that also covers cached and in-process scheme
    # evaluations — so workers publish window records only for bare
    # SimResults (alone/surface jobs).
    if not hasattr(getattr(value, "result", None), "windows"):
        for record in result_records(
            value, getattr(spec, "tag", None), window_cap=publisher.window_cap
        ):
            publisher.publish(record)
    if prof is not None:
        publisher.publish(
            {
                "type": "profile",
                "job": name,
                "pid": pid,
                "frames": profile_frames(prof, top=publisher.profile_top),
            }
        )
    if publisher.worker:
        # Ship this job's metrics delta; the parent merges it into the
        # ambient registry.  The parent/serial path skips this — its
        # registry *is* the ambient one, nothing to ship.
        registry = get_metrics()
        snapshot = registry.snapshot(timelines=True)
        registry.reset()
        if (
            snapshot["counters"]
            or snapshot["gauges"]
            or snapshot["timers"]
            or snapshot.get("timeline_points")
        ):
            publisher.publish(
                {
                    "type": "metrics",
                    "label": f"pid{pid}",
                    "snapshot": snapshot,
                }
            )
    publisher.heartbeat()
    return value, elapsed, pid


def _notify(
    progress: ProgressFn | None,
    with_elapsed: bool,
    done: int,
    total: int,
    spec: object,
    elapsed: float,
) -> None:
    if progress is None:
        return
    if with_elapsed:
        progress(done, total, spec, elapsed)
    else:
        progress(done, total, spec)


def run_jobs(
    worker: Callable[[S], R],
    specs: Iterable[S],
    n_jobs: int | None = None,
    progress: ProgressFn | None = None,
) -> list[R]:
    """Map ``worker`` over ``specs``, returning results in spec order.

    ``worker`` and every spec must be picklable (a module-level function
    and frozen dataclasses / plain tuples).  Results come back in the
    order of ``specs`` regardless of completion order, so callers can
    ``zip`` them against the spec list.
    """
    specs = list(specs)
    total = len(specs)
    if total == 0:
        return []
    n_jobs = resolve_jobs(n_jobs)
    tracer = get_tracer()
    publisher = get_publisher()
    live = publisher.enabled
    with_elapsed = progress is not None and _accepts_elapsed(progress)

    # The batch record seeds the dashboard's total/ETA.  Only the
    # parent-side publisher announces it: a worker's own nested
    # run_jobs (rare — cache hits short-circuit) would otherwise
    # inflate the sweep total.
    if live and not publisher.worker:
        publisher.publish({"type": "batch", "total": total})

    if n_jobs == 1 or total == 1:
        results: list[R] = []
        for done, spec in enumerate(specs, start=1):
            t0 = time.perf_counter()
            try:
                if live:
                    value, elapsed, _pid = _live_timed_call(worker, spec)
                else:
                    value = worker(spec)
                    elapsed = time.perf_counter() - t0
                results.append(value)
            except Exception as exc:
                raise JobError(
                    spec, exc, duration=time.perf_counter() - t0
                ) from exc
            if tracer.enabled:
                dur_us = elapsed * 1e6
                tracer.complete(
                    _job_name(spec),
                    ts=tracer.now_us() - dur_us,
                    dur=dur_us,
                    cat="job",
                    worker="main",
                    queue_wait_s=0.0,
                )
            _notify(progress, with_elapsed, done, total, spec, elapsed)
        return results

    # Worker-side timing is only worth the extra pickling when someone
    # consumes it: an enabled tracer, an elapsed-aware callback, or the
    # live stream (whose wrapper returns the same timed tuple).
    timed = tracer.enabled or with_elapsed or live
    if live:
        call = partial(_live_timed_call, worker)
    elif timed:
        call = partial(_timed_call, worker)
    else:
        call = worker
    pool_kwargs: dict = {}
    if live:
        # fork-inherited queue: the initializer installs a worker-side
        # publisher bound to the parent collector's channel
        pool_kwargs = {
            "initializer": _init_live_worker,
            "initargs": (publisher.channel, publisher.worker_config()),
        }

    slots: list[R | None] = [None] * total
    with ProcessPoolExecutor(
        max_workers=min(n_jobs, total), **pool_kwargs
    ) as pool:
        submitted = time.perf_counter()
        futures = {pool.submit(call, spec): i for i, spec in enumerate(specs)}
        done = 0
        try:
            for future in as_completed(futures):
                i = futures[future]
                try:
                    value = future.result()
                except Exception as exc:
                    raise JobError(
                        specs[i], exc,
                        duration=time.perf_counter() - submitted,
                    ) from exc
                if timed:
                    value, elapsed, worker_pid = value  # type: ignore[misc]
                    if tracer.enabled:
                        wait = max(
                            0.0,
                            time.perf_counter() - submitted - elapsed,
                        )
                        dur_us = elapsed * 1e6
                        tracer.complete(
                            _job_name(specs[i]),
                            ts=tracer.now_us() - dur_us,
                            dur=dur_us,
                            cat="job",
                            worker=worker_pid,
                            queue_wait_s=round(wait, 6),
                        )
                else:
                    elapsed = time.perf_counter() - submitted
                slots[i] = value  # type: ignore[assignment]
                done += 1
                _notify(progress, with_elapsed, done, total, specs[i], elapsed)
        except (Exception, KeyboardInterrupt):
            # Abort the rest of the batch promptly on first failure or
            # Ctrl-C.  Deliberately narrower than BaseException: a
            # SystemExit/GeneratorExit unwinds through the context
            # manager's own cleanup instead of an eager cancel, and
            # KeyboardInterrupt is never wrapped in JobError — it
            # propagates as itself so callers can tell "user stopped
            # the sweep" from "a job died".
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    return slots  # type: ignore[return-value]
