"""The process-pool job runner.

Every experiment in this reproduction is dominated by embarrassingly
parallel simulation sweeps: a two-application surface is 64 independent
runs, an alone profile is 8, and a scheme comparison is one run per
(workload, scheme).  :func:`run_jobs` maps a picklable worker function
over a list of picklable job specs with a ``ProcessPoolExecutor``,
preserving the order of the input list in the returned results so
parallel sweeps are bit-identical to serial ones.

Worker-count resolution (:func:`resolve_jobs`):

1. an explicit ``n_jobs`` argument (CLI ``--jobs``);
2. the ``REPRO_JOBS`` environment variable;
3. ``os.cpu_count()``.

``n_jobs=1`` (or a single job) falls back to a plain in-process loop —
no pool, no pickling — so unit tests and cache hits pay no overhead.
A failing job aborts the batch and is re-raised as :class:`JobError`
carrying the failing spec, with the original exception as its cause.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, TypeVar

__all__ = ["JOBS_ENV_VAR", "JobError", "ProgressFn", "resolve_jobs", "run_jobs"]

#: Environment variable consulted when no explicit ``n_jobs`` is given.
JOBS_ENV_VAR = "REPRO_JOBS"

S = TypeVar("S")
R = TypeVar("R")

#: ``progress(done, total, spec)`` is invoked after each job completes,
#: in completion order; ``done`` counts completed jobs so a CLI can
#: render "12/64".
ProgressFn = Callable[[int, int, object], None]


class JobError(RuntimeError):
    """A job of a parallel batch failed.

    The failing spec is embedded in the message (and kept on ``.spec``)
    so a 64-combination sweep failure names the combination that died;
    the worker's original exception is chained as ``__cause__``.
    """

    def __init__(self, spec: object, cause: BaseException) -> None:
        super().__init__(
            f"simulation job failed: {spec!r} "
            f"({type(cause).__name__}: {cause})"
        )
        self.spec = spec


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Resolve the worker count: explicit > ``$REPRO_JOBS`` > cpu count."""
    if n_jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            try:
                n_jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR}={env!r} is not an integer"
                ) from None
        else:
            n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    return n_jobs


def run_jobs(
    worker: Callable[[S], R],
    specs: Iterable[S],
    n_jobs: int | None = None,
    progress: ProgressFn | None = None,
) -> list[R]:
    """Map ``worker`` over ``specs``, returning results in spec order.

    ``worker`` and every spec must be picklable (a module-level function
    and frozen dataclasses / plain tuples).  Results come back in the
    order of ``specs`` regardless of completion order, so callers can
    ``zip`` them against the spec list.
    """
    specs = list(specs)
    total = len(specs)
    if total == 0:
        return []
    n_jobs = resolve_jobs(n_jobs)

    if n_jobs == 1 or total == 1:
        results: list[R] = []
        for done, spec in enumerate(specs, start=1):
            try:
                results.append(worker(spec))
            except Exception as exc:
                raise JobError(spec, exc) from exc
            if progress is not None:
                progress(done, total, spec)
        return results

    slots: list[R | None] = [None] * total
    with ProcessPoolExecutor(max_workers=min(n_jobs, total)) as pool:
        futures = {pool.submit(worker, spec): i for i, spec in enumerate(specs)}
        done = 0
        try:
            for future in as_completed(futures):
                i = futures[future]
                try:
                    slots[i] = future.result()
                except Exception as exc:
                    raise JobError(specs[i], exc) from exc
                done += 1
                if progress is not None:
                    progress(done, total, specs[i])
        except BaseException:
            # Abort the rest of the batch promptly on first failure.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    return slots  # type: ignore[return-value]
