"""The process-pool job runner.

Every experiment in this reproduction is dominated by embarrassingly
parallel simulation sweeps: a two-application surface is 64 independent
runs, an alone profile is 8, and a scheme comparison is one run per
(workload, scheme).  :func:`run_jobs` maps a picklable worker function
over a list of picklable job specs with a ``ProcessPoolExecutor``,
preserving the order of the input list in the returned results so
parallel sweeps are bit-identical to serial ones.

Worker-count resolution (:func:`resolve_jobs`):

1. an explicit ``n_jobs`` argument (CLI ``--jobs``);
2. the ``REPRO_JOBS`` environment variable;
3. ``os.cpu_count()``.

``n_jobs=1`` (or a single job) falls back to a plain in-process loop —
no pool, no pickling — so unit tests and cache hits pay no overhead.
A failing job aborts the batch and is re-raised as :class:`JobError`
carrying the failing spec, the original exception as its cause, and
the worker-side traceback text (which cannot cross the process
boundary as an object) in ``args``.  ``KeyboardInterrupt`` is never
wrapped: it cancels the outstanding futures and propagates as itself.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterable, TypeVar

__all__ = ["JOBS_ENV_VAR", "JobError", "ProgressFn", "resolve_jobs", "run_jobs"]

#: Environment variable consulted when no explicit ``n_jobs`` is given.
JOBS_ENV_VAR = "REPRO_JOBS"

S = TypeVar("S")
R = TypeVar("R")

#: ``progress(done, total, spec)`` is invoked after each job completes,
#: in completion order; ``done`` counts completed jobs so a CLI can
#: render "12/64".
ProgressFn = Callable[[int, int, object], None]


class JobError(RuntimeError):
    """A job of a parallel batch failed.

    The failing spec is embedded in the message (and kept on ``.spec``)
    so a 64-combination sweep failure names the combination that died;
    the worker's original exception is chained as ``__cause__``.  The
    worker-side traceback text is preserved as ``args[1]`` (and
    ``.remote_traceback``): for pool jobs the original's traceback
    objects do not cross the process boundary, so without this the
    failing *worker* frame would be unrecoverable from the parent.
    """

    def __init__(self, spec: object, cause: BaseException) -> None:
        remote = _traceback_text(cause)
        super().__init__(
            f"simulation job failed: {spec!r} "
            f"({type(cause).__name__}: {cause})",
            remote,
        )
        self.spec = spec
        self.remote_traceback = remote


def _traceback_text(cause: BaseException) -> str:
    """The worker-side traceback of ``cause``, as text.

    ``concurrent.futures`` re-raises remote failures with the original
    traceback rendered into a ``_RemoteTraceback`` chained as the
    cause's ``__cause__``; ``format_exception`` follows that chain, so
    one call covers both in-process and cross-process failures.
    """
    return "".join(
        traceback.format_exception(type(cause), cause, cause.__traceback__)
    ).rstrip()


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Resolve the worker count: explicit > ``$REPRO_JOBS`` > cpu count."""
    if n_jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            try:
                n_jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR}={env!r} is not an integer"
                ) from None
        else:
            n_jobs = os.cpu_count() or 1
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    return n_jobs


def run_jobs(
    worker: Callable[[S], R],
    specs: Iterable[S],
    n_jobs: int | None = None,
    progress: ProgressFn | None = None,
) -> list[R]:
    """Map ``worker`` over ``specs``, returning results in spec order.

    ``worker`` and every spec must be picklable (a module-level function
    and frozen dataclasses / plain tuples).  Results come back in the
    order of ``specs`` regardless of completion order, so callers can
    ``zip`` them against the spec list.
    """
    specs = list(specs)
    total = len(specs)
    if total == 0:
        return []
    n_jobs = resolve_jobs(n_jobs)

    if n_jobs == 1 or total == 1:
        results: list[R] = []
        for done, spec in enumerate(specs, start=1):
            try:
                results.append(worker(spec))
            except Exception as exc:
                raise JobError(spec, exc) from exc
            if progress is not None:
                progress(done, total, spec)
        return results

    slots: list[R | None] = [None] * total
    with ProcessPoolExecutor(max_workers=min(n_jobs, total)) as pool:
        futures = {pool.submit(worker, spec): i for i, spec in enumerate(specs)}
        done = 0
        try:
            for future in as_completed(futures):
                i = futures[future]
                try:
                    slots[i] = future.result()
                except Exception as exc:
                    raise JobError(specs[i], exc) from exc
                done += 1
                if progress is not None:
                    progress(done, total, specs[i])
        except (Exception, KeyboardInterrupt):
            # Abort the rest of the batch promptly on first failure or
            # Ctrl-C.  Deliberately narrower than BaseException: a
            # SystemExit/GeneratorExit unwinds through the context
            # manager's own cleanup instead of an eager cancel, and
            # KeyboardInterrupt is never wrapped in JobError — it
            # propagates as itself so callers can tell "user stopped
            # the sweep" from "a job died".
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    return slots  # type: ignore[return-value]
