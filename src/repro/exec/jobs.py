"""Picklable simulation job specifications and their worker.

A :class:`SimJob` captures everything one simulation run needs —
configuration, applications, the TLP combination, run lengths, seed and
core split — as a frozen, picklable value.  :func:`run_sim_job` is the
module-level worker handed to :func:`repro.exec.pool.run_jobs`: it
builds a fresh :class:`~repro.sim.engine.Simulator` in the worker
process and returns the :class:`~repro.sim.engine.SimResult`.

Only *uncontrolled* (fixed-TLP) runs are expressed as ``SimJob``s:
profiling sweeps are thousands of short fixed-combination runs, which is
where parallelism pays.  Controller-driven scheme evaluations go through
:meth:`repro.experiments.common.ExperimentContext.schemes`, which
parallelizes at the scheme level instead.

:class:`OpenSimJob` is the open-system counterpart: an initial roster,
a tuple of :class:`~repro.sim.tenancy.TenancyEvent` arrivals and
departures, and a *policy name* resolved through the
:mod:`repro.core.policy` registry inside the worker — naming rather
than carrying the controller keeps the spec picklable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import GPUConfig
from repro.sim.engine import SimResult, Simulator
from repro.sim.tenancy import TenancyEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.synthetic import AppProfile

__all__ = ["SimJob", "run_sim_job", "OpenSimJob", "run_open_sim_job"]


@dataclass(frozen=True)
class SimJob:
    """One fixed-TLP simulation run, fully specified and picklable."""

    config: GPUConfig
    apps: "tuple[AppProfile, ...]"
    combo: tuple[int, ...]
    cycles: int
    warmup: int
    seed: int | None = None
    core_split: tuple[int, ...] | None = None
    #: opaque label echoed by progress callbacks and job errors, e.g.
    #: ``("surface", "BLK_TRD", (8, 4))``
    tag: tuple | None = None

    def __repr__(self) -> str:  # keep JobError messages readable
        label = self.tag if self.tag is not None else self.combo
        apps = "+".join(a.abbr for a in self.apps)
        return (
            f"SimJob({label!r}, apps={apps}, combo={self.combo}, "
            f"cycles={self.cycles}, warmup={self.warmup}, seed={self.seed})"
        )


def run_sim_job(job: SimJob) -> SimResult:
    """Execute one :class:`SimJob` (the process-pool worker function)."""
    sim = Simulator(
        job.config,
        list(job.apps),
        core_split=job.core_split,
        seed=job.seed,
    )
    initial = {a: job.combo[a] for a in range(len(job.apps))}
    return sim.run(job.cycles, warmup=job.warmup, initial_tlp=initial)


@dataclass(frozen=True)
class OpenSimJob:
    """One open-system run under a named policy, picklable for workers.

    The controller is *named*, not carried: workers rebuild it from the
    :mod:`repro.core.policy` registry, so the spec pickles cleanly and a
    serial run and a pooled run of the same job are identical.  Keyword
    arguments travel as a sorted item tuple (dicts are unhashable and
    would break the frozen dataclass).
    """

    config: GPUConfig
    initial: "tuple[AppProfile, ...]"
    events: tuple[TenancyEvent, ...]
    policy: str
    cycles: int
    warmup: int
    policy_kwargs: tuple[tuple[str, object], ...] = ()
    seed: int | None = None
    tag: tuple | None = None

    def __repr__(self) -> str:  # keep JobError messages readable
        label = self.tag if self.tag is not None else self.policy
        apps = "+".join(a.abbr for a in self.initial)
        return (
            f"OpenSimJob({label!r}, initial={apps}, policy={self.policy}, "
            f"events={len(self.events)}, cycles={self.cycles}, "
            f"warmup={self.warmup}, seed={self.seed})"
        )


def run_open_sim_job(job: OpenSimJob) -> SimResult:
    """Execute one :class:`OpenSimJob` (the process-pool worker function)."""
    # Lazy: repro.core imports this module through repro.core.runner, so
    # a module-level import of the policy registry would be a cycle.
    from repro.core.policy import make_policy

    controller = make_policy(
        job.policy, n_apps=len(job.initial), **dict(job.policy_kwargs)
    )
    sim = Simulator(
        job.config,
        list(job.initial),
        controller=controller,
        seed=job.seed,
        arrivals=job.events,
    )
    return sim.run(job.cycles, warmup=job.warmup)
