"""repro.exec — parallel execution of simulation sweeps.

The profiling workload of this reproduction (TLP surfaces, alone sweeps,
batch scheme comparisons) is embarrassingly parallel; this subsystem
fans it out over a process pool while keeping results deterministic and
ordered.  See :mod:`repro.exec.pool` for the runner and
:mod:`repro.exec.jobs` for the picklable job specs.
"""

from repro.exec.jobs import OpenSimJob, SimJob, run_open_sim_job, run_sim_job
from repro.exec.pool import (
    JOBS_ENV_VAR,
    JobError,
    ProgressFn,
    ProgressThrottle,
    resolve_jobs,
    run_jobs,
)

__all__ = [
    "JOBS_ENV_VAR",
    "JobError",
    "ProgressFn",
    "ProgressThrottle",
    "OpenSimJob",
    "SimJob",
    "resolve_jobs",
    "run_jobs",
    "run_open_sim_job",
    "run_sim_job",
]
