"""The paper's analytical model, checked against simulation.

§III-B derives two relationships that justify optimizing EB-based
metrics:

* **Equation 1** — within an application, performance is proportional
  to effective bandwidth: ``IPC ∝ EB / r_m``.  Since r_m is fixed per
  application, IPC should be a *linear* function of EB across TLP
  levels and co-runner interference alike.

* **Equation 5** — system throughput decomposes over EBs scaled by the
  alone values: ``WS ≈ EB1/EB1_alone + EB2/EB2_alone`` (the unscaled
  sum EB-WS inherits a bias of at most the EB alone-ratio, which
  Figure 5 shows is small).

:func:`validate_eq1` fits the linear model per application over a
profiled TLP surface and reports R²; :func:`validate_eq5` compares the
EB-predicted WS against the measured WS across all combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runner import AloneProfile
    from repro.sim.engine import SimResult

__all__ = [
    "LinearFit",
    "fit_ipc_vs_eb",
    "predict_ws_from_eb",
    "validate_eq1",
    "validate_eq5",
]


@dataclass(frozen=True)
class LinearFit:
    """A least-squares line y = slope * x + intercept with its R²."""

    slope: float
    intercept: float
    r2: float
    n: int

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def _fit(x: np.ndarray, y: np.ndarray) -> LinearFit:
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need at least two paired observations")
    design = np.column_stack([x, np.ones_like(x)])
    (slope, intercept), *_ = np.linalg.lstsq(design, y, rcond=None)
    predicted = design @ np.array([slope, intercept])
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r2=r2, n=len(x))


def fit_ipc_vs_eb(points: list[tuple[float, float]]) -> LinearFit:
    """Fit IPC = k * EB + c over (eb, ipc) observations (Equation 1)."""
    arr = np.asarray(points, dtype=float)
    return _fit(arr[:, 0], arr[:, 1])


def validate_eq1(
    surface: "dict[tuple[int, ...], SimResult]", app_id: int
) -> LinearFit:
    """Equation 1 on a co-run surface: one application's IPC vs its EB
    across all 64 TLP combinations (co-runner interference included)."""
    points = [
        (result.samples[app_id].eb, result.samples[app_id].ipc)
        for result in surface.values()
    ]
    return fit_ipc_vs_eb(points)


def predict_ws_from_eb(
    result: "SimResult", alone: "list[AloneProfile]"
) -> float:
    """Equation 5's prediction: WS ≈ sum of alone-scaled EBs."""
    return sum(
        result.samples[a].eb / max(alone[a].eb_alone, 1e-12)
        for a in range(len(alone))
    )


def validate_eq5(
    surface: "dict[tuple[int, ...], SimResult]", alone: "list[AloneProfile]"
) -> LinearFit:
    """Regress measured WS on the EB-predicted WS across the surface."""
    xs, ys = [], []
    for result in surface.values():
        xs.append(predict_ws_from_eb(result, alone))
        ys.append(
            sum(
                result.samples[a].ipc / alone[a].ipc_alone
                for a in range(len(alone))
            )
        )
    return _fit(np.asarray(xs), np.asarray(ys))
