"""Analytical-model validation (§III-B of the paper)."""

from repro.analysis.model import (
    LinearFit,
    fit_ipc_vs_eb,
    predict_ws_from_eb,
    validate_eq1,
    validate_eq5,
)

__all__ = [
    "LinearFit",
    "fit_ipc_vs_eb",
    "predict_ws_from_eb",
    "validate_eq1",
    "validate_eq5",
]
