"""TLP management for multi-programmed GPUs — the paper's contribution.

This package contains:

* :mod:`repro.core.tlp` — the TLP level lattice and combination helpers;
* :mod:`repro.core.controller` — the runtime-controller interface the
  simulator invokes every sampling window (the PBS hardware unit of
  Figure 8);
* :mod:`repro.core.pbs` — Pattern-Based Searching (PBS-WS / PBS-FI /
  PBS-HS), both the pure search algorithm and the online controller;
* :mod:`repro.core.offline` — PBS-Offline, the brute-force EB searches
  (BF-*), and the SD-metric oracles (optWS / optFI / optHS);
* :mod:`repro.core.policy` — the pluggable policy registry mapping
  names (``pbs-ws``, ``dyncta``, …) to picklable controller factories,
  with ``repro.policies`` entry-point discovery for third parties;
* :mod:`repro.core.dyncta` — the DynCTA latency-driven baseline;
* :mod:`repro.core.modbypass` — the Mod+Bypass baseline (TLP modulation
  plus cache bypassing);
* :mod:`repro.core.runner` — high-level entry points: alone profiling,
  scheme dispatch, and workload evaluation.
"""

from repro.core.controller import StaticController, TLPController
from repro.core.ccws import CCWSController
from repro.core.dyncta import DynCTAController
from repro.core.modbypass import ModBypassController
from repro.core.offline import brute_force_search, oracle_search, pbs_offline_search
from repro.core.pbs import PBSController, pbs_search
from repro.core.policy import (
    available_policies,
    get_policy,
    make_policy,
    register_policy,
)
from repro.core.splitsearch import joint_split_search, live_pbs_search
from repro.core.runner import (
    AloneProfile,
    SchemeResult,
    evaluate_scheme,
    profile_alone,
    run_combo,
)
from repro.core.tlp import all_combos, clamp_level, level_down, level_up

__all__ = [
    "TLPController",
    "StaticController",
    "PBSController",
    "pbs_search",
    "DynCTAController",
    "CCWSController",
    "ModBypassController",
    "brute_force_search",
    "oracle_search",
    "pbs_offline_search",
    "joint_split_search",
    "live_pbs_search",
    "AloneProfile",
    "SchemeResult",
    "profile_alone",
    "evaluate_scheme",
    "run_combo",
    "all_combos",
    "clamp_level",
    "level_up",
    "level_down",
    "register_policy",
    "get_policy",
    "make_policy",
    "available_policies",
]
