"""Offline TLP-combination searches: BF-*, opt*, and PBS-Offline (§VI).

All three operate on a *profiled surface*: one short steady-state
simulation per TLP combination (64 for two applications), mapping each
combination to the per-application samples observed under it.

* ``brute_force_search`` (BF-WS / BF-FI / BF-HS) exhaustively picks the
  combination maximizing an **EB-based** metric — the upper bound on
  what optimizing EB proxies can deliver.
* ``oracle_search`` (optWS / optFI / optHS) exhaustively picks the
  combination maximizing the **SD-based** metric itself, using
  alone-run IPCs — the true oracle the paper normalizes against.
* ``pbs_offline_search`` runs the PBS algorithm over the surface —
  the same search logic as the online controller, but with noise-free
  steady-state samples and zero runtime overhead (the paper's
  "PBS (Offline)" comparison point that decouples the search quality
  from runtime effects).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.pbs import PROBE_LEVELS, SearchLog, pbs_search
from repro.metrics.bandwidth import eb_objective
from repro.metrics.slowdown import sd_objective
from repro.sim.engine import SimResult

__all__ = [
    "brute_force_search",
    "oracle_search",
    "pbs_offline_search",
    "sampled_scale",
]

Surface = Mapping[tuple[int, ...], SimResult]


def _ebs(result: SimResult, n_apps: int) -> list[float]:
    return [result.samples[a].eb for a in range(n_apps)]


def sampled_scale(
    surface: Surface, n_apps: int, ref_level: int = 8, min_level: int = 1
) -> list[float]:
    """Estimate alone-EB scaling factors from the surface.

    Mirrors the paper's runtime approximation: measure each application
    at a reference TLP while every co-runner runs at the least TLP, so
    they "induce the least amount of interference possible" (§IV).
    """
    scale: list[float] = []
    for app in range(n_apps):
        combo = tuple(ref_level if a == app else min_level for a in range(n_apps))
        if combo not in surface:
            raise KeyError(f"surface is missing the scale-probe combination {combo}")
        scale.append(max(surface[combo].samples[app].eb, 1e-6))
    return scale


def brute_force_search(
    surface: Surface,
    metric: str,
    n_apps: int,
    scale: Sequence[float] | None = None,
) -> tuple[int, ...]:
    """BF-*: the combination with the best EB-based metric on the surface."""
    if not surface:
        raise ValueError("empty surface")
    return max(
        surface,
        key=lambda combo: eb_objective(metric, _ebs(surface[combo], n_apps), scale),
    )


def oracle_search(
    surface: Surface, metric: str, alone_ipcs: Sequence[float]
) -> tuple[int, ...]:
    """opt*: the combination with the best SD-based metric on the surface."""
    if not surface:
        raise ValueError("empty surface")
    if any(ipc <= 0 for ipc in alone_ipcs):
        raise ValueError("alone IPCs must be positive")

    def sd_obj(combo: tuple[int, ...]) -> float:
        result = surface[combo]
        sds = [
            result.samples[a].ipc / alone_ipcs[a] for a in range(len(alone_ipcs))
        ]
        return sd_objective(metric, sds)

    return max(surface, key=sd_obj)


def pbs_offline_search(
    surface: Surface,
    metric: str,
    n_apps: int,
    scale: Sequence[float] | None = None,
    probe_levels: Sequence[int] = PROBE_LEVELS,
) -> tuple[tuple[int, ...], SearchLog]:
    """PBS (Offline): drive the PBS generator with surface samples."""
    log = SearchLog()
    search = pbs_search(
        metric, n_apps, scale=scale, probe_levels=probe_levels, log=log
    )
    try:
        combo = next(search)
        while True:
            if combo not in surface:
                raise KeyError(f"surface is missing combination {combo}")
            ebs = {a: surface[combo].samples[a].eb for a in range(n_apps)}
            combo = search.send(ebs)
    except StopIteration as stop:
        return stop.value, log
