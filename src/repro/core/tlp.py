"""The TLP level lattice (Table II) and combination helpers.

TLP is controlled at warp granularity per application: a level is the
number of warps each of the core's two schedulers may keep active.  The
paper evaluates 8 levels per application — so a two-application workload
has 64 combinations, which is what the brute-force and oracle searches
enumerate.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

from repro.config import TLP_LEVELS

__all__ = ["all_combos", "clamp_level", "level_up", "level_down", "level_index"]


def level_index(level: int, levels: Sequence[int] = TLP_LEVELS) -> int:
    """Index of ``level`` in the lattice; raises if not a valid level."""
    try:
        return levels.index(level)  # type: ignore[arg-type]
    except ValueError:
        raise ValueError(f"TLP {level} is not one of the levels {tuple(levels)}") from None


def clamp_level(tlp: int, levels: Sequence[int] = TLP_LEVELS) -> int:
    """Snap an arbitrary warp count to the nearest lattice level."""
    if tlp <= levels[0]:
        return levels[0]
    return min(levels, key=lambda lv: (abs(lv - tlp), lv))


def level_up(level: int, levels: Sequence[int] = TLP_LEVELS) -> int:
    """The next-higher lattice level (saturating at the top)."""
    i = level_index(level, levels)
    return levels[min(i + 1, len(levels) - 1)]


def level_down(level: int, levels: Sequence[int] = TLP_LEVELS) -> int:
    """The next-lower lattice level (saturating at the bottom)."""
    i = level_index(level, levels)
    return levels[max(i - 1, 0)]


def all_combos(
    n_apps: int, levels: Sequence[int] = TLP_LEVELS
) -> Iterator[tuple[int, ...]]:
    """Every TLP combination for ``n_apps`` applications.

    For two applications and the default lattice this enumerates the 64
    combinations of the paper's exhaustive searches.
    """
    if n_apps < 1:
        raise ValueError("need at least one application")
    return itertools.product(levels, repeat=n_apps)
