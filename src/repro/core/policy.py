"""Pluggable scheduler-policy registry.

The simulator only requires the :class:`~repro.core.controller.
TLPController` hook protocol (``start`` / ``on_window`` /
``on_attach`` / ``on_detach``); this module makes implementations of it
*nameable*, so experiment configs, the CLI, and pool-worker job specs
can refer to a policy by a short string instead of carrying a live
controller object (which would not survive pickling into a worker).

Two sources feed the registry:

* the built-in policies below (PBS variants, DynCTA, CCWS, Mod+Bypass,
  static), registered at import time;
* third-party plugins published under the ``repro.policies`` entry-point
  group, discovered lazily the first time a lookup misses so importing
  this module stays cheap and discovery failures never break built-ins.

Factories must be module-level callables (picklable — devtools rule
R005 checks registrations) taking ``n_apps`` plus policy-specific
keyword arguments and returning a fresh controller.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.controller import TLPController

__all__ = [
    "register_policy",
    "get_policy",
    "make_policy",
    "available_policies",
]

PolicyFactory = Callable[..., "TLPController"]

_REGISTRY: dict[str, PolicyFactory] = {}
_entry_points_loaded = False


def register_policy(name: str, factory: PolicyFactory) -> PolicyFactory:
    """Register ``factory`` under ``name``; returns the factory.

    The factory must be a module-level callable so job specs naming the
    policy stay picklable for pool workers; lambdas and nested functions
    are rejected by devtools rule R005.
    """
    if not callable(factory):
        raise TypeError(f"policy factory for {name!r} is not callable")
    if name in _REGISTRY and _REGISTRY[name] is not factory:
        raise ValueError(f"policy {name!r} is already registered")
    # Per-process state by design: each pool worker rebuilds its own
    # registry from module imports and entry points, so nothing written
    # here ever needs to cross back over the process boundary.
    _REGISTRY[name] = factory  # repro: noqa[R010]
    return factory


def _load_entry_points() -> None:
    """Discover third-party policies (``repro.policies`` group), once."""
    global _entry_points_loaded
    if _entry_points_loaded:
        return
    # Once-per-process flag (see register_policy: the registry is
    # rebuilt independently in every worker, never written back).
    _entry_points_loaded = True  # repro: noqa[R010]
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - ancient interpreter
        return
    try:
        eps = entry_points(group="repro.policies")
    except TypeError:  # pragma: no cover - Python < 3.10 dict API
        eps = entry_points().get("repro.policies", [])
    for ep in eps:
        try:
            factory = ep.load()
        except Exception:  # pragma: no cover - broken plugin must not
            continue  # take down the built-ins
        if ep.name not in _REGISTRY:
            register_policy(ep.name, factory)


def get_policy(name: str) -> PolicyFactory:
    """Look up a registered policy factory by name."""
    if name not in _REGISTRY:
        _load_entry_points()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown policy {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[name]


def make_policy(name: str, **kwargs: object) -> "TLPController":
    """Instantiate a fresh controller for the named policy."""
    return get_policy(name)(**kwargs)


def available_policies() -> tuple[str, ...]:
    """All registered policy names, sorted (triggers plugin discovery)."""
    _load_entry_points()
    return tuple(sorted(_REGISTRY))


# --- built-in policies -----------------------------------------------------
#
# Module-level functions (not lambdas) so OpenSimJob specs naming them
# pickle cleanly into pool workers.


def make_pbs_ws(n_apps: int = 2, **kwargs: object) -> "TLPController":
    from repro.core.pbs import PBSController

    return PBSController("ws", n_apps=n_apps, **kwargs)


def make_pbs_fi(n_apps: int = 2, **kwargs: object) -> "TLPController":
    from repro.core.pbs import PBSController

    kwargs.setdefault("scale", "sampled")
    return PBSController("fi", n_apps=n_apps, **kwargs)


def make_pbs_hs(n_apps: int = 2, **kwargs: object) -> "TLPController":
    from repro.core.pbs import PBSController

    kwargs.setdefault("scale", "sampled")
    return PBSController("hs", n_apps=n_apps, **kwargs)


def make_dyncta(n_apps: int = 2, **kwargs: object) -> "TLPController":
    from repro.core.dyncta import DynCTAController

    return DynCTAController(n_apps, **kwargs)


def make_ccws(n_apps: int = 2, **kwargs: object) -> "TLPController":
    from repro.core.ccws import CCWSController

    return CCWSController(n_apps, **kwargs)


def make_modbypass(n_apps: int = 2, **kwargs: object) -> "TLPController":
    from repro.core.modbypass import ModBypassController

    return ModBypassController(n_apps, **kwargs)


def make_static(
    n_apps: int = 2, combo: dict[int, int] | None = None, **kwargs: object
) -> "TLPController":
    from repro.config import TLP_LEVELS
    from repro.core.controller import StaticController

    if combo is None:
        combo = {a: TLP_LEVELS[-1] for a in range(n_apps)}
    return StaticController(dict(combo), **kwargs)


register_policy("pbs-ws", make_pbs_ws)
register_policy("pbs-fi", make_pbs_fi)
register_policy("pbs-hs", make_pbs_hs)
register_policy("dyncta", make_dyncta)
register_policy("ccws", make_ccws)
register_policy("modbypass", make_modbypass)
register_policy("static", make_static)
