"""Runtime TLP-controller interface and shared machinery.

The hardware proposal (Figure 8) samples per-application L1/L2 miss
rates and attained bandwidth every monitoring window, relays them to the
cores, and lets a small unit in the warp-issue arbiter retarget each
application's warp limit.  In the simulator, a controller object plays
that unit's role: :class:`repro.sim.engine.Simulator` calls
``on_window`` every ``sample_period`` cycles with the per-application
:class:`~repro.sim.stats.WindowSample` deltas.

Actuation latency: the paper conservatively charges 100 cycles for the
memory partitions to relay counter values to the cores.  Controllers
here apply TLP changes through :meth:`BaseController.actuate`, which
delays the change by that amount.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.sim.stats import WindowSample
from repro.units import Cycles, WholeCycles

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = [
    "TLPController",
    "BaseController",
    "StaticController",
    "COUNTER_RELAY_CYCLES",
    "DEFAULT_SAMPLE_PERIOD",
]

#: Latency for relaying sampled counters from the designated memory
#: partition to the cores (paper §V-E: "a latency of 100 cycles").
COUNTER_RELAY_CYCLES: WholeCycles = 100

#: Default monitoring-window length per sampled TLP combination.  The
#: paper empirically found that trends do not change significantly
#: beyond a window of a few thousand cycles.
DEFAULT_SAMPLE_PERIOD: WholeCycles = 3000


class TLPController(Protocol):
    """What the simulator requires of a runtime TLP controller.

    This is the stable policy-hook API: ``start`` once at cycle 0,
    ``on_window`` every sampling window, and — in open-system runs —
    ``on_attach``/``on_detach`` whenever the tenancy manager changes the
    roster.  Policies actuate through :meth:`BaseController.actuate`
    (delayed TLP changes) or the simulator's bypass setters.  Register
    implementations with :func:`repro.core.policy.register_policy` to
    make them selectable by name.
    """

    sample_period: Cycles

    def start(self, sim: "Simulator", now: Cycles) -> None:
        """Called once when simulation begins (set initial TLP here)."""
        ...

    def on_window(
        self, sim: "Simulator", now: Cycles, windows: dict[int, WindowSample]
    ) -> None:
        """Called at the end of each sampling window."""
        ...

    def on_attach(self, sim: "Simulator", now: Cycles, app_id: int) -> None:
        """Called after an application attached (roster already updated)."""
        ...

    def on_detach(self, sim: "Simulator", now: Cycles, app_id: int) -> None:
        """Called after an application detached (roster already updated)."""
        ...


class BaseController:
    """Common helpers: delayed actuation and window bookkeeping."""

    def __init__(self, sample_period: Cycles = DEFAULT_SAMPLE_PERIOD) -> None:
        if sample_period <= 0:
            raise ValueError("sample_period must be positive")
        self.sample_period: Cycles = sample_period
        #: structured decision records, cycle-stamped and JSON-native so
        #: they survive the result cache and the trace round-trip intact
        self.decision_log: list[dict] = []

    def note_decision(self, kind: str, now: Cycles, **detail: object) -> None:
        """Append one structured record to the controller's decision log.

        ``detail`` values must be JSON-native (lists, not tuples) so
        cached and freshly computed :class:`SchemeResult` objects
        compare equal after a round-trip through the result store.
        """
        self.decision_log.append({"kind": kind, "cycle": now, **detail})

    def actuate(self, sim: "Simulator", app_id: int, tlp: int) -> None:
        """Apply a TLP change after the counter-relay latency."""
        sim.events.push(
            sim.events.now + COUNTER_RELAY_CYCLES,
            lambda _t, a=app_id, v=tlp: sim.set_tlp(a, v),
        )

    def start(self, sim: "Simulator", now: Cycles) -> None:  # pragma: no cover
        """Default: leave the initial TLP as the run configured it."""

    def on_window(
        self, sim: "Simulator", now: Cycles, windows: dict[int, WindowSample]
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_attach(self, sim: "Simulator", now: Cycles, app_id: int) -> None:
        """Default: ignore arrivals (the engine started them at maxTLP)."""

    def on_detach(self, sim: "Simulator", now: Cycles, app_id: int) -> None:
        """Default: ignore departures (the engine retired their state)."""


class StaticController(BaseController):
    """A controller that sets a fixed combination and never changes it.

    Useful for measuring window logs of static schemes through the same
    code path as the dynamic ones.
    """

    def __init__(
        self, combo: dict[int, int], sample_period: Cycles = DEFAULT_SAMPLE_PERIOD
    ) -> None:
        super().__init__(sample_period)
        self.combo = dict(combo)

    def start(self, sim: "Simulator", now: Cycles) -> None:
        for app_id, tlp in self.combo.items():
            sim.set_tlp(app_id, tlp)

    def on_window(
        self, sim: "Simulator", now: Cycles, windows: dict[int, WindowSample]
    ) -> None:
        pass
