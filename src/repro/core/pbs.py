"""Pattern-Based Searching (PBS) — §V of the paper.

The goal is to find the TLP combination optimizing an EB-based metric
(EB-WS, EB-FI or EB-HS) with a handful of runtime samples instead of an
exhaustive sweep of all 64 combinations.  The search exploits two
guidelines and one empirical observation:

* **Guideline 1** — combinations that under-utilize shared resources are
  never optimal, so probing keeps the co-runners at maxTLP.
* **Guideline 2** — an application's EB drops sharply once the growth in
  its attained bandwidth can no longer compensate for the growth in its
  miss rate (its *inflection point*).
* **Patterns** — the inflection point of an application sits at the same
  TLP level regardless of the co-runner's TLP, so it can be located once
  and trusted afterwards.

The search therefore has three stages (§V-B..D):

1. *Probe*: sweep each application's TLP through the probe levels while
   the other runs at maxTLP, recording the EB metric.
2. *Criticality*: the application whose sweep moves the metric the most
   is critical; its TLP is pinned at its inflection point (WS/HS) or at
   the most balanced level (FI).
3. *Tune*: walk the non-critical application's TLP upward until the
   metric stops improving; keep the best level seen.
4. *Refine* (one pass): re-sweep each application over the full lattice
   holding the others at their chosen levels, keeping the best sample.
   This coordinate-descent pass costs a handful of extra samples (most
   are already memoized) and recovers the cases where the co-runner's
   final level shifts an inflection point slightly — the possibility
   the paper notes in §V-B but never observed on its machine.

:func:`pbs_search` is the pure algorithm, written as a generator so the
same logic drives both the online hardware controller
(:class:`PBSController`, which samples by actually running each
combination for one monitoring window) and the offline variant
(:func:`repro.core.offline.pbs_offline_search`, which samples from
pre-profiled steady-state runs).
"""

from __future__ import annotations

from collections.abc import Generator, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import TLP_LEVELS
from repro.core.controller import BaseController, DEFAULT_SAMPLE_PERIOD
from repro.metrics.bandwidth import eb_objective
from repro.sim.stats import WindowSample
from repro.units import Cycles, FractionOfPeak

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["pbs_search", "PBSController", "SearchLog", "PROBE_LEVELS"]

#: TLP levels probed during the criticality sweep (paper: "1, 2, 4, 8,
#: etc." — a geometric walk up the lattice).
PROBE_LEVELS: tuple[int, ...] = (1, 2, 4, 8, 16, 24)

#: Consecutive non-improving tune steps tolerated before stopping (the
#: paper stops when the metric "no more increases"; one extra step of
#: patience absorbs sampling noise).
TUNE_PATIENCE = 2


@dataclass
class SearchLog:
    """Trace of one PBS search, for analysis and the pattern figures."""

    samples: list[tuple[tuple[int, ...], dict[int, FractionOfPeak]]] = field(
        default_factory=list
    )
    critical_app: int | None = None
    fixed_level: int | None = None
    final_combo: tuple[int, ...] | None = None
    #: structured decision records in search order (kinds: ``sample``,
    #: ``criticality``, ``final``), JSON-native so they round-trip
    #: through the result cache and the trace unchanged.  The online
    #: controller stamps each record with the cycle it was taken at.
    decisions: list[dict] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return len(self.samples)


Sampler = Generator[tuple[int, ...], dict[int, FractionOfPeak], tuple[int, ...]]


def pbs_search(
    metric: str,
    n_apps: int,
    scale: Sequence[FractionOfPeak] | None = None,
    levels: Sequence[int] = TLP_LEVELS,
    probe_levels: Sequence[int] = PROBE_LEVELS,
    log: SearchLog | None = None,
) -> Sampler:
    """The PBS algorithm as a sampling generator.

    Yields TLP combinations to sample; the driver ``send``s back the
    per-application EB dict observed under that combination.  The
    generator's return value (``StopIteration.value``) is the chosen
    combination.  Repeated combinations are served from a memo, so the
    number of *distinct* samples is what the hardware would take.
    """
    if metric not in ("ws", "fi", "hs"):
        raise ValueError(f"unknown PBS metric {metric!r}")
    if n_apps < 2:
        raise ValueError("PBS manages multi-application workloads (n_apps >= 2)")
    log = log if log is not None else SearchLog()
    memo: dict[tuple[int, ...], dict[int, FractionOfPeak]] = {}
    max_level = levels[-1]

    def objective(ebs: dict[int, FractionOfPeak]) -> FractionOfPeak:
        return eb_objective(metric, [ebs[a] for a in range(n_apps)], scale)

    def sample(
        combo: tuple[int, ...],
    ) -> Generator[
        tuple[int, ...], dict[int, FractionOfPeak], dict[int, FractionOfPeak]
    ]:
        if combo in memo:
            return memo[combo]
        ebs = yield combo
        memo[combo] = ebs
        log.samples.append((combo, ebs))
        log.decisions.append(
            {
                "kind": "sample",
                "combo": list(combo),
                "objective": objective(ebs),
                "ebs": [ebs[a] for a in range(n_apps)],
            }
        )
        return ebs

    # --- stage 1: probe each application with co-runners at maxTLP -----
    sweeps: dict[int, list[FractionOfPeak]] = {}
    for app in range(n_apps):
        series: list[FractionOfPeak] = []
        for level in probe_levels:
            combo = tuple(level if a == app else max_level for a in range(n_apps))
            ebs = yield from sample(combo)
            series.append(objective(ebs))
        sweeps[app] = series

    # --- stage 2: criticality and the inflection point -------------------
    def criticality(series: list[FractionOfPeak]) -> FractionOfPeak:
        if metric == "fi":
            return max(series) - min(series)  # how much this app moves balance
        drops = [series[k] - series[k + 1] for k in range(len(series) - 1)]
        return max(drops) if drops else 0.0

    def fix_level_of(series: list[FractionOfPeak]) -> int:
        if metric == "fi":
            return probe_levels[max(range(len(series)), key=series.__getitem__)]
        drops = [series[k] - series[k + 1] for k in range(len(series) - 1)]
        if drops and max(drops) > 0:
            # the level just before the sharpest drop (Guideline 2)
            return probe_levels[max(range(len(drops)), key=drops.__getitem__)]
        return probe_levels[max(range(len(series)), key=series.__getitem__)]

    order = sorted(range(n_apps), key=lambda a: criticality(sweeps[a]), reverse=True)
    critical = order[0]
    chosen: dict[int, int] = {critical: fix_level_of(sweeps[critical])}
    log.critical_app = critical
    log.fixed_level = chosen[critical]
    log.decisions.append(
        {"kind": "criticality", "app": critical, "level": chosen[critical]}
    )

    # --- stage 3: tune the non-critical applications upward ----------------
    for app in order[1:]:
        best_level, best_obj = None, float("-inf")
        worse_streak = 0
        for level in levels:
            combo = tuple(
                chosen.get(a, level if a == app else max_level)
                for a in range(n_apps)
            )
            ebs = yield from sample(combo)
            obj = objective(ebs)
            if obj > best_obj:
                best_level, best_obj = level, obj
                worse_streak = 0
            else:
                worse_streak += 1
                if worse_streak >= TUNE_PATIENCE:
                    break
        assert best_level is not None
        chosen[app] = best_level

    # --- stage 4: one coordinate-descent refinement pass --------------------
    for app in order:
        current = tuple(chosen[a] for a in range(n_apps))
        ebs = yield from sample(current)
        # Ties keep the level the pattern stages chose.
        best_level, best_obj = chosen[app], objective(ebs)
        for level in levels:
            if level == chosen[app]:
                continue
            combo = tuple(
                level if a == app else chosen[a] for a in range(n_apps)
            )
            ebs = yield from sample(combo)
            obj = objective(ebs)
            if obj > best_obj:
                best_level, best_obj = level, obj
        chosen[app] = best_level

    final = tuple(chosen[a] for a in range(n_apps))
    ebs = yield from sample(final)
    # The sampling table (Figure 8) retains every combination visited;
    # keep the tuned combination unless an earlier sample strictly beat it.
    final_obj = objective(ebs)
    best = max(memo, key=lambda c: objective(memo[c]))
    if objective(memo[best]) > final_obj:
        final = best
    log.final_combo = final
    log.decisions.append(
        {"kind": "final", "combo": list(final), "n_samples": log.n_samples}
    )
    return final


class PBSController(BaseController):
    """The online PBS hardware unit (Figure 8).

    Every monitoring window it reads the sampled per-application EB
    values, feeds them to the search, and actuates the next combination
    to try; once the search completes it pins the chosen combination.
    All search windows execute at whatever combination is being sampled,
    so the runtime overhead of searching is paid inside the simulation,
    exactly as on hardware.

    Scaling factors for EB-FI / EB-HS (§IV) come in three flavours:

    * ``scale=None`` — raw EB values (always used for EB-WS);
    * ``scale="sampled"`` — before searching, estimate each
      application's alone-EB by running it at a reference TLP while
      every co-runner is dropped to TLP 1 for one window;
    * ``scale=<sequence>`` — user-supplied factors (the paper's
      per-group averages from Table IV).

    If the settled metric later degrades persistently — a change in
    interference the chosen combination no longer suits — the search is
    restarted (the paper restarts PBS on kernel re-launch; a steady-state
    simulation's analogue is drift detection).
    """

    #: reference TLP for alone-EB sampling when ``scale="sampled"``
    SCALE_REFERENCE_TLP = 8
    #: settled-metric degradation that triggers a re-search (the window
    #: objective oscillates, so the threshold is deliberately deep and
    #: the patience long)
    DRIFT_RATIO = 0.5
    #: consecutive degraded windows required before re-searching
    DRIFT_PATIENCE = 4
    #: windows discarded after each actuation so in-flight transients
    #: (drained warps, queue backlogs) do not pollute the sample
    SETTLE_WINDOWS = 1
    #: windows averaged per sampled combination: per-window EB readings
    #: fluctuate with burst interleaving, so each combination is scored
    #: on a short average rather than a single window
    MEASURE_WINDOWS = 2
    #: drift-triggered re-searches allowed per run (the paper restarts
    #: PBS on kernel re-launch; unbounded restarts would let sampling
    #: noise keep the controller searching forever)
    MAX_RESEARCHES = 2

    def __init__(
        self,
        metric: str,
        n_apps: int = 2,
        scale: str | Sequence[FractionOfPeak] | None = None,
        sample_period: Cycles = DEFAULT_SAMPLE_PERIOD,
        levels: Sequence[int] = TLP_LEVELS,
        probe_levels: Sequence[int] = PROBE_LEVELS,
        warmup_windows: int = 10,
    ) -> None:
        super().__init__(sample_period)
        if metric not in ("ws", "fi", "hs"):
            raise ValueError(f"unknown PBS metric {metric!r}")
        self.metric = metric
        self.n_apps = n_apps
        self.warmup_windows = warmup_windows
        self.levels = tuple(levels)
        self.probe_levels = tuple(probe_levels)
        self.scale_mode = scale
        self.log = SearchLog()
        self.search_count = 0
        #: live app ids in ascending order; position *i* of a search
        #: combination maps to ``self._live[i]``.  Closed-system runs
        #: keep this at ``range(n_apps)`` forever, so the mapping is the
        #: identity there.
        self._live: list[int] = list(range(n_apps))
        #: settled combination per roster, so a roster that recurs
        #: (an app departs and the survivors were seen before) resumes
        #: its known-good combination instead of paying a full search
        self._roster_settled: dict[tuple[int, ...], tuple[int, ...]] = {}
        self._scale: list[FractionOfPeak] | None = (
            list(scale) if isinstance(scale, (list, tuple)) else None
        )
        self._scale_pending: list[int] = []
        self._stamped = 0  # log.decisions already copied to decision_log
        self._search: Sampler | None = None
        self._settled = False
        self._settled_obj: FractionOfPeak | None = None
        self._drift = 0
        self._skip = 0
        self._acc: list[dict[int, FractionOfPeak]] = []

    # --- lifecycle -----------------------------------------------------

    def start(self, sim: "Simulator", now: Cycles) -> None:
        live = getattr(sim, "live_apps", None)
        if live is not None:
            self._live = list(live)
            self.n_apps = len(self._live)
        if self.n_apps < 2:
            # An open-system run may begin with a lone application;
            # searching starts when a co-runner arrives.
            self._pin_lone(sim, now)
        elif self.scale_mode == "sampled" and self.metric in ("fi", "hs"):
            self._begin_scale_probes(sim)
        else:
            self._begin_search(sim, now)
        # Let caches warm before the first sample is trusted: cold-start
        # windows would mislead the criticality sweep.
        self._skip += self.warmup_windows

    def _begin_scale_probes(self, sim: "Simulator") -> None:
        self._scale = [0.0] * self.n_apps
        self._scale_pending = list(range(self.n_apps))
        self._apply_scale_probe(sim, self._scale_pending[0])

    def _apply_scale_probe(self, sim: "Simulator", pos: int) -> None:
        """Run position ``pos`` at the reference TLP, co-runners at 1."""
        for i, a in enumerate(self._live):
            sim.set_tlp(a, self.SCALE_REFERENCE_TLP if i == pos else 1)
        self._skip = self.SETTLE_WINDOWS
        self._acc = []

    def _pin_lone(self, sim: "Simulator", now: Cycles) -> None:
        """Roster has a single application: give it maxTLP, no search."""
        self._search = None
        self._settled = True
        self._settled_obj = None
        lone = self._live[0]
        self.note_decision("pin", now, app=lone, tlp=self.levels[-1])
        self.actuate(sim, lone, self.levels[-1])
        self._skip = self.SETTLE_WINDOWS
        self._acc = []

    def _sync_search_log(self, now: Cycles) -> None:
        """Copy fresh search records to the decision log, cycle-stamped.

        ``pbs_search`` is a pure generator with no notion of time; the
        controller knows which window each record was produced in, so it
        stamps the cycle on its way into the run-level decision log.
        """
        for record in self.log.decisions[self._stamped:]:
            self.decision_log.append({**record, "cycle": now})
        self._stamped = len(self.log.decisions)

    def _begin_search(self, sim: "Simulator", now: Cycles) -> None:
        self.search_count += 1
        self.log = SearchLog()
        self._stamped = 0
        self._search = pbs_search(
            self.metric,
            self.n_apps,
            scale=self._scale,
            levels=self.levels,
            probe_levels=self.probe_levels,
            log=self.log,
        )
        self._settled = False
        self._settled_obj = None
        self._drift = 0
        first_combo = next(self._search)
        self._actuate_combo(sim, first_combo)

    def _actuate_combo(self, sim: "Simulator", combo: tuple[int, ...]) -> None:
        for pos, tlp in enumerate(combo):
            self.actuate(sim, self._live[pos], tlp)
        self._skip = self.SETTLE_WINDOWS
        self._acc = []

    # --- tenancy hooks ---------------------------------------------------

    def on_attach(self, sim: "Simulator", now: Cycles, app_id: int) -> None:
        if app_id not in self._live:
            self._live.append(app_id)
            self._live.sort()
        self.note_decision("attach", now, app=app_id)
        self._roster_changed(sim, now, "attach")

    def on_detach(self, sim: "Simulator", now: Cycles, app_id: int) -> None:
        if app_id in self._live:
            self._live.remove(app_id)
        self.note_decision("detach", now, app=app_id)
        self._roster_changed(sim, now, "detach")

    def _roster_changed(self, sim: "Simulator", now: Cycles, reason: str) -> None:
        """Re-enter the search (or resume settled state) for a new roster.

        Any in-progress search or scale probing is abandoned — its
        combinations indexed the old roster.  Sampled scale factors are
        roster-shaped, so they are discarded and re-probed.  A roster
        seen (and settled) before resumes its remembered combination
        without searching again.
        """
        self.n_apps = len(self._live)
        self._scale_pending = []
        self._acc = []
        self._drift = 0
        self._settled_obj = None
        if self.scale_mode == "sampled":
            self._scale = None
        if self.n_apps < 2:
            self._pin_lone(sim, now)
            return
        key = tuple(self._live)
        known = self._roster_settled.get(key)
        if known is not None:
            self.note_decision(
                "resettle", now, roster=list(key), combo=list(known)
            )
            self._search = None
            self._settled = True
            self._actuate_combo(sim, known)
            return
        self.note_decision(
            "research", now, search=self.search_count + 1, reason=reason
        )
        if self.scale_mode == "sampled" and self.metric in ("fi", "hs"):
            self._search = None
            self._settled = False
            self._begin_scale_probes(sim)
        else:
            self._begin_search(sim, now)

    # --- per-window ------------------------------------------------------

    def _collect(
        self, windows: dict[int, WindowSample]
    ) -> dict[int, FractionOfPeak] | None:
        """Accumulate measure windows; return their mean when complete."""
        self._acc.append({i: windows[a].eb for i, a in enumerate(self._live)})
        if len(self._acc) < self.MEASURE_WINDOWS:
            return None
        mean = {
            a: sum(w[a] for w in self._acc) / len(self._acc)
            for a in range(self.n_apps)
        }
        self._acc = []
        return mean

    def on_window(
        self, sim: "Simulator", now: Cycles, windows: dict[int, WindowSample]
    ) -> None:
        if self._skip > 0:
            self._skip -= 1
            return

        searching = self._scale_pending or (
            self._search is not None and not self._settled
        )
        if searching:
            ebs = self._collect(windows)
            if ebs is None:
                return
        else:
            ebs = {i: windows[a].eb for i, a in enumerate(self._live)}

        if self._scale_pending:
            app = self._scale_pending.pop(0)
            assert self._scale is not None
            # Guard against a degenerate zero sample (e.g. an app that
            # produced no DRAM traffic in the window).
            self._scale[app] = max(ebs[app], 1e-6)
            self.note_decision("scale", now, app=app, eb=self._scale[app])
            if self._scale_pending:
                self._apply_scale_probe(sim, self._scale_pending[0])
            else:
                self._begin_search(sim, now)
            return

        if self._search is not None and not self._settled:
            try:
                combo = self._search.send(ebs)
            except StopIteration as stop:
                final: tuple[int, ...] = stop.value
                self._sync_search_log(now)
                self.note_decision(
                    "settled", now,
                    combo=list(final), n_samples=self.log.n_samples,
                )
                self._actuate_combo(sim, final)
                self._settled = True
                self._roster_settled[tuple(self._live)] = final
                return
            self._sync_search_log(now)
            self._actuate_combo(sim, combo)
            return

        # Settled: monitor for drift and re-search if the chosen
        # combination stops delivering.
        obj = eb_objective(self.metric, [ebs[a] for a in range(self.n_apps)],
                           self._scale)
        if self._settled_obj is None:
            self._settled_obj = obj
            return
        if obj < self.DRIFT_RATIO * self._settled_obj:
            self._drift += 1
            if (
                self._drift >= self.DRIFT_PATIENCE
                and self.search_count <= self.MAX_RESEARCHES
                and self.n_apps >= 2
            ):
                self.note_decision(
                    "research", now, search=self.search_count + 1
                )
                self._begin_search(sim, now)
            return
        self._drift = 0
        # exponential moving average keeps the reference fresh
        self._settled_obj = 0.8 * self._settled_obj + 0.2 * obj

    # --- results -----------------------------------------------------------

    @property
    def final_combo(self) -> tuple[int, ...] | None:
        return self.log.final_combo
