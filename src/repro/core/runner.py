"""High-level evaluation entry points.

This module is the public face of the reproduction: profile applications
alone, profile TLP-combination surfaces, and evaluate any of the paper's
schemes on a multi-application workload, returning SD- and EB-based
metrics ready for the experiment harness.

Scheme names (Table II and §VI):

============  ==========================================================
``besttlp``    each app at its alone best-performing TLP (the baseline)
``maxtlp``     each app at maxTLP
``dyncta``     per-app DynCTA modulation
``ccws``       per-app CCWS-style locality-driven throttling
``modbypass``  DynCTA-style modulation + L2 bypassing (Mod+Bypass)
``pbs-ws``     online PBS optimizing EB-WS
``pbs-fi``     online PBS optimizing EB-FI (sampled scaling factors)
``pbs-hs``     online PBS optimizing EB-HS (sampled scaling factors)
``pbs-offline-ws|fi|hs``  PBS searched offline, run statically
``bf-ws|fi|hs``            exhaustive EB-metric search, run statically
``opt-ws|fi|hs``           exhaustive SD-metric oracle, run statically
============  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import GPUConfig, TLP_LEVELS
from repro.core.controller import DEFAULT_SAMPLE_PERIOD, TLPController
from repro.core.ccws import CCWSController
from repro.core.dyncta import DynCTAController
from repro.core.modbypass import ModBypassController
from repro.core.offline import (
    brute_force_search,
    oracle_search,
    pbs_offline_search,
    sampled_scale,
)
from repro.core.pbs import PBSController
from repro.core.tlp import all_combos
from repro.exec.jobs import SimJob, run_sim_job
from repro.exec.pool import ProgressFn, run_jobs
from repro.metrics.slowdown import fairness_index, harmonic_speedup, weighted_speedup
from repro.obs.live import get_publisher, result_records
from repro.obs.trace import CLOCK_CYCLES, NullTracer, Tracer, get_tracer
from repro.sim.engine import SimResult, Simulator
from repro.sim.stats import WindowSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.synthetic import AppProfile

__all__ = [
    "RunLengths",
    "AloneProfile",
    "SchemeResult",
    "ALL_SCHEMES",
    "alone_from_sweep",
    "emit_scheme_events",
    "profile_alone",
    "profile_surface",
    "run_combo",
    "evaluate_scheme",
]

#: Every scheme name understood by :func:`evaluate_scheme`.
ALL_SCHEMES: tuple[str, ...] = (
    "besttlp",
    "maxtlp",
    "dyncta",
    "ccws",
    "modbypass",
    "pbs-ws",
    "pbs-fi",
    "pbs-hs",
    "pbs-offline-ws",
    "pbs-offline-fi",
    "pbs-offline-hs",
    "bf-ws",
    "bf-fi",
    "bf-hs",
    "opt-ws",
    "opt-fi",
    "opt-hs",
)


@dataclass(frozen=True)
class RunLengths:
    """Simulation durations for profiling and evaluation runs."""

    #: profile and eval lengths are identical so that a combination's
    #: profiled metrics and its evaluated metrics are the *same
    #: simulation* — the oracle searches are then exact by construction
    profile_cycles: int = 40_000
    profile_warmup: int = 8_000
    eval_cycles: int = 40_000
    eval_warmup: int = 8_000
    #: dynamic (controller-driven) schemes run longer so search and
    #: adaptation overheads are paid — and amortized — inside the
    #: measured region, as they are on real hardware
    dynamic_cycles: int = 2_000_000
    dynamic_warmup: int = 60_000
    sample_period: float = DEFAULT_SAMPLE_PERIOD

    @classmethod
    def quick(cls) -> "RunLengths":
        """Short runs for tests."""
        return cls(
            profile_cycles=6_000,
            profile_warmup=1_500,
            eval_cycles=6_000,
            eval_warmup=1_500,
            dynamic_cycles=100_000,
            dynamic_warmup=6_000,
            sample_period=800,
        )


@dataclass
class AloneProfile:
    """Alone-run characterization of one application (per Table IV)."""

    abbr: str
    best_tlp: int
    ipc_alone: float
    eb_alone: float
    sweep: dict[int, WindowSample] = field(default_factory=dict)

    @property
    def bw_alone(self) -> float:
        return self.sweep[self.best_tlp].bw

    @property
    def cmr_alone(self) -> float:
        return self.sweep[self.best_tlp].cmr


@dataclass
class SchemeResult:
    """One scheme evaluated on one workload."""

    scheme: str
    workload: str
    combo: tuple[int, ...] | None  # final/static combo; None if fully dynamic
    sds: list[float]
    ws: float
    fi: float
    hs: float
    ebs: list[float]
    ipcs: list[float]
    result: SimResult
    #: the controller's structured decision log (empty for static
    #: schemes): cycle-stamped, JSON-native dicts that survive the
    #: result cache, so telemetry can be replayed from cached results
    decisions: list[dict] = field(default_factory=list)

    @classmethod
    def from_result(
        cls,
        scheme: str,
        workload: str,
        combo: tuple[int, ...] | None,
        result: SimResult,
        alone: list[AloneProfile],
        decisions: list[dict] | None = None,
    ) -> "SchemeResult":
        sds = []
        for a, profile in enumerate(alone):
            if profile.ipc_alone <= 0:
                raise ValueError(
                    f"alone profile of app {profile.abbr!r} (index {a}) has "
                    f"ipc_alone == 0, so slowdowns under scheme {scheme!r} "
                    f"on workload {workload!r} are undefined; re-profile "
                    f"with longer runs or check the application's streams"
                )
            sds.append(result.samples[a].ipc / profile.ipc_alone)
        return cls(
            scheme=scheme,
            workload=workload,
            combo=combo,
            sds=sds,
            ws=weighted_speedup(sds),
            fi=fairness_index(sds),
            hs=harmonic_speedup(sds),
            ebs=[result.samples[a].eb for a in range(len(alone))],
            ipcs=[result.samples[a].ipc for a in range(len(alone))],
            result=result,
            decisions=list(decisions) if decisions else [],
        )


def alone_from_sweep(abbr: str, sweep: dict[int, WindowSample]) -> AloneProfile:
    """Assemble an :class:`AloneProfile` from a per-level sweep.

    bestTLP is the level with the highest alone IPC; ties break toward
    the earliest level in the sweep's (insertion) order, so callers must
    insert levels in ascending order for deterministic results.
    """
    best = max(sweep, key=lambda lv: sweep[lv].ipc)
    return AloneProfile(
        abbr=abbr,
        best_tlp=best,
        ipc_alone=sweep[best].ipc,
        eb_alone=sweep[best].eb,
        sweep=sweep,
    )


def profile_alone(
    config: GPUConfig,
    app: "AppProfile",
    n_cores: int,
    lengths: RunLengths = RunLengths(),
    seed: int | None = None,
    levels: tuple[int, ...] = TLP_LEVELS,
    n_jobs: int | None = None,
    progress: ProgressFn | None = None,
) -> AloneProfile:
    """Find an application's bestTLP by sweeping it alone on ``n_cores``.

    This is the paper's baseline setup: the alone run uses the *same*
    set of cores the application gets in the shared configuration, and
    bestTLP is the level with the highest alone IPC.  The per-level runs
    are independent and execute on ``n_jobs`` processes (see
    :mod:`repro.exec`).
    """
    jobs = [
        SimJob(
            config=config,
            apps=(app,),
            combo=(level,),
            cycles=lengths.profile_cycles,
            warmup=lengths.profile_warmup,
            seed=seed,
            core_split=(n_cores,),
            tag=("alone", app.abbr, level),
        )
        for level in levels
    ]
    results = run_jobs(run_sim_job, jobs, n_jobs=n_jobs, progress=progress)
    sweep = {level: result.samples[0] for level, result in zip(levels, results)}
    return alone_from_sweep(app.abbr, sweep)


def run_combo(
    config: GPUConfig,
    apps: "list[AppProfile]",
    combo: tuple[int, ...],
    cycles: int,
    warmup: int,
    seed: int | None = None,
    controller: TLPController | None = None,
    core_split: tuple[int, ...] | None = None,
    l2_way_quota: dict[int, int] | None = None,
) -> SimResult:
    """Run a workload at a fixed TLP combination (or under a controller)."""
    sim = Simulator(
        config,
        apps,
        controller=controller,
        seed=seed,
        core_split=core_split,
        l2_way_quota=l2_way_quota,
    )
    initial = {a: combo[a] for a in range(len(apps))}
    return sim.run(cycles, warmup=warmup, initial_tlp=initial)


def profile_surface(
    config: GPUConfig,
    apps: "list[AppProfile]",
    lengths: RunLengths = RunLengths(),
    seed: int | None = None,
    levels: tuple[int, ...] = TLP_LEVELS,
    core_split: tuple[int, ...] | None = None,
    n_jobs: int | None = None,
    progress: ProgressFn | None = None,
) -> dict[tuple[int, ...], SimResult]:
    """Profile every TLP combination of the workload (64 for two apps).

    The combinations are independent simulations and execute on
    ``n_jobs`` processes; the returned dict is keyed in lattice order
    regardless of completion order, so parallel and serial sweeps are
    identical.
    """
    name = "_".join(a.abbr for a in apps)
    combos = list(all_combos(len(apps), levels))
    jobs = [
        SimJob(
            config=config,
            apps=tuple(apps),
            combo=combo,
            cycles=lengths.profile_cycles,
            warmup=lengths.profile_warmup,
            seed=seed,
            core_split=core_split,
            tag=("surface", name, combo),
        )
        for combo in combos
    ]
    results = run_jobs(run_sim_job, jobs, n_jobs=n_jobs, progress=progress)
    return dict(zip(combos, results))


def _static_combo_for(
    scheme: str,
    apps: "list[AppProfile]",
    alone: list[AloneProfile],
    surface: dict[tuple[int, ...], SimResult] | None,
    config: GPUConfig,
) -> tuple[int, ...]:
    """Resolve the static combination for offline/oracle/baseline schemes."""
    n = len(apps)
    if scheme == "besttlp":
        return tuple(alone[a].best_tlp for a in range(n))
    if scheme == "maxtlp":
        return tuple(config.max_tlp for _ in range(n))
    if surface is None:
        raise ValueError(f"scheme {scheme!r} needs a profiled surface")
    metric = scheme.rsplit("-", 1)[-1]
    if scheme.startswith("opt-"):
        return oracle_search(surface, metric, [p.ipc_alone for p in alone])
    scale = None
    if metric in ("fi", "hs"):
        scale = sampled_scale(surface, n)
    if scheme.startswith("bf-"):
        return brute_force_search(surface, metric, n, scale=scale)
    if scheme.startswith("pbs-offline-"):
        combo, _log = pbs_offline_search(surface, metric, n, scale=scale)
        return combo
    raise ValueError(f"unknown scheme {scheme!r}")


def evaluate_scheme(
    config: GPUConfig,
    apps: "list[AppProfile]",
    scheme: str,
    alone: list[AloneProfile],
    surface: dict[tuple[int, ...], SimResult] | None = None,
    lengths: RunLengths = RunLengths(),
    seed: int | None = None,
    core_split: tuple[int, ...] | None = None,
    workload: str | None = None,
    l2_way_quota: dict[int, int] | None = None,
) -> SchemeResult:
    """Evaluate one scheme on one workload and compute all metrics.

    Dynamic schemes (DynCTA, Mod+Bypass, online PBS) attach a controller
    and pay their search/adaptation overheads inside the measured run;
    static schemes resolve a combination first (possibly from the
    profiled ``surface``) and run it unchanged.

    ``l2_way_quota`` (per-application L2 way limits, §VI-D sensitivity)
    is threaded through to :func:`run_combo`, so way-partitioned-L2
    runs can go through the scheme path like every other evaluation.
    """
    if scheme not in ALL_SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; known: {ALL_SCHEMES}")
    name = workload or "_".join(a.abbr for a in apps)
    n = len(apps)
    controller: TLPController | None = None
    combo: tuple[int, ...] | None

    if scheme == "dyncta":
        controller = DynCTAController(n, sample_period=lengths.sample_period)
        combo = None
    elif scheme == "ccws":
        controller = CCWSController(n, sample_period=lengths.sample_period)
        combo = None
    elif scheme == "modbypass":
        controller = ModBypassController(n, sample_period=lengths.sample_period)
        combo = None
    elif scheme in ("pbs-ws", "pbs-fi", "pbs-hs"):
        metric = scheme.rsplit("-", 1)[-1]
        scale = "sampled" if metric in ("fi", "hs") else None
        controller = PBSController(
            metric, n_apps=n, scale=scale, sample_period=lengths.sample_period
        )
        combo = None
    else:
        combo = _static_combo_for(scheme, apps, alone, surface, config)

    start = combo if combo is not None else tuple(config.max_tlp for _ in range(n))
    cycles = lengths.eval_cycles if controller is None else lengths.dynamic_cycles
    warmup = lengths.eval_warmup if controller is None else lengths.dynamic_warmup
    reusable = (
        controller is None
        and surface is not None
        and combo in surface
        and lengths.profile_cycles == lengths.eval_cycles
        and lengths.profile_warmup == lengths.eval_warmup
        # surfaces are profiled without way partitioning, so a
        # quota-constrained evaluation must simulate afresh
        and l2_way_quota is None
    )
    if reusable:
        # The static combination was already simulated while profiling
        # the surface: reuse it, which also makes the oracle exact.
        result = surface[combo]  # type: ignore[index]
    else:
        with get_tracer().span(
            f"evaluate:{scheme}", cat="scheme", workload=name
        ):
            result = run_combo(
                config,
                apps,
                start,
                cycles,
                warmup,
                seed=seed,
                controller=controller,
                core_split=core_split,
                l2_way_quota=l2_way_quota,
            )
    final_combo = combo
    if final_combo is None and isinstance(controller, PBSController):
        final_combo = controller.final_combo
    decisions = getattr(controller, "decision_log", None)
    return SchemeResult.from_result(
        scheme, name, final_combo, result, alone, decisions=decisions
    )


def emit_scheme_events(
    result: SchemeResult, tracer: "Tracer | NullTracer | None" = None
) -> None:
    """Emit a scheme evaluation's sim-layer telemetry onto the tracer.

    Emission happens *after* the run, from the persisted window log and
    decision log, for two reasons: the simulator hot loop stays free of
    tracing overhead, and the same telemetry is replayable from cached
    results and from scheme evaluations computed in pool workers (whose
    in-process tracer is the null one).

    Counter events are named ``{workload}|{scheme}|app{N}`` with the
    per-window EB/BW/CMR series; decision records become instants in
    the ``pbs`` (online PBS) or ``ctrl`` (baseline) category.  All of
    them are cycle-stamped.

    The live telemetry stream gets the same windows and decisions, from
    the same seam: the *parent-side* publisher emits them here exactly
    once per scheme result — whether it was evaluated in-process, in a
    pool worker, or replayed from cache — so pool workers deliberately
    do not publish SchemeResult windows themselves.
    """
    publisher = get_publisher()
    if publisher.enabled and not publisher.worker:
        for record in result_records(result, window_cap=publisher.window_cap):
            publisher.publish(record)
    tracer = tracer if tracer is not None else get_tracer()
    if not tracer.enabled:
        return
    for t, samples in result.result.windows:
        for a in sorted(samples):
            s = samples[a]
            tracer.counter(
                f"{result.workload}|{result.scheme}|app{a}",
                {"eb": s.eb, "bw": s.bw, "cmr": s.cmr},
                ts=t,
                cat="window",
            )
    cat = "pbs" if result.scheme.startswith("pbs") else "ctrl"
    for d in result.decisions:
        detail = {k: v for k, v in d.items() if k not in ("kind", "cycle")}
        tracer.instant(
            f"{cat}.{d['kind']}",
            cat=cat,
            clock=CLOCK_CYCLES,
            ts=d["cycle"],
            workload=result.workload,
            scheme=result.scheme,
            **detail,
        )
