"""DynCTA baseline: per-application latency-driven TLP modulation.

DynCTA (Kayiran et al., PACT 2013) tunes each application's parallelism
from purely *local* signals: when cores spend their time waiting on a
congested memory system, parallelism is reduced; when they are latency-
tolerant and idle, it is increased.  Crucially — and this is the paper's
point in §IV — it never looks at what the co-scheduled application is
doing to the shared L2 and DRAM, so each application still tries to
maximize its own throughput.

We drive the same actuator as PBS (the SWL warp limit) from the same
sampled windows, using each application's average memory latency as the
congestion signal with high/low watermarks and one lattice step per
window, which mirrors DynCTA's gradual CTA-count adjustments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import TLP_LEVELS
from repro.core.controller import BaseController, DEFAULT_SAMPLE_PERIOD
from repro.core.tlp import clamp_level, level_down, level_up
from repro.sim.stats import WindowSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["DynCTAController"]


class DynCTAController(BaseController):
    """Latency-watermark TLP modulation, independently per application."""

    def __init__(
        self,
        n_apps: int,
        lat_high: float = 1500.0,
        lat_low: float = 600.0,
        initial_tlp: int | None = None,
        sample_period: float = DEFAULT_SAMPLE_PERIOD,
        levels: tuple[int, ...] = TLP_LEVELS,
    ) -> None:
        super().__init__(sample_period)
        if lat_low >= lat_high:
            raise ValueError("lat_low watermark must be below lat_high")
        self.n_apps = n_apps
        self.lat_high = lat_high
        self.lat_low = lat_low
        self.levels = levels
        self.initial_tlp = initial_tlp if initial_tlp is not None else levels[-1]
        self.tlp: dict[int, int] = {}
        self.decisions: list[tuple[float, int, int]] = []
        #: live app ids, ascending; closed-system runs keep range(n_apps)
        self._live: list[int] = list(range(n_apps))

    def start(self, sim: "Simulator", now: float) -> None:
        live = getattr(sim, "live_apps", None)
        if live is not None:
            self._live = list(live)
            self.n_apps = len(self._live)
        start_level = clamp_level(self.initial_tlp, self.levels)
        for app in self._live:
            self.tlp[app] = start_level
            sim.set_tlp(app, start_level)

    def on_attach(self, sim: "Simulator", now: float, app_id: int) -> None:
        if app_id not in self._live:
            self._live.append(app_id)
            self._live.sort()
        self.n_apps = len(self._live)
        level = clamp_level(self.initial_tlp, self.levels)
        self.tlp[app_id] = level
        self.note_decision("attach", now, app=app_id, tlp=level)
        sim.set_tlp(app_id, level)

    def on_detach(self, sim: "Simulator", now: float, app_id: int) -> None:
        if app_id in self._live:
            self._live.remove(app_id)
        self.n_apps = len(self._live)
        self.tlp.pop(app_id, None)
        self.note_decision("detach", now, app=app_id)

    def on_window(
        self, sim: "Simulator", now: float, windows: dict[int, WindowSample]
    ) -> None:
        for app in self._live:
            sample = windows[app]
            current = self.tlp[app]
            if sample.avg_mem_latency > self.lat_high:
                target = level_down(current, self.levels)
            elif sample.avg_mem_latency < self.lat_low:
                target = level_up(current, self.levels)
            else:
                continue
            if target != current:
                self.tlp[app] = target
                self.decisions.append((now, app, target))
                self.note_decision(
                    "tlp", now, app=app, tlp=target,
                    signal=round(sample.avg_mem_latency, 3),
                )
                self.actuate(sim, app, target)
