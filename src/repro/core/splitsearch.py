"""Joint core-partition + TLP search (extension).

The paper fixes an equal core split and searches TLP; its §VI-D
sensitivity study shows the TLP patterns survive under other splits.
The natural next step — treat the *core partition itself* as one more
knob — is implemented here: for each candidate split, run the PBS
search live (each sample is a short profiling simulation at that
split), then pick the (split, TLP combination) pair that maximizes the
SD metric computed against per-split alone runs.

Because PBS needs only ~26 samples per split instead of the 64-combo
surface, the joint search stays affordable: ``splits x ~26`` short
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import GPUConfig
from repro.core.pbs import SearchLog, pbs_search
from repro.core.runner import AloneProfile, RunLengths, profile_alone, run_combo
from repro.metrics.slowdown import sd_objective

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads.synthetic import AppProfile

__all__ = ["SplitChoice", "live_pbs_search", "joint_split_search",
           "candidate_splits"]


def candidate_splits(n_cores: int, n_apps: int = 2) -> list[tuple[int, ...]]:
    """Core splits to consider: equal plus one-step-skewed variants."""
    if n_apps != 2:
        raise ValueError("joint split search currently handles two apps")
    half = n_cores // 2
    quarter = max(1, n_cores // 4)
    raw = [(half, n_cores - half),
           (quarter, n_cores - quarter),
           (n_cores - quarter, quarter)]
    return sorted({s for s in raw if s[0] >= 1 and s[1] >= 1})


def live_pbs_search(
    config: GPUConfig,
    apps: "list[AppProfile]",
    metric: str = "ws",
    lengths: RunLengths = RunLengths(),
    seed: int | None = None,
    core_split: tuple[int, ...] | None = None,
) -> tuple[tuple[int, ...], SearchLog]:
    """Drive the PBS generator with fresh short simulations per sample.

    Unlike :func:`repro.core.offline.pbs_offline_search`, no full
    surface is required: only the ~26 combinations the search visits
    are simulated.
    """
    log = SearchLog()
    search = pbs_search(metric, len(apps), log=log)
    try:
        combo = next(search)
        while True:
            result = run_combo(
                config, apps, combo,
                lengths.profile_cycles, lengths.profile_warmup,
                seed=seed, core_split=core_split,
            )
            ebs = {a: result.samples[a].eb for a in range(len(apps))}
            combo = search.send(ebs)
    except StopIteration as stop:
        return stop.value, log


@dataclass
class SplitChoice:
    """Outcome of the joint search."""

    split: tuple[int, ...]
    combo: tuple[int, ...]
    value: float  # SD metric at the chosen (split, combo)
    #: every candidate: split -> (combo, value)
    candidates: dict[tuple[int, ...], tuple[tuple[int, ...], float]]


def joint_split_search(
    config: GPUConfig,
    apps: "list[AppProfile]",
    metric: str = "ws",
    lengths: RunLengths = RunLengths(),
    seed: int | None = None,
    splits: list[tuple[int, ...]] | None = None,
) -> SplitChoice:
    """Search core splits and TLP combinations jointly.

    Slowdowns for each candidate are computed against alone runs *on
    that split's core counts*, per the paper's SD definition.
    """
    splits = splits if splits is not None else candidate_splits(config.n_cores)
    candidates: dict[tuple[int, ...], tuple[tuple[int, ...], float]] = {}
    alone_cache: dict[tuple[int, int], AloneProfile] = {}

    def alone_for(app_idx: int, n_cores: int) -> AloneProfile:
        key = (app_idx, n_cores)
        if key not in alone_cache:
            alone_cache[key] = profile_alone(
                config, apps[app_idx], n_cores, lengths=lengths, seed=seed
            )
        return alone_cache[key]

    for split in splits:
        combo, _log = live_pbs_search(
            config, apps, metric=metric, lengths=lengths, seed=seed,
            core_split=split,
        )
        result = run_combo(
            config, apps, combo,
            lengths.eval_cycles, lengths.eval_warmup,
            seed=seed, core_split=split,
        )
        sds = [
            result.samples[a].ipc / alone_for(a, split[a]).ipc_alone
            for a in range(len(apps))
        ]
        candidates[split] = (combo, sd_objective(metric, sds))

    best_split = max(candidates, key=lambda s: candidates[s][1])
    best_combo, best_value = candidates[best_split]
    return SplitChoice(
        split=best_split, combo=best_combo, value=best_value,
        candidates=candidates,
    )
