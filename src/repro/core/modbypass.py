"""Mod+Bypass baseline: TLP modulation plus cache bypassing.

The paper compares against a recently proposed multi-application scheme
that combines per-application CTA/TLP modulation with cache bypassing:
an application that "does not take advantage of caches" has its fills
bypass the shared L2, which relieves cache contention for the co-runner
(§VI: "it also bypasses the application that does not take advantage of
caches, thereby reducing the cache contention.  However, this mechanism
is still far from optWS as it does not consider the memory bandwidth
consumption and the combined effects of TLP modulation.").

Implementation: DynCTA-style latency-watermark modulation, plus a
per-window bypass decision with hysteresis — an application whose
combined miss rate stays near 1 is classified cache-averse and bypasses
the L2; it is readmitted if its miss rate later recovers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import TLP_LEVELS
from repro.core.controller import DEFAULT_SAMPLE_PERIOD
from repro.core.dyncta import DynCTAController
from repro.sim.stats import WindowSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["ModBypassController"]


class ModBypassController(DynCTAController):
    """TLP modulation + L2 bypass for cache-averse applications.

    The classification signal is the *L1* miss rate: it identifies
    structurally streaming applications, and — unlike the combined miss
    rate — it is unaffected by the bypass itself, so a bypassed
    application can still demonstrate recovered locality and be
    readmitted (judging on CMR would pin a bypassed app at CMR = 1 and
    never let it back in).
    """

    #: L1 miss rate above which an application is considered cache-averse
    BYPASS_ON_L1MR = 0.95
    #: L1 miss rate below which a bypassed application is readmitted
    BYPASS_OFF_L1MR = 0.85
    #: consecutive windows of evidence required to flip the decision
    HYSTERESIS_WINDOWS = 2
    #: windows to wait before any bypass decision: cold caches and
    #: pre-modulation thrashing at maxTLP would misclassify
    #: cache-friendly applications as streaming
    WARMUP_WINDOWS = 6

    def __init__(
        self,
        n_apps: int,
        lat_high: float = 1500.0,
        lat_low: float = 600.0,
        initial_tlp: int | None = None,
        sample_period: float = DEFAULT_SAMPLE_PERIOD,
        levels: tuple[int, ...] = TLP_LEVELS,
    ) -> None:
        super().__init__(
            n_apps,
            lat_high=lat_high,
            lat_low=lat_low,
            initial_tlp=initial_tlp,
            sample_period=sample_period,
            levels=levels,
        )
        self.bypassed: set[int] = set()
        self._evidence: dict[int, int] = {a: 0 for a in range(n_apps)}
        self._windows_seen = 0
        self.bypass_events: list[tuple[float, int, bool]] = []

    def on_attach(self, sim: "Simulator", now: float, app_id: int) -> None:
        super().on_attach(sim, now, app_id)
        self._evidence[app_id] = 0

    def on_detach(self, sim: "Simulator", now: float, app_id: int) -> None:
        super().on_detach(sim, now, app_id)
        # The engine already dropped the bypass flag from the caches;
        # drop the classification state so a reused slot starts clean.
        self.bypassed.discard(app_id)
        self._evidence.pop(app_id, None)

    def on_window(
        self, sim: "Simulator", now: float, windows: dict[int, WindowSample]
    ) -> None:
        super().on_window(sim, now, windows)
        self._windows_seen += 1
        if self._windows_seen <= self.WARMUP_WINDOWS:
            return
        for app in self._live:
            l1_mr = windows[app].l1_miss_rate
            if app not in self.bypassed:
                if l1_mr >= self.BYPASS_ON_L1MR:
                    self._evidence[app] = self._evidence.get(app, 0) + 1
                    if self._evidence[app] >= self.HYSTERESIS_WINDOWS:
                        self._flip(sim, now, app, bypass=True)
                else:
                    self._evidence[app] = 0
            else:
                if l1_mr <= self.BYPASS_OFF_L1MR:
                    self._evidence[app] = self._evidence.get(app, 0) + 1
                    if self._evidence[app] >= self.HYSTERESIS_WINDOWS:
                        self._flip(sim, now, app, bypass=False)
                else:
                    self._evidence[app] = 0

    def _flip(self, sim: "Simulator", now: float, app: int, bypass: bool) -> None:
        if bypass:
            self.bypassed.add(app)
        else:
            self.bypassed.discard(app)
        self._evidence[app] = 0
        self.bypass_events.append((now, app, bypass))
        self.note_decision("bypass", now, app=app, bypass=bypass)
        sim.set_l2_bypass(app, bypass)
