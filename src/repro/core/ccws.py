"""CCWS-style baseline: cache-conscious warp throttling.

Cache-Conscious Wavefront Scheduling (Rogers et al., MICRO 2012) is the
other canonical single-application TLP technique the paper cites
alongside DynCTA (§I, §IV).  Where DynCTA reacts to memory *latency*,
CCWS reacts to *lost intra-warp locality*: when the L1 working set of
the active warps exceeds capacity, hits turn into misses and CCWS
throttles the number of schedulable warps until locality is recovered.

Our window-granularity analogue uses the same observable the simulator's
PBS hardware already samples — the L1 miss rate — with a victim-tag
proxy: a rise of the L1 miss rate above the application's best observed
miss rate by more than ``loss_margin`` indicates lost locality and
throttles one lattice step; a window whose miss rate sits within the
margin releases one step.  Like DynCTA, decisions are purely local to
each application: the co-runner's shared-resource consumption is never
consulted, which is exactly the blind spot the paper's mechanisms fix.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import TLP_LEVELS
from repro.core.controller import BaseController, DEFAULT_SAMPLE_PERIOD
from repro.core.tlp import clamp_level, level_down, level_up
from repro.sim.stats import WindowSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["CCWSController"]


class CCWSController(BaseController):
    """L1-locality-driven warp throttling, independently per application."""

    def __init__(
        self,
        n_apps: int,
        loss_margin: float = 0.08,
        initial_tlp: int | None = None,
        sample_period: float = DEFAULT_SAMPLE_PERIOD,
        levels: tuple[int, ...] = TLP_LEVELS,
    ) -> None:
        super().__init__(sample_period)
        if not 0.0 < loss_margin < 1.0:
            raise ValueError("loss_margin must be a fraction in (0, 1)")
        self.n_apps = n_apps
        self.loss_margin = loss_margin
        self.levels = levels
        self.initial_tlp = initial_tlp if initial_tlp is not None else levels[-1]
        self.tlp: dict[int, int] = {}
        #: best (lowest) L1 miss rate seen per application — the locality
        #: baseline the victim-tag array would estimate
        self.best_l1_mr: dict[int, float] = {}
        self.decisions: list[tuple[float, int, int]] = []
        #: live app ids, ascending; closed-system runs keep range(n_apps)
        self._live: list[int] = list(range(n_apps))

    def start(self, sim: "Simulator", now: float) -> None:
        live = getattr(sim, "live_apps", None)
        if live is not None:
            self._live = list(live)
            self.n_apps = len(self._live)
        start_level = clamp_level(self.initial_tlp, self.levels)
        for app in self._live:
            self.tlp[app] = start_level
            self.best_l1_mr[app] = 1.0
            sim.set_tlp(app, start_level)

    def on_attach(self, sim: "Simulator", now: float, app_id: int) -> None:
        if app_id not in self._live:
            self._live.append(app_id)
            self._live.sort()
        self.n_apps = len(self._live)
        level = clamp_level(self.initial_tlp, self.levels)
        self.tlp[app_id] = level
        self.best_l1_mr[app_id] = 1.0
        self.note_decision("attach", now, app=app_id, tlp=level)
        sim.set_tlp(app_id, level)

    def on_detach(self, sim: "Simulator", now: float, app_id: int) -> None:
        if app_id in self._live:
            self._live.remove(app_id)
        self.n_apps = len(self._live)
        self.tlp.pop(app_id, None)
        self.best_l1_mr.pop(app_id, None)
        self.note_decision("detach", now, app=app_id)

    def on_window(
        self, sim: "Simulator", now: float, windows: dict[int, WindowSample]
    ) -> None:
        for app in self._live:
            sample = windows[app]
            if sample.l1_miss_rate < self.best_l1_mr[app]:
                self.best_l1_mr[app] = sample.l1_miss_rate
            lost = sample.l1_miss_rate - self.best_l1_mr[app]
            current = self.tlp[app]
            if lost > self.loss_margin:
                target = level_down(current, self.levels)
            elif lost < self.loss_margin / 2:
                target = level_up(current, self.levels)
            else:
                continue
            if target != current:
                self.tlp[app] = target
                self.decisions.append((now, app, target))
                self.note_decision(
                    "tlp", now, app=app, tlp=target, signal=round(lost, 6)
                )
                self.actuate(sim, app, target)
