"""Per-file semantic summaries: the cacheable unit of whole-program analysis.

A :class:`FileSummary` is everything the cross-file passes need to know
about one source file, extracted in a single AST walk and serializable
as plain JSON (so :class:`~repro.devtools.semantic.cache.AnalysisCache`
can key it by content hash):

* the import map (local alias -> dotted target), which the graph
  builder chases through package facades;
* every function/method definition, with the calls it makes, the
  function references it passes as arguments (``run_jobs(worker, ...)``,
  ``partial(f, ...)``), the module-level names it mutates, and the file
  writes it performs;
* the module-level *mutable* bindings (dict/list/set displays and
  constructor calls) — the state the R010 race detector cares about.

Resolution is deliberately deferred: a summary records ``self.foo`` and
``mod.bar`` textually; :mod:`repro.devtools.semantic.graph` resolves
them against the whole project, so editing one file never invalidates
another file's summary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ANALYSIS_VERSION",
    "FileSummary",
    "FunctionInfo",
    "extract_unit_sigs",
    "summarize_file",
]

#: Version of the summary extraction itself; part of the AnalysisCache
#: key (see :mod:`repro.devtools.semantic.cache`), so changing what a
#: summary records re-summarizes every file instead of serving stale
#: cached documents.
#:
#: v3: per-function *effect events* (RNG draws tagged with stream
#: origin, wall-clock/entropy/env reads, unordered-iteration and
#: clock-dependent-control-flow context flags) for the R014–R016
#: effect-inference pass (:mod:`repro.devtools.semantic.effects`).
ANALYSIS_VERSION = 3

#: Methods that mutate their receiver in place (dict/list/set/deque).
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
    "appendleft", "extendleft", "__setitem__",
})

#: Constructor calls whose result is module-level mutable state.
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque",
})

#: ``open`` modes that write.
_WRITE_MODE_CHARS = frozenset("wax+")

# --- effect-event vocabularies (v3, for R014-R016) -------------------------
#
# Summaries record effect *events* textually and locally, like calls:
# classification of a dotted name happens against the module's own
# import map only, and cross-function propagation is deferred to
# :mod:`repro.devtools.semantic.effects`.

#: Draw methods on ``random.Random`` / numpy ``Generator`` receivers.
_RNG_DRAW_METHODS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes",
    # numpy Generator draws
    "integers", "standard_normal", "normal", "poisson", "exponential",
    "permutation", "permuted", "bytes",
})

#: ``random.X`` attributes that are *not* ambient-stream use (stream
#: construction and state plumbing, vs drawing from module state).
_AMBIENT_RNG_OK = frozenset({"Random", "SystemRandom"})

#: ``numpy.random.X`` attributes that are explicit-stream constructors.
_NP_AMBIENT_RNG_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
    "SFC64", "MT19937", "BitGenerator",
})

#: Wall-clock reads, by normalized dotted name.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "time.strftime", "time.ctime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: OS/entropy-pool reads, by normalized dotted name.
_ENTROPY_CALLS = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.randbits", "secrets.choice",
})

#: Constructors/methods whose result iterates in hash order.
_UNORDERED_CONSTRUCTORS = frozenset({"set", "frozenset"})
_UNORDERED_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference",
})

#: Bound-draw naming convention: a call like ``self._random()`` whose
#: leaf strips to one of these is treated as a draw on an explicit
#: stream bound elsewhere (``self._random = rng.random``).
_BOUND_DRAW_LEAVES = frozenset({"random", "randrange", "randint", "rand"})


def _looks_like_rng(receiver: str) -> bool:
    """Naming convention for RNG receivers the walker cannot type
    locally (``rng`` parameters, ``self._rng`` attributes bound in
    ``__init__``): assumed to be explicitly seeded streams."""
    leaf = receiver.split(".")[-1].lstrip("_").lower()
    return leaf == "rng" or leaf.endswith("rng") or leaf == "random"


@dataclass
class FunctionInfo:
    """One function or method definition, flattened.

    ``qualname`` is ``"f"`` for module-level functions and
    ``"Class.method"`` for methods.  Events from *nested* functions are
    folded into the enclosing definition: for reachability purposes the
    outer function is the unit that runs.
    """

    qualname: str
    lineno: int
    #: calls made: ``{"name": "self.push" | "mod.f" | "f", "line": int,
    #: "arg_refs": ["dotted", ...]}`` — arg_refs are Name/Attribute
    #: arguments, recorded so worker functions handed to
    #: ``run_jobs``/``submit``/``partial`` can be resolved later.
    calls: list[dict[str, Any]] = field(default_factory=list)
    #: in-place mutations of dotted targets: ``{"target": "X" | "mod.X",
    #: "op": "method" | "subscript" | "augassign" | "global-assign",
    #: "method": "append" | None, "line": int}``
    mutations: list[dict[str, Any]] = field(default_factory=list)
    #: file-writing operations: ``{"kind": "open" | "write_text" |
    #: "write_bytes", "line": int}``
    writes: list[dict[str, Any]] = field(default_factory=list)
    #: effect events (v3): ``{"kind": "clock" | "entropy" | "env",
    #: "source": "time.time", "line": int}`` and ``{"kind": "rng-draw",
    #: "stream": "seeded" | "ambient" | "system" | "attr", ...}``.
    #: Events carry ``"unordered": true`` when they fire inside
    #: set-ordered iteration and ``"clock_dep": true`` under wall-clock/
    #: env-dependent control flow; call records get the same flags.
    effects: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "calls": self.calls,
            "mutations": self.mutations,
            "writes": self.writes,
            "effects": self.effects,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=doc["qualname"],
            lineno=doc["lineno"],
            calls=list(doc.get("calls", ())),
            mutations=list(doc.get("mutations", ())),
            writes=list(doc.get("writes", ())),
            effects=list(doc.get("effects", ())),
        )


@dataclass
class FileSummary:
    """The semantic summary of one source file."""

    module: str  #: dotted module name (``repro.exec.pool``)
    path: str  #: repo-relative path, for findings
    #: local alias -> dotted target; from-imports record the full object
    #: path (``run_jobs`` -> ``repro.exec.pool.run_jobs``), plain
    #: imports the module (``np`` -> ``numpy``).
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level names bound to mutable displays/constructors.
    mutable_globals: dict[str, int] = field(default_factory=dict)
    #: qualname -> info, for every function and method in the file.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> method names (for method resolution).
    classes: dict[str, list[str]] = field(default_factory=dict)
    #: annotation texts for the unit checker (see
    #: :func:`extract_unit_sigs`): ``{"functions": {qual: {"params":
    #: {name: text}, "returns": text}}, "attrs": {Cls: {attr: text}},
    #: "consts": {name: text | "__scalar__"}}``.
    unit_sigs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": self.imports,
            "mutable_globals": self.mutable_globals,
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "classes": self.classes,
            "unit_sigs": self.unit_sigs,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FileSummary":
        return cls(
            module=doc["module"],
            path=doc["path"],
            imports=dict(doc.get("imports", {})),
            mutable_globals=dict(doc.get("mutable_globals", {})),
            functions={
                q: FunctionInfo.from_dict(f)
                for q, f in doc.get("functions", {}).items()
            },
            classes={k: list(v) for k, v in doc.get("classes", {}).items()},
            unit_sigs=dict(doc.get("unit_sigs", {})),
        )


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, for Name/Attribute chains (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = _dotted(value.func)
        if name is not None and name.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
            return True
    return False


def _open_writes(call: ast.Call) -> bool:
    """Does this ``open(...)`` call open for writing?"""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in _WRITE_MODE_CHARS for c in mode.value)
    return True  # dynamic mode: assume it can write


class _FunctionWalker(ast.NodeVisitor):
    """Collect one definition's calls/mutations/writes/effects (nested
    defs flattened into the same :class:`FunctionInfo`)."""

    def __init__(
        self,
        info: FunctionInfo,
        class_names: set[str],
        imports: dict[str, str] | None = None,
    ) -> None:
        self.info = info
        self.class_names = class_names
        self.imports = imports or {}
        #: local name -> class name it was constructed from
        #: (``sim = Simulator(...)`` => ``{"sim": "Simulator"}``), for
        #: one-level method-call resolution.
        self._constructed: dict[str, str] = {}
        self._globals: set[str] = set()
        #: local/attr name -> RNG stream kind ("seeded" | "system") for
        #: receivers constructed in this very function.
        self._rng_locals: dict[str, str] = {}
        #: locals bound to set displays/constructors (hash-ordered).
        self._set_locals: set[str] = set()
        #: >0 while visiting code that runs per-element of set-ordered
        #: iteration / under entropy-dependent control flow.
        self._unordered = 0
        self._clock_dep = 0

    def _normalize(self, name: str) -> str:
        """Resolve the leading alias through the module's import map
        (``np.random.default_rng`` -> ``numpy.random.default_rng``,
        ``perf_counter`` -> ``time.perf_counter``)."""
        head, _, rest = name.partition(".")
        target = self.imports.get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target

    # -- declarations --------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self._globals.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            callee = _dotted(value.func)
            if callee in self.class_names:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._constructed[target.id] = callee
            stream = self._rng_stream_of(callee)
            if stream is not None:
                for target in node.targets:
                    dotted = _dotted(target)
                    if dotted is not None:
                        self._rng_locals[dotted] = stream
        if self._iter_is_unordered(value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_locals.add(target.id)
        for target in node.targets:
            self._note_store(target)
        self.generic_visit(node)

    def _rng_stream_of(self, callee: str | None) -> str | None:
        """Stream kind when ``callee`` constructs an RNG, else None."""
        if callee is None:
            return None
        norm = self._normalize(callee)
        if norm == "random.Random":
            return "seeded"
        if norm == "random.SystemRandom":
            return "system"
        if norm.split(".")[-1] == "default_rng":
            return "seeded"
        return None

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            if isinstance(node.value, ast.Call):
                stream = self._rng_stream_of(_dotted(node.value.func))
                if stream is not None:
                    self._rng_locals[node.target.id] = stream
            if self._iter_is_unordered(node.value):
                self._set_locals.add(node.target.id)
        self._note_store(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Name) and target.id in self._globals:
            self.info.mutations.append({
                "target": target.id, "op": "augassign", "method": None,
                "line": node.lineno,
            })
        else:
            self._note_store(target)
        self.generic_visit(node)

    def _note_store(self, target: ast.expr) -> None:
        """Record stores that mutate a named container or a global."""
        if isinstance(target, ast.Subscript):
            dotted = _dotted(target.value)
            if dotted is not None and not dotted.startswith("self."):
                self.info.mutations.append({
                    "target": dotted, "op": "subscript", "method": None,
                    "line": target.lineno,
                })
        elif isinstance(target, ast.Name) and target.id in self._globals:
            self.info.mutations.append({
                "target": target.id, "op": "global-assign", "method": None,
                "line": target.lineno,
            })

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._note_store(target)
        self.generic_visit(node)

    # -- control-flow context (R015) -----------------------------------

    def _iter_is_unordered(self, node: ast.expr) -> bool:
        """Does iterating ``node`` visit elements in hash order?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._set_locals
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name is None:
                return False
            leaf = name.split(".")[-1]
            return (
                leaf in _UNORDERED_CONSTRUCTORS
                or leaf in _UNORDERED_METHODS
            )
        return False

    def _test_is_entropy_dep(self, test: ast.expr) -> bool:
        """Does this branch condition read clock/env/entropy?"""
        for sub in ast.walk(test):
            if isinstance(sub, ast.Call):
                name = _dotted(sub.func)
                if name is None:
                    continue
                norm = self._normalize(name)
                if (
                    norm in _CLOCK_CALLS
                    or norm in _ENTROPY_CALLS
                    or norm == "os.getenv"
                    or norm.startswith("os.environ")
                ):
                    return True
            elif isinstance(sub, ast.Subscript):
                dotted = _dotted(sub.value)
                if dotted is not None and self._normalize(
                    dotted
                ).startswith("os.environ"):
                    return True
        return False

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        unordered = self._iter_is_unordered(node.iter)
        if unordered:
            self._unordered += 1
        for stmt in (*node.body, *node.orelse):
            self.visit(stmt)
        if unordered:
            self._unordered -= 1

    def _visit_branch(self, node: ast.If | ast.While) -> None:
        self.visit(node.test)
        clocked = self._test_is_entropy_dep(node.test)
        if clocked:
            self._clock_dep += 1
        for stmt in (*node.body, *node.orelse):
            self.visit(stmt)
        if clocked:
            self._clock_dep -= 1

    visit_If = _visit_branch
    visit_While = _visit_branch

    def _visit_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp,
    ) -> None:
        unordered = any(
            self._iter_is_unordered(gen.iter) for gen in node.generators
        )
        for gen in node.generators:
            self.visit(gen.iter)
        if unordered:
            self._unordered += 1
        for gen in node.generators:
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        if unordered:
            self._unordered -= 1

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    # -- effect events (R014-R016) -------------------------------------

    def _note_event(self, event: dict[str, Any], line: int) -> None:
        event["line"] = line
        if self._unordered:
            event["unordered"] = True
        if self._clock_dep:
            event["clock_dep"] = True
        self.info.effects.append(event)

    def _classify_effect(self, raw: str, line: int) -> None:
        """Record the effect event of one dotted call, if any."""
        norm = self._normalize(raw)
        if norm in _CLOCK_CALLS:
            self._note_event({"kind": "clock", "source": norm}, line)
            return
        if norm in _ENTROPY_CALLS:
            self._note_event({"kind": "entropy", "source": norm}, line)
            return
        if norm == "os.getenv" or norm.startswith("os.environ"):
            self._note_event({"kind": "env", "source": norm}, line)
            return
        head, _, rest = norm.partition(".")
        leaf = norm.split(".")[-1]
        if head == "random" and rest and leaf not in _AMBIENT_RNG_OK:
            self._note_event(
                {"kind": "rng-draw", "stream": "ambient", "source": norm},
                line,
            )
            return
        if (
            norm.startswith("numpy.random.")
            and leaf not in _NP_AMBIENT_RNG_OK
        ):
            self._note_event(
                {"kind": "rng-draw", "stream": "ambient", "source": norm},
                line,
            )
            return
        if "." in raw:
            receiver, method = raw.rsplit(".", 1)
            if method in _RNG_DRAW_METHODS:
                stream = self._rng_locals.get(receiver)
                if stream is None and _looks_like_rng(receiver):
                    stream = "attr"
                if stream is not None:
                    self._note_event(
                        {"kind": "rng-draw", "stream": stream,
                         "source": raw},
                        line,
                    )
                return
            # Bound-method convention: ``self._random()`` where the
            # draw method was bound off an explicit stream elsewhere.
            if (
                method.startswith("_")
                and method.lstrip("_") in _BOUND_DRAW_LEAVES
            ):
                self._note_event(
                    {"kind": "rng-draw", "stream": "attr", "source": raw},
                    line,
                )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        dotted = _dotted(node.value)
        if (
            dotted is not None
            and isinstance(node.ctx, ast.Load)
            and self._normalize(dotted).startswith("os.environ")
        ):
            self._note_event(
                {"kind": "env", "source": f"{self._normalize(dotted)}[...]"},
                node.lineno,
            )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = _dotted(func)
        if name is not None:
            head, _, tail = name.partition(".")
            if head in self._constructed and tail:
                name = f"{self._constructed[head]}.{tail}"
            arg_refs = []
            for arg in node.args:
                ref = _dotted(arg)
                if ref is not None:
                    arg_refs.append(ref)
            for kw in node.keywords:
                ref = _dotted(kw.value)
                if ref is not None:
                    arg_refs.append(ref)
            record: dict[str, Any] = {
                "name": name, "line": node.lineno, "arg_refs": arg_refs,
            }
            if self._unordered:
                record["unordered"] = True
            if self._clock_dep:
                record["clock_dep"] = True
            self.info.calls.append(record)
            self._classify_effect(name, node.lineno)
            last = name.split(".")[-1]
            if last in _MUTATING_METHODS and "." in name:
                receiver = name.rsplit(".", 1)[0]
                if not receiver.startswith("self."):
                    self.info.mutations.append({
                        "target": receiver, "op": "method", "method": last,
                        "line": node.lineno,
                    })
            if last == "open" and _open_writes(node):
                self.info.writes.append({"kind": "open", "line": node.lineno})
            elif last in ("write_text", "write_bytes"):
                self.info.writes.append({"kind": last, "line": node.lineno})
        self.generic_visit(node)


def _walk_definition(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    class_names: set[str],
    imports: dict[str, str] | None = None,
) -> FunctionInfo:
    info = FunctionInfo(qualname=qualname, lineno=node.lineno)
    walker = _FunctionWalker(info, class_names, imports)
    for stmt in node.body:
        walker.visit(stmt)
    return info


def _sig_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, Any]:
    """Annotation texts of one definition (empty dict when bare)."""
    args = node.args
    params: dict[str, str] = {}
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.annotation is not None:
            params[arg.arg] = ast.unparse(arg.annotation)
    sig: dict[str, Any] = {}
    if params:
        sig["params"] = params
    if node.returns is not None:
        sig["returns"] = ast.unparse(node.returns)
    return sig


def extract_unit_sigs(tree: ast.Module) -> dict[str, Any]:
    """Harvest annotation *texts* for the unit checker (R012/R013).

    Resolution is deferred exactly as for calls: the texts are matched
    against the vocabulary/import map by
    :class:`repro.devtools.semantic.units.UnitWorld`, so the summary
    stays a purely local (and cacheable) artifact.  Collected:

    * parameter/return annotations of every function and method;
    * class attribute declarations — class-body ``x: T`` fields *and*
      ``self.x: T = ...`` statements anywhere in the class's methods;
    * module-level ``NAME: T = ...`` constants, plus bare numeric
      ``NAME = 1e-12`` constants recorded as the sentinel
      ``"__scalar__"`` (they adapt to any unit, like literals).
    """
    functions: dict[str, Any] = {}
    attrs: dict[str, dict[str, str]] = {}
    consts: dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            sig = _sig_of(stmt)
            if sig:
                functions[stmt.name] = sig
        elif isinstance(stmt, ast.ClassDef):
            cls_attrs: dict[str, str] = {}
            for sub in stmt.body:
                if isinstance(sub, ast.AnnAssign) and isinstance(
                    sub.target, ast.Name
                ):
                    cls_attrs[sub.target.id] = ast.unparse(sub.annotation)
                elif isinstance(sub, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    sig = _sig_of(sub)
                    if sig:
                        functions[f"{stmt.name}.{sub.name}"] = sig
                    for inner in ast.walk(sub):
                        if (
                            isinstance(inner, ast.AnnAssign)
                            and isinstance(inner.target, ast.Attribute)
                            and isinstance(inner.target.value, ast.Name)
                            and inner.target.value.id == "self"
                        ):
                            cls_attrs.setdefault(
                                inner.target.attr,
                                ast.unparse(inner.annotation),
                            )
            if cls_attrs:
                attrs[stmt.name] = cls_attrs
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            consts[stmt.target.id] = ast.unparse(stmt.annotation)
        elif isinstance(stmt, ast.Assign):
            if (
                isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, (int, float))
                and not isinstance(stmt.value.value, bool)
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        consts[target.id] = "__scalar__"
    sigs: dict[str, Any] = {}
    if functions:
        sigs["functions"] = functions
    if attrs:
        sigs["attrs"] = attrs
    if consts:
        sigs["consts"] = consts
    return sigs


def summarize_file(module: str, path: str, tree: ast.Module) -> FileSummary:
    """Extract the :class:`FileSummary` of one parsed source file."""
    summary = FileSummary(module=module, path=path)
    summary.unit_sigs = extract_unit_sigs(tree)

    class_names: set[str] = {
        n.name for n in tree.body if isinstance(n, ast.ClassDef)
    }

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                summary.imports[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are not used in this tree
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.imports[local] = f"{node.module}.{alias.name}"
            # A from-import also marks imported *classes* as resolvable
            # constructor names for one-level method resolution.
            class_names.update(
                alias.asname or alias.name
                for alias in node.names
                if alias.name[:1].isupper()
            )

    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _is_mutable_value(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    summary.mutable_globals[target.id] = stmt.lineno
        elif (
            isinstance(stmt, ast.AnnAssign)
            and stmt.value is not None
            and _is_mutable_value(stmt.value)
            and isinstance(stmt.target, ast.Name)
        ):
            summary.mutable_globals[stmt.target.id] = stmt.lineno
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _walk_definition(
                stmt, stmt.name, class_names, summary.imports
            )
            summary.functions[info.qualname] = info
        elif isinstance(stmt, ast.ClassDef):
            methods: list[str] = []
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(sub.name)
                    qual = f"{stmt.name}.{sub.name}"
                    summary.functions[qual] = _walk_definition(
                        sub, qual, class_names, summary.imports
                    )
            summary.classes[stmt.name] = methods

    return summary
