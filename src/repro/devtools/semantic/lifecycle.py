"""R009: pooled-object lifecycle verification of the engine stage machine.

The PR-4 hot path recycles :class:`~repro.sim.engine.MemTxn` and
``DRAMRequest`` objects through free-list pools.  The bug class this
enables is nasty precisely because it does not crash: a transaction
appended to its pool and then mutated (use-after-release) corrupts
whatever simulation the pool hands it to next, a transaction appended
twice (double-release) aliases two in-flight events, and a transaction
that reaches ``return`` still owned (a leak) silently degrades the pool
back to per-event allocation.  All three change EB/WS/FI numbers without
raising anything.

This module extracts the stage machine from ``repro.sim.engine`` and
verifies, per function, an abstract ownership state for every
pool-managed variable:

``OWNED`` --release--> ``RELEASED`` (``<pool>.append(v)``)
``OWNED`` --park-----> ``PARKED``   (``<deferred queue>.append(v)``)
``OWNED`` --push-----> ``PUSHED``   (``push(t, v)`` / ``heappush(.., (t, seq, v))``)
``OWNED`` --escape---> ``ESCAPED``  (passed to a call / stored away)

Violations:

* any reference to a variable in ``RELEASED``/``PARKED`` state
  (use-after-release / use-after-park, including re-dispatch);
* a release while already ``RELEASED`` (double-release) or ``PARKED``
  (park+release);
* in ``Simulator._dispatch``, a path through a *pooled* stage's branch
  that returns with the transaction still ``OWNED`` (leak);
* a pool release of a *warp-owned* transaction (the recurring
  compute/response records owned by warps must never enter the pool).

Stages are classified **pooled** vs **warp-owned** by observation, not
configuration: a stage carried by variables that originate from
``pool.pop()`` / a bare constructor is pooled; a stage only ever
attached by a constructor whose result is stored onto an owner
attribute (``warp.compute_txn = MemTxn(...)``) is warp-owned.

Receiver classification is name-based and documented: an attribute
chain ending in ``pool`` is a free-list, one containing ``deferred`` is
a backpressure parking queue, and ``push``/``heappush``/``_push`` are
event-queue pushes.  Single-level aliases (``pool = self._txn_pool``)
are followed.

The same extraction feeds ``repro lint --graph``: the declared stages,
their pooled/owned classification, and every observed stage transition
with its disposition are dumped as a JSON artifact (see
``docs/devtools.md``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import LintRule, register

__all__ = ["ANALYSIS_VERSION", "EngineAnalysis", "analyze_engine", "LifecycleRule"]

#: Version of the lifecycle analysis; part of the AnalysisCache key.
ANALYSIS_VERSION = 1

#: The module the stage machine lives in.
ENGINE_MODULE = "repro.sim.engine"
#: The transaction class whose integer class attributes declare stages.
TXN_CLASS = "MemTxn"
#: Pool-managed constructors.
POOLED_CLASSES = ("MemTxn", "DRAMRequest")
#: The single stage-machine consumer.
DISPATCH_METHOD = "_dispatch"

_PUSH_NAMES = frozenset({"push", "heappush", "_push"})

# -- ownership states ---------------------------------------------------
_OWNED = "owned"
_RELEASED = "released"
_PARKED = "parked"
_PUSHED = "pushed"
_ESCAPED = "escaped"
#: joined from branches that disagree; tracking stops, nothing flagged
_CONFLICT = "conflict"

_DISPOSED = frozenset({_RELEASED, _PARKED, _PUSHED, _ESCAPED})


def _attr_chain(node: ast.expr) -> str | None:
    """Dotted receiver chain, looking through subscripts.

    ``self._l1_deferred[cid]`` -> ``"self._l1_deferred"``;
    ``ev._wheel[slot & mask]`` -> ``"ev._wheel"``.
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        else:
            return None


@dataclass
class EngineAnalysis:
    """Everything R009 and ``--graph`` extract from the engine module."""

    #: declared stage constants: name -> integer value
    stages: dict[str, int] = field(default_factory=dict)
    #: module-level aliases: local name -> stage name
    aliases: dict[str, str] = field(default_factory=dict)
    #: stages compared against in ``_dispatch``
    handled: set[str] = field(default_factory=set)
    #: stages observed on pool-origin / freshly built transactions
    pooled: set[str] = field(default_factory=set)
    #: stages only ever attached to owner-stored constructor results
    warp_owned: set[str] = field(default_factory=set)
    #: observed transitions: {"function", "from", "to", "via", "line"}
    transitions: list[dict[str, Any]] = field(default_factory=list)
    findings: list[tuple[int, int, str]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """The ``--graph`` stage-machine artifact."""
        return {
            "stages": {
                name: {
                    "value": value,
                    "pooled": name in self.pooled,
                    "warp_owned": name in self.warp_owned,
                    "handled_in_dispatch": name in self.handled,
                }
                for name, value in sorted(self.stages.items())
            },
            "transitions": sorted(
                self.transitions,
                key=lambda t: (t["function"], t["line"]),
            ),
        }

    def note(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            (getattr(node, "lineno", 1), getattr(node, "col_offset", 0), message)
        )


class _StageIndex:
    """Stage declarations plus recognizers for stage references."""

    def __init__(self, tree: ast.Module, analysis: EngineAnalysis) -> None:
        self.analysis = analysis
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == TXN_CLASS:
                for sub in stmt.body:
                    if (
                        isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Name)
                        and sub.targets[0].id.isupper()
                        and isinstance(sub.value, ast.Constant)
                        and isinstance(sub.value.value, int)
                        and not isinstance(sub.value.value, bool)
                    ):
                        analysis.stages[sub.targets[0].id] = sub.value.value
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Attribute)
                and isinstance(stmt.value.value, ast.Name)
                and stmt.value.value.id == TXN_CLASS
                and stmt.value.attr in analysis.stages
            ):
                analysis.aliases[stmt.targets[0].id] = stmt.value.attr

    def stage_of(self, node: ast.expr) -> str | None:
        """Stage name referenced by ``node`` (alias, ``MemTxn.X``), or None."""
        if isinstance(node, ast.Name):
            return self.analysis.aliases.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == TXN_CLASS
            and node.attr in self.analysis.stages
        ):
            return node.attr
        return None


@dataclass
class _VarState:
    state: str
    #: stage most recently assigned to this variable (for transitions)
    stage: str | None = None
    #: line of the disposing event, for diagnostics
    disposed_at: int = 0


class _FunctionChecker:
    """Abstract ownership interpretation of one function body."""

    def __init__(
        self,
        name: str,
        args: ast.arguments,
        body: list[ast.stmt],
        index: _StageIndex,
        analysis: EngineAnalysis,
        *,
        context_stage: str | None = None,
        forbid_release_of: str | None = None,
    ) -> None:
        self.name = name
        self.args = args
        self.body = body
        self.index = index
        self.analysis = analysis
        self.context_stage = context_stage
        #: parameter name whose pool release is itself a bug (the
        #: transaction of a warp-owned dispatch branch)
        self.forbid_release_of = forbid_release_of
        #: simple aliases: local name -> attribute chain it stands for
        self.aliases: dict[str, str] = {}
        #: names bound from an intrusive ``.link`` chain read (stride
        #: batching folds same-instant records into one event; the walk
        #: advances via ``nxt = txn.link`` / ``txn = nxt``).  Chain
        #: followers inherit the head's ownership obligations.
        self.link_derived: set[str] = set()
        #: (env, return-or-terminal node) at each return statement
        self.returns: list[tuple[dict[str, _VarState], ast.AST]] = []

    # -- receiver classification ---------------------------------------

    def _resolve(self, chain: str | None) -> str:
        if chain is None:
            return ""
        head, _, rest = chain.partition(".")
        if head in self.aliases:
            chain = self.aliases[head] + ("." + rest if rest else "")
        return chain

    def _is_pool(self, chain: str | None) -> bool:
        chain = self._resolve(chain)
        return chain.split(".")[-1].endswith("pool")

    def _is_deferred(self, chain: str | None) -> bool:
        chain = self._resolve(chain)
        return "deferred" in chain

    # -- entry ----------------------------------------------------------

    def initial_env(self) -> dict[str, _VarState]:
        env: dict[str, _VarState] = {}
        for arg in self.args.args + self.args.kwonlyargs:
            if arg.arg in ("self", "cls"):
                continue
            ann = ast.unparse(arg.annotation) if arg.annotation else ""
            if (
                arg.arg in ("txn", "req", "request")
                or any(c in ann for c in POOLED_CLASSES)
            ):
                env[arg.arg] = _VarState(_OWNED, stage=self.context_stage)
        return env

    def run(self) -> dict[str, _VarState]:
        env = self.initial_env()
        terminated = self._walk(self.body, env)
        if not terminated and self.body:
            # Fall-out of the function end is an implicit return.
            self.returns.append((dict(env), self.body[-1]))
        return env

    # -- statement walk --------------------------------------------------

    def _walk(self, stmts: list[ast.stmt], env: dict[str, _VarState]) -> bool:
        """Interpret a statement list in ``env``; True if every path
        through it terminates (return/raise/continue/break)."""
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    self._check_uses(stmt.value, env)
                self.returns.append((dict(env), stmt))
                return True
            if isinstance(stmt, ast.Raise):
                return True
            if isinstance(stmt, (ast.Continue, ast.Break)):
                return True
            if isinstance(stmt, ast.If):
                self._check_uses(stmt.test, env)
                then_env = {k: _VarState(v.state, v.stage, v.disposed_at)
                            for k, v in env.items()}
                then_term = self._walk(stmt.body, then_env)
                else_env = {k: _VarState(v.state, v.stage, v.disposed_at)
                            for k, v in env.items()}
                else_term = self._walk(stmt.orelse, else_env)
                if then_term and else_term:
                    return True
                if then_term:
                    env.clear()
                    env.update(else_env)
                elif else_term:
                    env.clear()
                    env.update(then_env)
                else:
                    self._merge(env, then_env, else_env)
                continue
            if isinstance(stmt, (ast.For, ast.While)):
                if isinstance(stmt, ast.For):
                    self._check_uses(stmt.iter, env)
                else:
                    self._check_uses(stmt.test, env)
                body_env = {k: _VarState(v.state, v.stage, v.disposed_at)
                            for k, v in env.items()}
                self._walk(stmt.body, body_env)
                self._walk(stmt.orelse, body_env)
                self._merge(env, env, body_env)
                continue
            if isinstance(stmt, (ast.With, ast.Try)):
                inner: list[ast.stmt] = []
                if isinstance(stmt, ast.With):
                    inner = stmt.body
                else:
                    inner = (
                        stmt.body
                        + [s for h in stmt.handlers for s in h.body]
                        + stmt.orelse
                        + stmt.finalbody
                    )
                body_env = {k: _VarState(v.state, v.stage, v.disposed_at)
                            for k, v in env.items()}
                self._walk(inner, body_env)
                self._merge(env, env, body_env)
                continue
            self._simple(stmt, env)
        return False

    @staticmethod
    def _merge(
        env: dict[str, _VarState],
        a: dict[str, _VarState],
        b: dict[str, _VarState],
    ) -> None:
        merged: dict[str, _VarState] = {}
        for name in set(a) | set(b):
            sa, sb = a.get(name), b.get(name)
            if sa is None or sb is None:
                merged[name] = _VarState(_CONFLICT)
            elif sa.state == sb.state:
                merged[name] = _VarState(sa.state, sa.stage, sa.disposed_at)
            elif {sa.state, sb.state} <= _DISPOSED:
                # disposed differently on each path — equally final
                merged[name] = _VarState(_ESCAPED, sa.stage)
            else:
                merged[name] = _VarState(_CONFLICT)
        env.clear()
        env.update(merged)

    # -- one simple statement --------------------------------------------

    def _simple(self, stmt: ast.stmt, env: dict[str, _VarState]) -> None:
        # Rebinding assignments reset tracking for their target before
        # use-checking (the old object is gone; reusing the name is not
        # a use of the released object).
        rebound: str | None = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            rebound = stmt.targets[0].id

        for value in self._stmt_exprs(stmt):
            self._check_uses(value, env, skip=rebound)

        if rebound is not None:
            assert isinstance(stmt, ast.Assign)
            self._rebind(rebound, stmt.value, env, stmt)
            return

        for call in self._calls_of(stmt):
            self._apply_call(call, env)

        # Attribute stores: `v.stage = X` records a transition target;
        # `obj.attr = v` escapes v.
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in env
            ):
                var = env[target.value.id]
                if target.attr == "stage":
                    stage = self.index.stage_of(stmt.value)
                    if stage is not None:
                        var.stage = stage
            elif isinstance(stmt.value, ast.Name) and stmt.value.id in env:
                var = env[stmt.value.id]
                if var.state == _OWNED:
                    var.state = _ESCAPED

    def _stmt_exprs(self, stmt: ast.stmt) -> Iterator[ast.expr]:
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.expr):
                yield node

    def _calls_of(self, stmt: ast.stmt) -> Iterator[ast.Call]:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node

    def _rebind(
        self,
        name: str,
        value: ast.expr,
        env: dict[str, _VarState],
        stmt: ast.stmt,
    ) -> None:
        # Process calls inside the value first (e.g. pool.pop()).
        for call in self._calls_of(stmt):
            self._apply_call(call, env, rebound=name)
        env.pop(name, None)
        if isinstance(value, ast.Call):
            chain = _attr_chain(value.func)
            if chain is not None:
                if chain.endswith(".pop") and self._is_pool(
                    chain.rsplit(".", 1)[0]
                ):
                    env[name] = _VarState(_OWNED)
                    return
                if chain in POOLED_CLASSES:
                    stage = (
                        self.index.stage_of(value.args[0])
                        if value.args else None
                    )
                    env[name] = _VarState(_OWNED, stage=stage)
                    if stage is not None:
                        self.analysis.pooled.add(stage)
                    return
        elif isinstance(value, ast.Attribute):
            chain = _attr_chain(value)
            if chain is not None:
                self.aliases[name] = chain
                # `nxt = txn.link`: reading the intrusive chain pointer
                # off a tracked record hands this name the follower of
                # a same-instant stride chain.  The follower is a live
                # record in the same stage as the head, so ownership
                # tracking (release/park/use checks) must continue
                # through it instead of going blind at the chain walk.
                if value.attr == "link":
                    base = chain.rsplit(".", 1)[0]
                    src = env.get(base)
                    if src is not None and src.state == _OWNED:
                        env[name] = _VarState(_OWNED, stage=src.stage)
                        self.link_derived.add(name)
        elif isinstance(value, ast.Name) and value.id in self.link_derived:
            src = env.get(value.id)
            if src is not None:
                # Chain-walk advance (`txn = nxt`): the record's
                # obligations follow it under the new name — including
                # the warp-owned never-release rule when the walk
                # rebinds the dispatch parameter itself.
                env[name] = _VarState(src.state, src.stage, src.disposed_at)
                self.link_derived.add(name)

    # -- events -----------------------------------------------------------

    def _tracked_arg(
        self, call: ast.Call, env: dict[str, _VarState]
    ) -> str | None:
        """A tracked variable passed to ``call``, directly or in a tuple."""
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id in env:
                return arg.id
            if isinstance(arg, ast.Tuple):
                for elt in arg.elts:
                    if isinstance(elt, ast.Name) and elt.id in env:
                        return elt.id
        return None

    def _apply_call(
        self,
        call: ast.Call,
        env: dict[str, _VarState],
        rebound: str | None = None,
    ) -> None:
        chain = _attr_chain(call.func)
        if chain is None:
            return
        leaf = chain.split(".")[-1]
        name = self._tracked_arg(call, env)
        if name is None or name == rebound:
            return
        var = env[name]
        if var.state == _CONFLICT:
            return
        line = call.lineno

        if leaf == "append":
            receiver = chain.rsplit(".", 1)[0]
            if self._is_pool(receiver):
                if var.state == _RELEASED:
                    self.analysis.note(
                        call,
                        f"double-release: {name!r} was already returned to "
                        f"the pool on line {var.disposed_at} and is appended "
                        "again here",
                    )
                elif var.state == _PARKED:
                    self.analysis.note(
                        call,
                        f"park+release: {name!r} was parked on a deferred "
                        f"queue on line {var.disposed_at} and is also "
                        "released to the pool — two owners will re-drive it",
                    )
                elif self.forbid_release_of is not None and (
                    name == self.forbid_release_of
                    or name in self.link_derived
                ):
                    self.analysis.note(
                        call,
                        f"warp-owned transaction {name!r} (stage "
                        f"{self.context_stage}) must never be released to "
                        "the pool: warps reuse it every iteration",
                    )
                var.state = _RELEASED
                var.disposed_at = line
                self._transition(var, "pool", line)
            elif self._is_deferred(receiver):
                if var.state == _RELEASED:
                    self.analysis.note(
                        call,
                        f"release+park: {name!r} was returned to the pool on "
                        f"line {var.disposed_at} and is parked here — the "
                        "pool and the deferred queue now share it",
                    )
                var.state = _PARKED
                var.disposed_at = line
                self._transition(var, "park", line)
            else:
                var.state = _ESCAPED
        elif leaf in _PUSH_NAMES:
            var.state = _PUSHED
            var.disposed_at = line
            self._transition(var, "push", line)
        else:
            # Handed to another function: ownership moves with it.
            var.state = _ESCAPED
            self._transition(var, "call:" + leaf, line)

    def _transition(self, var: _VarState, via: str, line: int) -> None:
        self.analysis.transitions.append({
            "function": self.name,
            "from": self.context_stage or f"<{self.name}>",
            "to": var.stage or "?",
            "via": via,
            "line": line,
        })

    # -- use-after-release -----------------------------------------------

    def _check_uses(
        self,
        node: ast.expr,
        env: dict[str, _VarState],
        skip: str | None = None,
    ) -> None:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Name) or sub.id == skip:
                continue
            var = env.get(sub.id)
            if var is None:
                continue
            if var.state == _RELEASED:
                self.analysis.note(
                    sub,
                    f"use-after-release: {sub.id!r} was returned to the "
                    f"pool on line {var.disposed_at}; reading, mutating or "
                    "re-dispatching it here corrupts whatever transaction "
                    "the pool hands out next",
                )
                var.state = _CONFLICT  # one finding per release site
            elif var.state == _PARKED:
                self.analysis.note(
                    sub,
                    f"use-after-park: {sub.id!r} was parked on a deferred "
                    f"queue on line {var.disposed_at} and is owned by the "
                    "backpressure drain from that point on",
                )
                var.state = _CONFLICT


def _iter_stage_branches(
    dispatch: ast.FunctionDef, index: _StageIndex
) -> Iterator[tuple[str, list[ast.stmt], ast.If]]:
    """Yield ``(stage, body, if-node)`` for each stage test in
    ``_dispatch`` — flat ``if`` sequences and ``elif`` chains alike."""

    def tested_stage(test: ast.expr) -> str | None:
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            for side in (test.left, test.comparators[0]):
                stage = index.stage_of(side)
                if stage is not None:
                    return stage
        return None

    def scan(stmts: list[ast.stmt]) -> Iterator[tuple[str, list[ast.stmt], ast.If]]:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                stage = tested_stage(stmt.test)
                if stage is not None:
                    yield stage, stmt.body, stmt
                yield from scan(stmt.orelse)

    yield from scan(dispatch.body)


def analyze_engine(tree: ast.Module) -> EngineAnalysis:
    """Run the full lifecycle analysis over the engine module's AST."""
    analysis = EngineAnalysis()
    index = _StageIndex(tree, analysis)
    if not analysis.stages:
        return analysis

    # Classify warp-owned stages: constructor results stored straight
    # onto an owner attribute (`warp.compute_txn = MemTxn(STAGE, ...)`).
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _attr_chain(node.value.func) in POOLED_CLASSES
            and node.value.args
        ):
            stage = index.stage_of(node.value.args[0])
            if stage is None:
                continue
            if all(isinstance(t, ast.Attribute) for t in node.targets):
                analysis.warp_owned.add(stage)
            else:
                analysis.pooled.add(stage)

    # Locate the class holding _dispatch and analyze all of its methods.
    dispatch: ast.FunctionDef | None = None
    methods: list[ast.FunctionDef] = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        cls_methods = [
            s for s in stmt.body if isinstance(s, ast.FunctionDef)
        ]
        if any(m.name == DISPATCH_METHOD for m in cls_methods):
            methods = cls_methods
            dispatch = next(
                m for m in cls_methods if m.name == DISPATCH_METHOD
            )
            break
    if dispatch is None:
        analysis.note(
            tree,
            f"no {DISPATCH_METHOD} method found alongside {TXN_CLASS}: the "
            "lifecycle verifier cannot see the stage machine",
        )
        return analysis

    # Handled stages, and stage assignments anywhere (`v.stage = X`
    # marks X pooled: only pool-domain objects are re-staged in place).
    for _stage, _body, node in _iter_stage_branches(dispatch, index):
        analysis.handled.add(_stage)
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and node.targets[0].attr == "stage"
        ):
            stage = index.stage_of(node.value)
            if stage is not None:
                analysis.pooled.add(stage)

    analysis.pooled -= analysis.warp_owned

    for stage in sorted(analysis.stages):
        if stage not in analysis.handled:
            analysis.note(
                dispatch,
                f"stage {TXN_CLASS}.{stage} is declared but never handled "
                f"in {DISPATCH_METHOD}: transactions entering it would hit "
                "the unknown-stage backstop at runtime",
            )

    # Per-branch lifecycle interpretation of _dispatch.
    txn_param = next(
        (a.arg for a in dispatch.args.args if a.arg not in ("self", "cls")),
        None,
    )
    for stage, body, _if_node in _iter_stage_branches(dispatch, index):
        pooled = stage in analysis.pooled
        checker = _FunctionChecker(
            f"{DISPATCH_METHOD}[{stage}]",
            dispatch.args,
            body,
            index,
            analysis,
            context_stage=stage,
            forbid_release_of=(
                txn_param if stage in analysis.warp_owned else None
            ),
        )
        checker.run()
        if pooled and txn_param is not None:
            for env, terminal in checker.returns:
                var = env.get(txn_param)
                if var is not None and var.state == _OWNED:
                    analysis.note(
                        terminal,
                        f"leak: this path leaves stage {stage} with "
                        f"{txn_param!r} still owned — it is neither released "
                        "to the pool, parked, re-pushed, nor handed off, so "
                        "the free list silently degrades to per-event "
                        "allocation",
                    )

    # Helper methods: ownership violations only (no leak obligations —
    # helpers may legitimately keep or receive ownership).
    for method in methods:
        if method.name == DISPATCH_METHOD:
            continue
        _FunctionChecker(
            method.name, method.args, method.body, index, analysis
        ).run()

    return analysis


@register
class LifecycleRule(LintRule):
    id = "R009"
    name = "txn-lifecycle"
    rationale = (
        "pooled MemTxn/DRAMRequest objects must be released exactly once "
        "per terminal path and never touched after release/park"
    )
    severity = Severity.ERROR

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module != ENGINE_MODULE:
            return
        analysis = analyze_engine(ctx.tree)
        for line, col, message in analysis.findings:
            yield self.finding(ctx, None, message, line=line, col=col)
