"""Per-file analysis caching, keyed by content hash.

Whole-program analysis re-parses nothing that has not changed: every
file's semantic summary (see :mod:`repro.devtools.semantic.summary`) is
stored under the SHA-256 of its source text, so a CI lint of a branch
that touched two files re-summarizes two files.  The cache is a single
JSON document — small enough (one compact summary per source file) that
read-modify-write beats a file-per-entry scheme, and trivially safe to
delete at any time.

The store lives under ``<root>/.lint-cache/`` (git-ignored), never under
``results/`` — the results tree is reserved for simulation products and
guarded by the R006 atomic-write rule.  Writes still go through a
temp-file + :func:`os.replace` so a crashed lint run cannot leave a
truncated cache behind.

The cache key is *(content digest, analysis versions)*: editing a
source file invalidates that file's entry (by digest), and editing an
*analysis* — the summary extractor or any rule whose inputs are cached
— invalidates the whole store via the ``analysis_versions`` fingerprint
(a dict of per-component version ints; see
:func:`repro.devtools.semantic.graph.analysis_versions`).  Before this
fingerprint existed, bumping a rule served stale findings until the
source files happened to change.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

__all__ = ["AnalysisCache", "content_digest", "CACHE_VERSION"]

#: Bump when the summary schema changes; stale-version caches are
#: discarded wholesale rather than risking a mixed-schema read.
CACHE_VERSION = 1


def content_digest(source: str) -> str:
    """SHA-256 of the file's source text (the cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class AnalysisCache:
    """A content-addressed store of per-file semantic summaries.

    ``get``/``put`` operate on digests; :meth:`save` persists atomically.
    A missing, unreadable, corrupt, or version-mismatched cache file
    degrades to an empty cache — the analysis is then merely slower,
    never wrong.
    """

    def __init__(
        self,
        path: Path | None,
        versions: dict[str, int] | None = None,
    ) -> None:
        #: ``None`` disables persistence (used by unit tests and
        #: ``--no-semantic-cache``); lookups then always miss.
        self.path = path
        #: Per-analysis version fingerprint; a stored cache written
        #: under a different fingerprint is discarded wholesale.
        self.versions = dict(versions) if versions else {}
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, Any] = {}
        self._dirty = False
        if path is not None and path.is_file():
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                doc = None
            if (
                isinstance(doc, dict)
                and doc.get("version") == CACHE_VERSION
                and doc.get("analysis_versions", {}) == self.versions
            ):
                entries = doc.get("entries")
                if isinstance(entries, dict):
                    self._entries = entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str) -> Any | None:
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, digest: str, summary: Any) -> None:
        self._entries[digest] = summary
        self._dirty = True

    def prune(self, live_digests: set[str]) -> None:
        """Drop entries for content no longer present in the tree, so
        the cache tracks the working set instead of growing forever."""
        dead = [d for d in self._entries if d not in live_digests]
        for d in dead:
            del self._entries[d]
            self._dirty = True

    def save(self) -> None:
        """Persist the cache (atomic replace; best-effort on failure)."""
        if self.path is None or not self._dirty:
            return
        doc = {
            "version": CACHE_VERSION,
            "analysis_versions": self.versions,
            "entries": self._entries,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(doc, fh, separators=(",", ":"))
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # A read-only checkout (CI artifact stages) loses caching,
            # not correctness.
            return
        self._dirty = False
