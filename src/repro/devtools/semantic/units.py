"""R012 unit-confusion: flow-sensitive unit inference over the quantity algebra.

The simulator's fidelity rests on a small dimensional algebra: cycles,
DRAM lines, bytes, instructions, wall-clock time, and the dimensionless
ratios derived from them (IPC = inst/cycle, BW as a fraction of peak,
CMR, EB = BW/CMR).  This pass assigns a *unit* to every expression it
can, by propagating from three seed sources:

* ``typing.Annotated`` aliases from :mod:`repro.units` on parameters,
  returns, dataclass fields and ``self.x: Cycles = ...`` declarations
  (harvested into each :class:`FileSummary`'s ``unit_sigs`` and resolved
  cross-module through the :class:`ProjectGraph` import maps);
* name conventions (``*_cycles``, ``*_bw``, ``*_frac``, ...) as a weak
  fallback where no annotation exists;
* a table of known external signatures (``time.perf_counter`` is wall
  seconds).

Units flow through assignments, arithmetic, calls (annotated return
types, including constructors — a value of a known class exposes that
class's annotated attribute units) and containers (``list[Cycles]``
elements survive ``sum``/iteration/indexing).  The algebra:

* ``+``/``-``/comparisons require the same dimensions — ``Cycles +
  WallSeconds``, ``Bytes + Lines`` or ``FractionOfPeak > LinesPerCycle``
  is an **error** (R012; cross-clock mixes are reported as R013 by
  :mod:`repro.devtools.semantic.clockdomains`);
* ``*`` and ``/`` *derive* compound units — the conversion table is the
  dimension arithmetic itself (``Lines * BytesPerLine -> Bytes``,
  ``Lines / Cycles -> LinesPerCycle``, ``Insts / Cycles -> Ipc``);
* numeric literals adapt to either side; an unknown operand silences
  the check (the pass under-approximates: it never guesses).

``FractionOfPeak`` is dimensionless with a tag: it mixes freely with
other dimensionless ratios (so ``bw / cmr`` stays consistent with the
conservation identity ``bw * cycles * peak == dram_lines``) but can
never be added to or compared against any *dimensioned* quantity.

Scope: only modules under :data:`UNIT_SCOPE` are checked — the layers
that own the paper's arithmetic — so unrelated code can use these
variable names freely.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import LintRule, register
from repro.devtools.semantic.graph import ProjectGraph, graph_for_project

if TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.context import ProjectContext

__all__ = [
    "ANALYSIS_VERSION",
    "UNIT_SCOPE",
    "Unit",
    "UnitConfusionRule",
    "units_analysis",
    "units_graph_doc",
]

#: Version of the unit-inference pass; participates in the
#: AnalysisCache key so editing this analysis invalidates cached
#: summaries (the harvested ``unit_sigs``) instead of serving stale
#: results.
ANALYSIS_VERSION = 1

#: Module prefixes whose files are unit-checked.
UNIT_SCOPE = ("repro.sim", "repro.metrics", "repro.core", "repro.obs")


# --------------------------------------------------------------------------
# The unit algebra
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Unit:
    """A product of base dimensions with integer exponents.

    ``dims`` is a sorted tuple of ``(dimension, exponent)`` pairs;
    ``frac`` tags the dimensionless fraction-of-peak family; ``scalar``
    marks a bare numeric literal (adapts to any unit under ``+``/``-``/
    comparison, acts dimensionless under ``*``/``/``).
    """

    dims: tuple[tuple[str, int], ...] = ()
    frac: bool = False
    scalar: bool = False

    def __str__(self) -> str:
        if self.scalar:
            return "number"
        if not self.dims:
            return "frac-of-peak" if self.frac else "1"
        num = [
            d if e == 1 else f"{d}^{e}" for d, e in self.dims if e > 0
        ]
        den = [
            d if e == -1 else f"{d}^{-e}" for d, e in self.dims if e < 0
        ]
        head = "·".join(num) if num else "1"
        return f"{head}/{'·'.join(den)}" if den else head


def _u(*dims: tuple[str, int], frac: bool = False) -> Unit:
    return Unit(dims=tuple(sorted(d for d in dims if d[1])), frac=frac)


SCALAR = Unit(scalar=True)
DIMLESS = _u()
FRAC_OF_PEAK = _u(frac=True)
CYCLES = _u(("cycle", 1))
WALL = _u(("wall", 1))
TICKS = _u(("tick", 1))
BYTES = _u(("byte", 1))
LINES = _u(("line", 1))
INSTS = _u(("inst", 1))

#: Annotation alias name (in :mod:`repro.units`) -> unit.
VOCAB: dict[str, Unit] = {
    "Cycles": CYCLES,
    "WholeCycles": CYCLES,
    "WallSeconds": WALL,
    "WallMicroseconds": WALL,
    "TraceTicks": TICKS,
    "Bytes": BYTES,
    "Lines": LINES,
    "Insts": INSTS,
    "Count": DIMLESS,
    "Fraction": DIMLESS,
    "FractionOfPeak": FRAC_OF_PEAK,
    "Ipc": _u(("inst", 1), ("cycle", -1)),
    "InstsPerCycle": _u(("inst", 1), ("cycle", -1)),
    "LinesPerCycle": _u(("line", 1), ("cycle", -1)),
    "BytesPerLine": _u(("byte", 1), ("line", -1)),
    "BytesPerCycle": _u(("byte", 1), ("cycle", -1)),
}

#: Exact variable/attribute names -> unit (convention fallback).
_EXACT_NAMES: dict[str, Unit] = {
    "cycles": CYCLES,
    "bw": FRAC_OF_PEAK,
    "eb": FRAC_OF_PEAK,
    "ipc": VOCAB["Ipc"],
    "cmr": DIMLESS,
    "dram_lines": LINES,
}

#: Name suffixes -> unit (convention fallback); first match wins.
_SUFFIXES: tuple[tuple[str, Unit], ...] = (
    ("_cycles", CYCLES),
    ("_latency", CYCLES),
    ("_bw", FRAC_OF_PEAK),
    ("_frac", FRAC_OF_PEAK),
    ("_eb", FRAC_OF_PEAK),
    ("_ipc", VOCAB["Ipc"]),
    ("_bytes", BYTES),
    ("_lines", LINES),
    ("_insts", INSTS),
    ("_us", WALL),
    ("_s", WALL),
)

#: External callables with known return units.
_EXTERNAL_SIGS: dict[str, Unit] = {
    "time.perf_counter": WALL,
    "time.monotonic": WALL,
    "time.time": WALL,
}


def convention_unit(name: str) -> Unit | None:
    """The unit a bare name suggests, or None."""
    unit = _EXACT_NAMES.get(name)
    if unit is not None:
        return unit
    for suffix, sunit in _SUFFIXES:
        if name.endswith(suffix) and len(name) > len(suffix):
            return sunit
    return None


def _merge_dims(a: Unit, b: Unit, sign: int) -> Unit:
    acc = dict(a.dims)
    for dim, exp in b.dims:
        acc[dim] = acc.get(dim, 0) + sign * exp
    dims = tuple(sorted((d, e) for d, e in acc.items() if e))
    frac = (a.frac or b.frac) and not dims
    return Unit(dims=dims, frac=frac)


def mul_units(a: Unit, b: Unit) -> Unit:
    if a.scalar:
        return b
    if b.scalar:
        return a
    return _merge_dims(a, b, 1)


def div_units(a: Unit, b: Unit) -> Unit:
    if b.scalar:
        return a
    if a.scalar:
        a = DIMLESS
    return _merge_dims(a, b, -1)


def compatible(a: Unit, b: Unit) -> bool:
    """May ``a`` and ``b`` meet under ``+``/``-``/comparison?"""
    return a.scalar or b.scalar or a.dims == b.dims


def clock_domains(unit: Unit) -> set[str]:
    """Which clock domains a unit touches ({'sim'}, {'wall'}, ...)."""
    domains: set[str] = set()
    for dim, _exp in unit.dims:
        if dim == "cycle":
            domains.add("sim")
        elif dim == "wall":
            domains.add("wall")
    return domains


def crosses_clock(a: Unit, b: Unit) -> bool:
    """True when an operation over ``a`` and ``b`` mixes sim cycles
    with wall-clock time (in either direction)."""
    da, db = clock_domains(a), clock_domains(b)
    return bool(({"sim"} & da and {"wall"} & db)
                or ({"wall"} & da and {"sim"} & db))


# --------------------------------------------------------------------------
# Abstract values
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AV:
    """What the checker knows about one expression's value.

    At most one of the facets is usually set: ``unit`` for scalar
    quantities, ``elem`` for containers of quantities (the abstract
    value obtained by indexing/iterating/summing), ``cls`` for instances
    of a project class with annotated attributes (``"module.ClassName"``).
    """

    unit: Unit | None = None
    elem: "AV | None" = None
    cls: str | None = None
    is_map: bool = False


UNKNOWN = AV()

#: Container annotation heads whose single argument is the element.
_SEQ_HEADS = frozenset({
    "list", "List", "set", "Set", "frozenset", "FrozenSet",
    "Sequence", "Iterable", "Iterator", "Collection", "MutableSequence",
    "deque", "Deque",
})
_MAP_HEADS = frozenset({
    "dict", "Dict", "Mapping", "MutableMapping", "defaultdict",
    "DefaultDict", "OrderedDict",
})
_WRAP_HEADS = frozenset({"Optional", "Final", "ClassVar", "Annotated"})


def _ann_tail(node: ast.expr) -> str | None:
    """Trailing identifier of a Name/Attribute annotation head."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# --------------------------------------------------------------------------
# The project-wide signature world
# --------------------------------------------------------------------------


class UnitWorld:
    """Resolved unit signatures for one project graph.

    Wraps the per-file ``unit_sigs`` harvested into each
    :class:`FileSummary` and resolves annotation *strings* against the
    defining module's import map: aliases from :mod:`repro.units`
    become units, project class names become attribute tables, and
    container annotations become element values.
    """

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self._ann_cache: dict[tuple[str, str], AV] = {}
        self._cls_cache: dict[tuple[str, str], str | None] = {}

    # -- class resolution ----------------------------------------------

    def class_key(self, module: str, dotted: str) -> str | None:
        """Resolve a class name used in ``module`` to ``"mod.Cls"``."""
        memo_key = (module, dotted)
        if memo_key in self._cls_cache:
            return self._cls_cache[memo_key]
        result = self._class_key_uncached(module, dotted)
        self._cls_cache[memo_key] = result
        return result

    def _class_key_uncached(self, module: str, dotted: str) -> str | None:
        summary = self.graph.modules.get(module)
        head, _, tail = dotted.partition(".")
        # Same-module class.
        if not tail and summary is not None and head in summary.classes:
            return f"{module}.{head}"
        if summary is None or head not in summary.imports:
            return None
        target = summary.imports[head]
        dotted = f"{target}.{tail}" if tail else target
        # Chase one facade hop at most: "pkg.Cls" re-exported from
        # "pkg.impl.Cls".
        for _hop in range(4):
            owner, _, cls = dotted.rpartition(".")
            owner_summary = self.graph.modules.get(owner)
            if owner_summary is not None:
                if cls in owner_summary.classes:
                    return f"{owner}.{cls}"
                if cls in owner_summary.imports:
                    dotted = owner_summary.imports[cls]
                    continue
            return None
        return None

    # -- annotation resolution -----------------------------------------

    def ann_av(self, module: str, text: str | None) -> AV:
        """Abstract value of an annotation string in ``module``."""
        if not text:
            return UNKNOWN
        key = (module, text)
        cached = self._ann_cache.get(key)
        if cached is not None:
            return cached
        try:
            node = ast.parse(text, mode="eval").body
        except SyntaxError:
            av = UNKNOWN
        else:
            av = self._ann_node(module, node)
        self._ann_cache[key] = av
        return av

    def _ann_node(self, module: str, node: ast.expr) -> AV:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Quoted forward reference: re-parse the string.
            return self.ann_av(module, node.value)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            # "X | None" — take whichever side is not None.
            for side in (node.left, node.right):
                if not (isinstance(side, ast.Constant) and side.value is None):
                    return self._ann_node(module, side)
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            head = _ann_tail(node.value)
            sl = node.slice
            if head in _WRAP_HEADS:
                inner = sl.elts[0] if isinstance(sl, ast.Tuple) else sl
                return self._ann_node(module, inner)
            if head in _SEQ_HEADS:
                inner = sl
                if isinstance(sl, ast.Tuple):
                    # tuple[X, ...] homogeneous; anything else: unknown.
                    if (
                        len(sl.elts) == 2
                        and isinstance(sl.elts[1], ast.Constant)
                        and sl.elts[1].value is Ellipsis
                    ):
                        inner = sl.elts[0]
                    else:
                        return UNKNOWN
                elem = self._ann_node(module, inner)
                if elem is UNKNOWN:
                    return UNKNOWN
                return AV(elem=elem)
            if head == "tuple" or head == "Tuple":
                if (
                    isinstance(sl, ast.Tuple)
                    and len(sl.elts) == 2
                    and isinstance(sl.elts[1], ast.Constant)
                    and sl.elts[1].value is Ellipsis
                ):
                    elem = self._ann_node(module, sl.elts[0])
                    if elem is not UNKNOWN:
                        return AV(elem=elem)
                return UNKNOWN
            if head in _MAP_HEADS and isinstance(sl, ast.Tuple) \
                    and len(sl.elts) == 2:
                value = self._ann_node(module, sl.elts[1])
                if value is UNKNOWN:
                    return UNKNOWN
                return AV(elem=value, is_map=True)
            return UNKNOWN
        tail = _ann_tail(node)
        if tail is None:
            return UNKNOWN
        summary = self.graph.modules.get(module)
        if summary is not None and isinstance(node, ast.Name) \
                and node.id in summary.imports:
            target = summary.imports[node.id]
            owner, _, leaf = target.rpartition(".")
            if owner == "repro.units" and leaf in VOCAB:
                return AV(unit=VOCAB[leaf])
            key = self.class_key(module, node.id)
            if key is not None:
                return AV(cls=key)
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted is not None:
                key = self.class_key(module, dotted)
                if key is not None:
                    return AV(cls=key)
        if tail in VOCAB:
            # Bare vocabulary name (unimported: fixtures, docstrings).
            return AV(unit=VOCAB[tail])
        key = self.class_key(module, tail)
        if key is not None:
            return AV(cls=key)
        return UNKNOWN

    # -- signature lookups ---------------------------------------------

    def _sigs(self, module: str) -> dict[str, Any]:
        summary = self.graph.modules.get(module)
        return summary.unit_sigs if summary is not None else {}

    def param_av(self, module: str, qualname: str, param: str) -> AV:
        sig = self._sigs(module).get("functions", {}).get(qualname)
        if sig is None:
            return UNKNOWN
        return self.ann_av(module, sig.get("params", {}).get(param))

    def return_av(self, key: str) -> AV:
        """Declared return value of ``"module.qualname"``."""
        module, qualname = self._split_key(key)
        if module is None:
            return UNKNOWN
        sig = self._sigs(module).get("functions", {}).get(qualname)
        if sig is None:
            return UNKNOWN
        return self.ann_av(module, sig.get("returns"))

    def attr_av(self, class_key: str, attr: str) -> AV:
        """Declared (or convention) unit of ``Cls.attr``."""
        owner, _, cls = class_key.rpartition(".")
        attrs = self._sigs(owner).get("attrs", {}).get(cls, {})
        text = attrs.get(attr)
        if text is not None:
            av = self.ann_av(owner, text)
            if av is not UNKNOWN:
                return av
        unit = convention_unit(attr)
        return AV(unit=unit) if unit is not None else UNKNOWN

    def const_av(self, module: str, name: str) -> AV:
        consts = self._sigs(module).get("consts", {})
        text = consts.get(name)
        if text is None:
            return UNKNOWN
        if text == "__scalar__":
            return AV(unit=SCALAR)
        return self.ann_av(module, text)

    def _split_key(self, key: str) -> tuple[str | None, str]:
        """Split ``"module.qualname"`` on the module boundary."""
        parts = key.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module in self.graph.modules:
                return module, ".".join(parts[cut:])
        return None, key


def _dotted(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# --------------------------------------------------------------------------
# The flow-sensitive checker
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class UnitFinding:
    """One raw finding, before rule packaging."""

    kind: str  #: "unit" (R012) or "clock" (R013)
    path: str
    line: int
    col: int
    message: str


#: Ops R012 checks for dimension equality.
_ADDITIVE = (ast.Add, ast.Sub)
#: Comparison ops that demand commensurable operands.
_ORDERED_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)
#: Ops R013 scans for cross-clock operands (any arithmetic counts:
#: even cycles *divided by* wall seconds needs a declared boundary).
_CLOCK_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)

#: Modules where cross-clock arithmetic is a *declared* conversion
#: boundary (Chrome export maps sim cycles onto the trace's µs axis:
#: 1 cycle = 1 µs).
CLOCK_BOUNDARY_MODULES = frozenset({"repro.obs.chrome"})

#: Function keys ("module.qualname") allowed to mix clocks: the
#: tracer's two-clock event constructor and its wall-span plumbing.
CLOCK_BOUNDARY_FUNCS = frozenset({
    "repro.obs.trace.Tracer.complete",
    "repro.obs.trace.Event.__init__",
})

_OP_SYMBOL = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "//", ast.Mod: "%", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=", ast.Eq: "==", ast.NotEq: "!=",
}

#: Builtins whose result keeps the (sole) argument's unit.
_PASSTHROUGH_BUILTINS = frozenset({"float", "int", "abs", "round"})


class _Checker:
    """Walk one module's functions, tracking units per local name."""

    def __init__(self, world: UnitWorld, module: str, path: str,
                 findings: list[UnitFinding]) -> None:
        self.world = world
        self.module = module
        self.path = path
        self.findings = findings
        self.summary = world.graph.modules.get(module)
        self._qualname = ""
        self._cls: str | None = None
        self._declared_return = UNKNOWN
        self._module_env: dict[str, AV] = {}

    # -- entry ----------------------------------------------------------

    def check_module(self, tree: ast.Module) -> None:
        if self.summary is not None:
            consts = self.summary.unit_sigs.get("consts", {})
            for name in consts:
                self._module_env[name] = self.world.const_av(
                    self.module, name
                )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.check_function(stmt, stmt.name, None)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        self.check_function(
                            sub, f"{stmt.name}.{sub.name}", stmt.name
                        )

    def check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                       qualname: str, cls: str | None,
                       outer_env: dict[str, AV] | None = None) -> None:
        prev = (self._qualname, self._cls, self._declared_return)
        self._qualname, self._cls = qualname, cls
        env: dict[str, AV] = dict(outer_env or ())
        args = node.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for i, arg in enumerate(all_args):
            if i == 0 and cls is not None and arg.arg in ("self", "cls"):
                env[arg.arg] = AV(cls=f"{self.module}.{cls}")
                continue
            av = UNKNOWN
            if arg.annotation is not None:
                av = self._ann(arg.annotation)
            if av is UNKNOWN:
                unit = convention_unit(arg.arg)
                av = AV(unit=unit) if unit is not None else UNKNOWN
            env[arg.arg] = av
        self._declared_return = (
            self._ann(node.returns) if node.returns is not None else UNKNOWN
        )
        self._exec_block(node.body, env)
        self._qualname, self._cls, self._declared_return = prev

    def _ann(self, node: ast.expr) -> AV:
        return self.world._ann_node(self.module, node)

    # -- statements -----------------------------------------------------

    def _exec_block(self, body: list[ast.stmt],
                    env: dict[str, AV]) -> None:
        for stmt in body:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.stmt, env: dict[str, AV]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, stmt.value, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared = self._ann(stmt.annotation)
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                self._check_store(declared, value, stmt.value)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = (
                    declared if declared is not UNKNOWN else UNKNOWN
                )
        elif isinstance(stmt, ast.AugAssign):
            target_av = self._eval(stmt.target, env)
            value = self._eval(stmt.value, env)
            result = self._combine(stmt.op, target_av, value, stmt)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = result
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env)
                self._check_store(self._declared_return, value, stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env, else_env = dict(env), dict(env)
            self._exec_block(stmt.body, then_env)
            self._exec_block(stmt.orelse, else_env)
            self._merge_into(env, then_env, else_env)
        elif isinstance(stmt, ast.For):
            iter_av = self._eval(stmt.iter, env)
            body_env = dict(env)
            elem = UNKNOWN
            if iter_av.elem is not None and not iter_av.is_map:
                elem = iter_av.elem
            self._bind(stmt.target, elem, None, body_env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge_into(env, env, body_env)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            self._exec_block(stmt.orelse, body_env)
            self._merge_into(env, env, body_env)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, UNKNOWN, None, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env)
            handler_envs = []
            for handler in stmt.handlers:
                h_env = dict(env)
                if handler.name:
                    h_env[handler.name] = UNKNOWN
                self._exec_block(handler.body, h_env)
                handler_envs.append(h_env)
            self._exec_block(stmt.orelse, body_env)
            for h_env in handler_envs:
                self._merge_into(body_env, body_env, h_env)
            env.clear()
            env.update(body_env)
            self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.check_function(
                stmt, f"{self._qualname}.{stmt.name}", self._cls,
                outer_env=env,
            )
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env)
            if stmt.msg is not None:
                self._eval(stmt.msg, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Pass/Break/Continue/Import/Global/Nonlocal/ClassDef: nothing
        # to track (nested classes are out of the v1 scope).

    def _bind(self, target: ast.expr, value: AV,
              value_node: ast.expr | None, env: dict[str, AV]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            if (
                value_node is not None
                and isinstance(value_node, ast.Tuple)
                and len(value_node.elts) == len(target.elts)
            ):
                for t, v in zip(target.elts, value_node.elts):
                    self._bind(t, self._eval(v, env), v, env)
            else:
                elem = value.elem if value.elem is not None else UNKNOWN
                for t in target.elts:
                    self._bind(t, elem, None, env)
        elif isinstance(target, ast.Attribute):
            declared = self._attr_declared(target, env)
            if declared is not UNKNOWN and value_node is not None:
                self._check_store(declared, value, value_node)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, UNKNOWN, None, env)
        # Subscript stores: untyped, nothing to check.

    def _attr_declared(self, node: ast.Attribute,
                       env: dict[str, AV]) -> AV:
        """Declared unit of an attribute store target (``self.x = ...``)."""
        receiver = self._eval(node.value, env)
        if receiver.cls is not None:
            owner, _, cls = receiver.cls.rpartition(".")
            attrs = self.world._sigs(owner).get("attrs", {}).get(cls, {})
            text = attrs.get(node.attr)
            if text is not None:
                return self.world.ann_av(owner, text)
        return UNKNOWN

    def _merge_into(self, dest: dict[str, AV], a: dict[str, AV],
                    b: dict[str, AV]) -> None:
        merged = {
            name: av for name, av in a.items() if b.get(name) == av
        }
        dest.clear()
        dest.update(merged)

    # -- expressions ----------------------------------------------------

    def _eval(self, node: ast.expr, env: dict[str, AV]) -> AV:
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                return UNKNOWN
            return AV(unit=SCALAR)
        if isinstance(node, ast.Name):
            av = env.get(node.id)
            if av is not None and av is not UNKNOWN:
                return av
            av = self._module_env.get(node.id)
            if av is not None and av is not UNKNOWN:
                return av
            unit = convention_unit(node.id)
            return AV(unit=unit) if unit is not None else UNKNOWN
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            return self._combine(node.op, left, right, node)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, env)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return operand
            return UNKNOWN
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, env)
                if isinstance(op, _ORDERED_CMP):
                    self._check_pair(op, left, right, node)
                left = right
            return UNKNOWN
        if isinstance(node, ast.BoolOp):
            avs = [self._eval(v, env) for v in node.values]
            return self._join(avs)
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return self._join([
                self._eval(node.body, env), self._eval(node.orelse, env)
            ])
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value, env)
            if isinstance(node.slice, ast.Slice):
                for part in (node.slice.lower, node.slice.upper,
                             node.slice.step):
                    if part is not None:
                        self._eval(part, env)
                # A slice of a container is the same kind of container.
                return value if value.elem is not None else UNKNOWN
            self._eval(node.slice, env)
            return value.elem if value.elem is not None else UNKNOWN
        if isinstance(node, (ast.List, ast.Set, ast.Tuple)):
            elems = [self._eval(e, env) for e in node.elts]
            uniform = self._uniform(elems)
            return AV(elem=uniform) if uniform is not None else UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key, env)
            values = [self._eval(v, env) for v in node.values]
            uniform = self._uniform(values)
            if uniform is not None:
                return AV(elem=uniform, is_map=True)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = dict(env)
            self._exec_comprehensions(node.generators, comp_env)
            elt = self._eval(node.elt, comp_env)
            if elt is not UNKNOWN:
                return AV(elem=elt)
            return UNKNOWN
        if isinstance(node, ast.DictComp):
            comp_env = dict(env)
            self._exec_comprehensions(node.generators, comp_env)
            self._eval(node.key, comp_env)
            value = self._eval(node.value, comp_env)
            if value is not UNKNOWN:
                return AV(elem=value, is_map=True)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, ast.JoinedStr):
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    self._eval(part.value, env)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            lam_env = dict(env)
            for arg in node.args.args:
                lam_env[arg.arg] = UNKNOWN
            self._eval(node.body, lam_env)
            return UNKNOWN
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            self._eval(node.value, env)
            return UNKNOWN
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._eval(node.value, env)
            return UNKNOWN
        return UNKNOWN

    def _exec_comprehensions(self, generators: list[ast.comprehension],
                             env: dict[str, AV]) -> None:
        for gen in generators:
            iter_av = self._eval(gen.iter, env)
            elem = UNKNOWN
            if iter_av.elem is not None and not iter_av.is_map:
                elem = iter_av.elem
            self._bind(gen.target, elem, None, env)
            for cond in gen.ifs:
                self._eval(cond, env)

    def _eval_attribute(self, node: ast.Attribute,
                        env: dict[str, AV]) -> AV:
        # Module-level name accessed through an imported module alias?
        if isinstance(node.value, ast.Name) and self.summary is not None:
            target = self.summary.imports.get(node.value.id)
            if target is not None and target in self.world.graph.modules \
                    and node.value.id not in env:
                av = self.world.const_av(target, node.attr)
                if av is not UNKNOWN:
                    return av
        receiver = self._eval(node.value, env)
        if receiver.cls is not None:
            return self.world.attr_av(receiver.cls, node.attr)
        unit = convention_unit(node.attr)
        return AV(unit=unit) if unit is not None else UNKNOWN

    def _eval_call(self, node: ast.Call, env: dict[str, AV]) -> AV:
        arg_avs = [self._eval(a, env) for a in node.args]
        for kw in node.keywords:
            self._eval(kw.value, env)
        func = node.func
        name = _dotted(func)
        if name is None:
            if isinstance(func, (ast.Attribute, ast.Call, ast.Subscript)):
                self._eval(func, env)
            return UNKNOWN
        head, _, tail = name.partition(".")
        # Builtins with unit-transparent results.
        if not tail and head in _PASSTHROUGH_BUILTINS and arg_avs:
            return AV(unit=arg_avs[0].unit) if arg_avs[0].unit else UNKNOWN
        if not tail and head in ("min", "max"):
            if len(arg_avs) == 1:
                container = arg_avs[0]
                if container.elem is not None and not container.is_map:
                    return container.elem
                return UNKNOWN
            return self._join(arg_avs, strict=True)
        if not tail and head == "sum" and arg_avs:
            container = arg_avs[0]
            if container.elem is not None and not container.is_map:
                return container.elem
            return UNKNOWN
        if not tail and head == "len":
            return AV(unit=DIMLESS)
        # Known external signatures (time.perf_counter -> wall seconds).
        if self.summary is not None and tail:
            target = self.summary.imports.get(head)
            if target is not None:
                dotted = f"{target}.{tail}"
                if dotted in _EXTERNAL_SIGS:
                    return AV(unit=_EXTERNAL_SIGS[dotted])
        # Method call on a receiver of known class.
        if isinstance(func, ast.Attribute):
            receiver = self._eval(func.value, env)
            if receiver.cls is not None:
                return self.world.return_av(f"{receiver.cls}.{func.attr}")
        # Constructor of a project class.
        cls_key = self.world.class_key(self.module, name)
        if cls_key is not None:
            return AV(cls=cls_key)
        # Project function/method via the call graph.
        resolved = self.world.graph.resolve_call(
            self.module, self._qualname, name
        )
        if resolved is not None:
            return self.world.return_av(resolved)
        return UNKNOWN

    # -- op checking ----------------------------------------------------

    def _uniform(self, avs: list[AV]) -> AV | None:
        """The shared abstract value of a literal collection's elements,
        or None when they are unknown or disagree."""
        joined = self._join(avs)
        return joined if joined is not UNKNOWN else None

    def _join(self, avs: list[AV], strict: bool = False) -> AV:
        """Abstract value of 'one of these' (BoolOp, IfExp, min/max).

        Scalars are absorbed by a known unit; any disagreement (or, when
        ``strict`` and something is unknown) degrades to UNKNOWN.
        """
        result: AV | None = None
        for av in avs:
            if av.unit is not None and av.unit.scalar:
                continue
            if av is UNKNOWN:
                if strict:
                    return UNKNOWN
                continue
            if result is None:
                result = av
            elif result != av:
                return UNKNOWN
        return result if result is not None else UNKNOWN

    def _at_clock_boundary(self) -> bool:
        if self.module in CLOCK_BOUNDARY_MODULES:
            return True
        return f"{self.module}.{self._qualname}" in CLOCK_BOUNDARY_FUNCS

    def _report(self, kind: str, node: ast.AST, message: str) -> None:
        self.findings.append(UnitFinding(
            kind=kind,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        ))

    def _check_store(self, declared: AV, value: AV,
                     node: ast.AST) -> None:
        """Check a store into a declared target (AnnAssign, typed
        attribute, return against the annotated return type)."""
        du, vu = declared.unit, value.unit
        if du is None or vu is None:
            return
        if crosses_clock(du, vu):
            if not self._at_clock_boundary():
                self._report(
                    "clock", node,
                    f"clock-domain mix: storing '{vu}' into a target "
                    f"declared '{du}' crosses the sim-cycle / wall-clock "
                    "boundary; convert at a declared boundary "
                    "(repro.obs.chrome) or fix the declaration",
                )
            return
        if not compatible(du, vu):
            self._report(
                "unit", node,
                f"unit confusion: storing '{vu}' into a target declared "
                f"'{du}' — the dimensions disagree (multiply/divide to "
                "convert, or fix the annotation)",
            )

    def _check_pair(self, op: ast.AST, left: AV, right: AV,
                    node: ast.AST) -> None:
        lu, ru = left.unit, right.unit
        if lu is None or ru is None:
            return
        sym = _OP_SYMBOL.get(type(op), "?")
        if crosses_clock(lu, ru):
            if not self._at_clock_boundary():
                self._report(
                    "clock", node,
                    f"clock-domain mix: '{lu}' {sym} '{ru}' combines "
                    "sim-cycle and wall-clock quantities; convert at a "
                    "declared boundary (repro.obs.chrome) or keep the "
                    "domains apart",
                )
            return
        if not compatible(lu, ru):
            self._report(
                "unit", node,
                f"unit confusion: '{lu}' {sym} '{ru}' — operands of "
                f"'{sym}' must have the same dimensions (multiply/divide "
                "to convert, e.g. lines * bytes-per-line -> bytes)",
            )

    def _combine(self, op: ast.AST, left: AV, right: AV,
                 node: ast.AST) -> AV:
        lu, ru = left.unit, right.unit
        if lu is None or ru is None:
            return UNKNOWN
        if isinstance(op, _CLOCK_OPS) and crosses_clock(lu, ru):
            if not self._at_clock_boundary():
                sym = _OP_SYMBOL.get(type(op), "?")
                self._report(
                    "clock", node,
                    f"clock-domain mix: '{lu}' {sym} '{ru}' combines "
                    "sim-cycle and wall-clock quantities; convert at a "
                    "declared boundary (repro.obs.chrome) or keep the "
                    "domains apart",
                )
            return UNKNOWN
        if isinstance(op, _ADDITIVE):
            if not compatible(lu, ru):
                sym = _OP_SYMBOL.get(type(op), "?")
                self._report(
                    "unit", node,
                    f"unit confusion: '{lu}' {sym} '{ru}' — operands of "
                    f"'{sym}' must have the same dimensions "
                    "(multiply/divide to convert, e.g. lines * "
                    "bytes-per-line -> bytes)",
                )
                return UNKNOWN
            return AV(unit=ru if lu.scalar else lu)
        if isinstance(op, ast.Mult):
            return AV(unit=mul_units(lu, ru))
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return AV(unit=div_units(lu, ru))
        if isinstance(op, ast.Mod):
            if compatible(lu, ru):
                return AV(unit=ru if lu.scalar else lu)
            return UNKNOWN
        # Pow, shifts, bitwise, matmul: no unit statement.
        return UNKNOWN


# --------------------------------------------------------------------------
# Project-level orchestration
# --------------------------------------------------------------------------


def _in_scope(module: str | None) -> bool:
    return module is not None and any(
        module == p or module.startswith(p + ".") for p in UNIT_SCOPE
    )


def units_analysis(project: "ProjectContext") -> dict[str, Any]:
    """Run (memoized) unit inference over the project's in-scope files.

    Returns ``{"findings": [UnitFinding, ...], "checked": [module, ...],
    "world": UnitWorld}`` — R012 and R013 split the findings by kind,
    and ``--graph`` dumps the world.
    """
    cached = getattr(project, "_units_analysis", None)
    if cached is not None:
        return cached
    graph = graph_for_project(project)
    world = UnitWorld(graph)
    findings: list[UnitFinding] = []
    checked: list[str] = []
    contexts = [
        ctx for ctx in project.files if _in_scope(ctx.module)
    ]
    contexts.sort(key=lambda ctx: str(ctx.relpath))
    for ctx in contexts:
        checker = _Checker(world, ctx.module, str(ctx.relpath), findings)
        checker.check_module(ctx.tree)
        checked.append(ctx.module)
    result = {"findings": findings, "checked": checked, "world": world}
    project._units_analysis = result
    return result


@register
class UnitConfusionRule(LintRule):
    id = "R012"
    name = "unit-confusion"
    rationale = (
        "bandwidth math must be dimensionally consistent: no adding "
        "cycles to seconds, bytes to lines, or comparing fractions of "
        "peak against absolute rates"
    )
    severity = Severity.ERROR
    scope = "project"
    analysis_version = ANALYSIS_VERSION

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for uf in units_analysis(project)["findings"]:
            if uf.kind != "unit":
                continue
            yield Finding(
                rule=self.id, severity=self.severity, path=uf.path,
                line=uf.line, col=uf.col, message=uf.message,
            )


# --------------------------------------------------------------------------
# --graph artifact
# --------------------------------------------------------------------------


def units_graph_doc(project: "ProjectContext") -> dict[str, Any]:
    """The ``units_graph.json`` document for ``repro lint --graph``.

    Per checked module: the annotation-derived unit signatures
    (functions and class attributes, rendered as dimension formulas)
    plus coverage counts, so reviewers can see exactly which surfaces
    the checker trusts.
    """
    analysis = units_analysis(project)
    world: UnitWorld = analysis["world"]
    graph = world.graph
    modules: dict[str, Any] = {}
    total_fns = annotated_fns = 0
    for module in analysis["checked"]:
        summary = graph.modules.get(module)
        if summary is None:
            continue
        sigs = summary.unit_sigs
        fn_doc: dict[str, Any] = {}
        for qual, sig in sorted(sigs.get("functions", {}).items()):
            params = {
                p: str(av.unit)
                for p, text in sorted(sig.get("params", {}).items())
                if (av := world.ann_av(module, text)).unit is not None
            }
            ret = world.ann_av(module, sig.get("returns"))
            entry: dict[str, Any] = {}
            if params:
                entry["params"] = params
            if ret.unit is not None:
                entry["returns"] = str(ret.unit)
            elif ret.cls is not None:
                entry["returns"] = f"instance:{ret.cls}"
            if entry:
                fn_doc[qual] = entry
        cls_doc: dict[str, Any] = {}
        for cls, attrs in sorted(sigs.get("attrs", {}).items()):
            rendered = {
                a: str(av.unit)
                for a, text in sorted(attrs.items())
                if (av := world.ann_av(module, text)).unit is not None
            }
            if rendered:
                cls_doc[cls] = rendered
        n_fns = len(summary.functions)
        total_fns += n_fns
        annotated_fns += len(fn_doc)
        modules[module] = {
            "functions": fn_doc,
            "classes": cls_doc,
            "functions_total": n_fns,
        }
    by_kind = {"unit": 0, "clock": 0}
    for uf in analysis["findings"]:
        by_kind[uf.kind] = by_kind.get(uf.kind, 0) + 1
    return {
        "version": ANALYSIS_VERSION,
        "vocabulary": {k: str(u) for k, u in sorted(VOCAB.items())},
        "conventions": {
            "exact": {k: str(u) for k, u in sorted(_EXACT_NAMES.items())},
            "suffixes": {s: str(u) for s, u in _SUFFIXES},
        },
        "clock_boundaries": {
            "modules": sorted(CLOCK_BOUNDARY_MODULES),
            "functions": sorted(CLOCK_BOUNDARY_FUNCS),
        },
        "checked_modules": analysis["checked"],
        "coverage": {
            "functions_total": total_fns,
            "functions_with_units": annotated_fns,
        },
        "findings": by_kind,
        "modules": modules,
    }
