"""R014-R016 — whole-program effect & determinism inference.

Every reproduction claim in this tree rests on bit-identical
determinism: golden fixtures, serial-vs-pooled identity, cache hits
keyed by config fingerprints.  R001 polices entropy *syntactically, per
file*; this module infers an **effect signature** for every function in
the project and propagates it transitively over the
:class:`~repro.devtools.semantic.graph.ProjectGraph` call graph, so a
``time.time()`` buried two helpers below a seed computation is found
interprocedurally.

Effect vocabulary (:data:`EFFECT_KINDS`):

``ambient-rng``
    a draw from the process-shared ``random`` / ``numpy.random`` module
    state — unseeded from the simulation's point of view;
``seeded-rng``
    a draw from an explicit stream (``random.Random(seed)``,
    ``np.random.default_rng(seed)``, or an ``rng``-named receiver) —
    deterministic, but *draw-order sensitive*;
``clock`` / ``entropy`` / ``env``
    wall-clock reads, OS entropy-pool reads (``os.urandom``, ``uuid4``,
    ``secrets``, ``SystemRandom``), and environment reads;
``state-mutation``
    in-place mutation or rebinding of module-level state;
``fs-write``
    direct file writes.

Per-function events come from the v3 :class:`~repro.devtools.semantic.
summary.FileSummary` layer (so they are content-hash cached); this
module only joins them over resolved call edges — augmented with
constructor edges (``PBSController(...)`` reaches
``PBSController.__init__``) so policy factories are auditable.

The rules gated on the inference:

* **R014 determinism-taint** — unseeded entropy (``ambient-rng``,
  ``clock``, ``entropy``, ``env``) transitively reaching simulation
  state (any function in ``repro.sim``/``repro.core``/
  ``repro.workloads``), a pool-worker entry point (the producers of
  ``SimResult``), or cache-key/fingerprint computation.  Findings are
  located at the entropy *source* with the full file:line witness
  chain, so one justified ``repro: noqa[R014] -- reason`` comment at
  the source silences every path through it.  ``register_policy`` factories get
  the same audit: user policies run inside the deterministic engine.
* **R015 rng-draw-order** — RNG draws (any stream) performed under
  hash-ordered ``set`` iteration or under wall-clock/env-dependent
  control flow in the simulation layers: the exact hazard the
  fold-equivalence arguments assume away.
* **R016 fingerprint-purity** — every function reachable from
  config-fingerprint / cache-key computation must infer pure; accepted
  debt lives in ``src/repro/devtools/effects_baseline.txt`` and can
  only ratchet down (``repro lint --update-effects-baseline`` re-pins
  it deliberately).

Telemetry boundary: the observability and pool plumbing
(:data:`TELEMETRY_BOUNDARY`) reads clocks and environment by design —
host-side measurement that never feeds back into simulated state.
Clock/entropy/env effects do not propagate *out* of those modules (they
remain visible on the modules' own functions in
``effects_graph.json``); everything else (draws, mutations, writes)
propagates normally.
"""

from __future__ import annotations

from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.devtools.findings import Finding
from repro.devtools.registry import LintRule, register
from repro.devtools.semantic.graph import ProjectGraph, graph_for_project
from repro.devtools.semantic.races import _global_target

if TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.context import ProjectContext
    from repro.devtools.semantic.summary import FileSummary

__all__ = [
    "ANALYSIS_VERSION",
    "EFFECT_KINDS",
    "TAINT_KINDS",
    "DRAW_KINDS",
    "IMPURE_KINDS",
    "TELEMETRY_BOUNDARY",
    "BASELINE_RELPATH",
    "EffectWorld",
    "effects_world_for",
    "effects_graph_doc",
    "validate_effects_graph",
    "update_baseline",
    "EffectTaintRule",
    "DrawOrderRule",
    "FingerprintPurityRule",
]

#: Version of the effect analysis; part of the AnalysisCache key.
ANALYSIS_VERSION = 1

#: kind -> one-line description (also published in effects_graph.json).
EFFECT_KINDS: dict[str, str] = {
    "ambient-rng": "draw from the shared random/np.random module state",
    "seeded-rng": "draw from an explicit seeded stream (order-sensitive)",
    "clock": "wall-clock read (time.*, datetime.now, ...)",
    "entropy": "OS entropy read (os.urandom, uuid4, secrets, SystemRandom)",
    "env": "environment read (os.environ, os.getenv)",
    "state-mutation": "in-place mutation/rebinding of module-level state",
    "fs-write": "direct file write (open-for-write, write_text/bytes)",
}

#: Unseeded-entropy kinds: the R014 taint sources.
TAINT_KINDS = frozenset({"ambient-rng", "clock", "entropy", "env"})

#: Kinds that consume an RNG stream: the R015 draw set.
DRAW_KINDS = frozenset({"ambient-rng", "seeded-rng"})

#: Kinds that make a function impure for R016 fingerprint purity.
#: (``seeded-rng`` is excluded: a seeded draw is a deterministic
#: function of the config.)
IMPURE_KINDS = frozenset({
    "ambient-rng", "clock", "entropy", "env", "state-mutation", "fs-write",
})

#: Host-side measurement/plumbing modules: clock/entropy/env read there
#: is instrumentation of the run, not input to it, and does not
#: propagate to callers.  Kept deliberately short — a module earns its
#: place here only when its entropy can never reach simulated state.
TELEMETRY_BOUNDARY = frozenset({
    "repro.exec.pool",      # worker timing, REPRO_JOBS sizing
    "repro.obs.trace",      # span timestamps
    "repro.obs.metrics",    # timer instruments
    "repro.obs.live",       # stream heartbeats
    "repro.obs.dashboard",  # render clock
    "repro.obs.chrome",     # trace-viewer timestamps
    "repro.obs.bench",      # benchmark timing
    "repro.obs.io",         # uuid-named temp files (atomic replace)
})

#: Effect kinds stopped at the telemetry boundary.
_BOUNDARY_MASKED = frozenset({"clock", "entropy", "env"})

#: Simulation-layer module prefixes (R014 sinks, R015 scope).
_SIM_LAYERS = ("repro.sim", "repro.core", "repro.workloads")

#: Function-key suffixes that compute cache keys / fingerprints (R016
#: roots, R014 sinks).
_FINGERPRINT_SUFFIXES = (
    "._fingerprint", "._key", "._profile_key", "._scheme_key",
    "._alone_key",
)

#: Checked-in R016 accepted-impurity baseline, relative to the root.
BASELINE_RELPATH = Path("src") / "repro" / "devtools" / "effects_baseline.txt"


def _in_sim_layer(module: str) -> bool:
    return any(
        module == layer or module.startswith(layer + ".")
        for layer in _SIM_LAYERS
    )


def _is_fingerprint_root(key: str, module: str) -> bool:
    if not module.startswith("repro."):
        return False
    return key.split(".")[-1] == "config_fingerprint" or key.endswith(
        _FINGERPRINT_SUFFIXES
    )


def _event_kind(event: dict[str, Any]) -> str | None:
    """Map a v3 summary effect event to an effect kind."""
    kind = event.get("kind")
    if kind == "rng-draw":
        stream = event.get("stream")
        if stream == "ambient":
            return "ambient-rng"
        if stream == "system":
            return "entropy"
        return "seeded-rng"  # "seeded" | "attr"
    if kind in ("clock", "entropy", "env"):
        return kind
    return None


class EffectWorld:
    """Per-function effect signatures, joined over the call graph.

    ``effects[key]`` maps effect kind -> origin record: either a direct
    origin ``{"path", "line", "source"}`` or an inherited one
    ``{"via": callee_key, "line": callsite_line}``; following ``via``
    links with :meth:`chain` yields the file:line witness path from a
    function down to the concrete source expression.
    """

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        #: function key -> owning module
        self.module_of: dict[str, str] = {}
        #: function key -> {kind: origin record}
        self.effects: dict[str, dict[str, dict[str, Any]]] = {}
        #: function key -> [(callee key, callsite line, unordered,
        #: clock_dep)] — resolved calls plus constructor edges.
        self.edges: dict[str, list[tuple[str, int, bool, bool]]] = {}
        self._collect_direct()
        self._propagate()

    # -- construction ---------------------------------------------------

    def _collect_direct(self) -> None:
        graph = self.graph
        for mod in sorted(graph.modules):
            summary = graph.modules[mod]
            for qual in sorted(summary.functions):
                key = f"{mod}.{qual}"
                info = summary.functions[qual]
                self.module_of[key] = mod
                eff = self.effects.setdefault(key, {})
                for event in info.effects:
                    kind = _event_kind(event)
                    if kind is not None and kind not in eff:
                        eff[kind] = {
                            "path": summary.path,
                            "line": event["line"],
                            "source": event.get("source", kind),
                        }
                for mut in info.mutations:
                    if "state-mutation" in eff:
                        break
                    if (
                        mut["op"] in ("global-assign", "augassign")
                        or _global_target(graph, summary, mut["target"])
                        is not None
                    ):
                        eff["state-mutation"] = {
                            "path": summary.path,
                            "line": mut["line"],
                            "source": f"{mut['op']} {mut['target']}",
                        }
                if info.writes and "fs-write" not in eff:
                    write = info.writes[0]
                    eff["fs-write"] = {
                        "path": summary.path,
                        "line": write["line"],
                        "source": write["kind"],
                    }
                edges: list[tuple[str, int, bool, bool]] = []
                for call in info.calls:
                    callee = self._resolve(summary, mod, qual, call["name"])
                    if callee is not None:
                        edges.append((
                            callee,
                            call["line"],
                            bool(call.get("unordered")),
                            bool(call.get("clock_dep")),
                        ))
                self.edges[key] = edges

    def _resolve(
        self, summary: "FileSummary", mod: str, qual: str, name: str
    ) -> str | None:
        """Resolve one recorded call, including constructor calls
        (``C(...)`` -> ``module.C.__init__``) the shared graph skips."""
        graph = self.graph
        resolved = graph.resolve_call(mod, qual, name)
        if resolved is not None and resolved in graph.functions:
            return resolved
        if name.startswith("self."):
            return None
        head, _, tail = name.partition(".")
        candidates = [f"{mod}.{name}.__init__"]
        if not tail:
            imported = summary.imports.get(name)
            if imported is not None:
                candidates.append(f"{imported}.__init__")
        else:
            imported = summary.imports.get(head)
            if imported is not None:
                candidates.append(f"{imported}.{tail}.__init__")
        for candidate in candidates:
            if candidate in graph.functions:
                return candidate
        return None

    def _propagate(self) -> None:
        """Fixpoint: callers inherit their callees' effect kinds.

        Deterministic by construction (sorted keys, call-site order,
        first origin wins), so serial and ``--jobs`` builds — which see
        identical summaries — produce byte-identical worlds.
        """
        keys = sorted(self.edges)
        changed = True
        while changed:
            changed = False
            for key in keys:
                eff = self.effects[key]
                for callee, line, _unordered, _clock_dep in self.edges[key]:
                    callee_eff = self.effects.get(callee)
                    if not callee_eff:
                        continue
                    masked = (
                        self.module_of.get(callee) in TELEMETRY_BOUNDARY
                    )
                    for kind in callee_eff:
                        if masked and kind in _BOUNDARY_MASKED:
                            continue
                        if kind not in eff:
                            eff[kind] = {"via": callee, "line": line}
                            changed = True

    # -- queries --------------------------------------------------------

    def chain(self, key: str, kind: str) -> list[tuple[str, int, str]]:
        """Witness path ``[(path, line, function key), ...]`` from
        ``key`` down to the direct source of ``kind`` (sink first)."""
        links: list[tuple[str, int, str]] = []
        seen: set[str] = set()
        current = key
        while current not in seen:
            seen.add(current)
            origin = self.effects.get(current, {}).get(kind)
            if origin is None:
                break
            if "via" in origin:
                links.append((
                    self.graph.paths.get(current, "?"),
                    origin["line"],
                    current,
                ))
                current = origin["via"]
            else:
                links.append((origin["path"], origin["line"], current))
                break
        return links

    @staticmethod
    def render_chain(links: list[tuple[str, int, str]]) -> str:
        return " -> ".join(f"{path}:{line}" for path, line, _key in links)

    def has_draw(self, key: str) -> bool:
        return bool(DRAW_KINDS & self.effects.get(key, {}).keys())

    # -- rule computations ----------------------------------------------

    def taint_records(self) -> list[dict[str, Any]]:
        """R014: entropy reaching a determinism sink, deduplicated to
        one record per (source location, kind) with the most direct
        sink as witness."""
        grouped: dict[tuple[str, int, str], dict[str, Any]] = {}
        workers = self.graph.workers
        for key in sorted(self.effects):
            module = self.module_of.get(key, "")
            if module in TELEMETRY_BOUNDARY:
                continue
            if _in_sim_layer(module):
                sink_what = "simulation state"
            elif _is_fingerprint_root(key, module):
                sink_what = "cache-key/fingerprint computation"
            elif key in workers and module.startswith("repro."):
                sink_what = "a pool-worker entry point"
            else:
                continue
            eff = self.effects[key]
            for kind in sorted(TAINT_KINDS & eff.keys()):
                links = self.chain(key, kind)
                if not links:
                    continue
                src_path, src_line, _src_key = links[-1]
                source = self.effects.get(
                    links[-1][2], {}
                ).get(kind, {}).get("source", kind)
                group = grouped.get((src_path, src_line, kind))
                record = {
                    "kind": kind,
                    "source": source,
                    "path": src_path,
                    "line": src_line,
                    "sink": key,
                    "sink_what": sink_what,
                    "chain": [
                        f"{p}:{ln} {k}" for p, ln, k in links
                    ],
                    "n_sinks": 1,
                }
                if group is None:
                    grouped[(src_path, src_line, kind)] = record
                else:
                    group["n_sinks"] += 1
                    if len(links) < len(group["chain"]):
                        n = group["n_sinks"]
                        record["n_sinks"] = n
                        grouped[(src_path, src_line, kind)] = record
        return [grouped[k] for k in sorted(grouped)]

    def draw_order_records(self) -> list[dict[str, Any]]:
        """R015: draws under hash-ordered iteration or entropy-dependent
        control flow in the simulation layers."""
        records: dict[tuple[str, int], dict[str, Any]] = {}

        def note(path: str, line: int, context: str, detail: str,
                 chain: list[str]) -> None:
            records.setdefault((path, line), {
                "path": path, "line": line, "context": context,
                "detail": detail, "chain": chain,
            })

        for key in sorted(self.effects):
            module = self.module_of.get(key, "")
            if not _in_sim_layer(module):
                continue
            info = self.graph.functions.get(key)
            if info is None:
                continue
            path = self.graph.paths.get(key, "?")
            for event in info.effects:
                if _event_kind(event) not in DRAW_KINDS:
                    continue
                if event.get("unordered"):
                    note(
                        path, event["line"], "unordered",
                        f"{key} draws {event.get('source', 'rng')} while "
                        "iterating a set (hash order)",
                        [f"{path}:{event['line']} {key}"],
                    )
                elif event.get("clock_dep"):
                    note(
                        path, event["line"], "clock-dep",
                        f"{key} draws {event.get('source', 'rng')} under "
                        "wall-clock/env-dependent control flow",
                        [f"{path}:{event['line']} {key}"],
                    )
            for callee, line, unordered, clock_dep in self.edges[key]:
                if not (unordered or clock_dep):
                    continue
                if not self.has_draw(callee):
                    continue
                kind = next(
                    k for k in ("seeded-rng", "ambient-rng")
                    if k in self.effects.get(callee, {})
                )
                links = self.chain(callee, kind)
                context = "unordered" if unordered else "clock-dep"
                how = (
                    "while iterating a set (hash order)"
                    if unordered
                    else "under wall-clock/env-dependent control flow"
                )
                note(
                    path, line, context,
                    f"{key} calls {callee} {how}, and {callee} "
                    "transitively draws from an RNG",
                    [f"{path}:{line} {key}"]
                    + [f"{p}:{ln} {k}" for p, ln, k in links],
                )
        return [records[k] for k in sorted(records)]

    def purity(self) -> dict[str, Any]:
        """R016: the fingerprint frontier and its impurity entries."""
        roots = sorted(
            key for key in self.effects
            if _is_fingerprint_root(key, self.module_of.get(key, ""))
        )
        frontier: set[str] = set()
        stack = list(roots)
        while stack:
            key = stack.pop()
            if key in frontier:
                continue
            frontier.add(key)
            stack.extend(
                callee for callee, _ln, _u, _c in self.edges.get(key, ())
                if callee not in frontier
            )
        entries: dict[str, dict[str, Any]] = {}
        for key in sorted(frontier):
            eff = self.effects.get(key, {})
            for kind in sorted(IMPURE_KINDS & eff.keys()):
                links = self.chain(key, kind)
                entries[f"{key}|{kind}"] = {
                    "function": key,
                    "kind": kind,
                    "path": self.graph.paths.get(key, "?"),
                    "line": self.graph.functions[key].lineno,
                    "chain": [f"{p}:{ln} {k}" for p, ln, k in links],
                }
        return {
            "roots": roots,
            "frontier": sorted(frontier),
            "entries": entries,
        }


def effects_world_for(project: "ProjectContext") -> EffectWorld:
    """The (memoized) :class:`EffectWorld` of one lint invocation."""
    cached = getattr(project, "_effects_world", None)
    if cached is not None:
        return cached
    world = EffectWorld(graph_for_project(project))
    project._effects_world = world  # type: ignore[attr-defined]
    return world


# -- policy-factory audit ----------------------------------------------------


def policy_audit(
    project: "ProjectContext", world: EffectWorld
) -> list[dict[str, Any]]:
    """Effect audit of every ``register_policy(name, factory)`` site.

    Registration happens at module level (outside any function), so the
    summaries do not see it; this walks the file ASTs like R005 does
    and resolves the factory reference through the project graph.
    """
    import ast

    graph = world.graph
    records: list[dict[str, Any]] = []
    for ctx in project.files:
        module = ctx.module
        if module is None or module not in graph.modules:
            continue
        summary = graph.modules[module]
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if callee != "register_policy":
                continue
            factory_node = node.args[1] if len(node.args) >= 2 else None
            for kw in node.keywords:
                if kw.arg == "factory":
                    factory_node = kw.value
            if not isinstance(factory_node, (ast.Name, ast.Attribute)):
                continue
            parts: list[str] = []
            sub: ast.expr = factory_node
            while isinstance(sub, ast.Attribute):
                parts.append(sub.attr)
                sub = sub.value
            if isinstance(sub, ast.Name):
                parts.append(sub.id)
            ref = ".".join(reversed(parts))
            factory_key = world._resolve(summary, module, "", ref)
            if factory_key is None:
                continue
            name_node = node.args[0] if node.args else None
            policy_name = (
                name_node.value
                if isinstance(name_node, ast.Constant)
                and isinstance(name_node.value, str)
                else None
            )
            tainted = sorted(
                TAINT_KINDS & world.effects.get(factory_key, {}).keys()
            )
            records.append({
                "policy": policy_name,
                "factory": factory_key,
                "path": str(ctx.relpath),
                "line": node.lineno,
                "taint": tainted,
                "chains": {
                    kind: [
                        f"{p}:{ln} {k}"
                        for p, ln, k in world.chain(factory_key, kind)
                    ]
                    for kind in tainted
                },
            })
    records.sort(key=lambda r: (r["path"], r["line"]))
    return records


# -- R016 baseline ratchet ---------------------------------------------------

_BASELINE_HEADER = (
    "# R016 fingerprint-purity baseline: accepted impurity entries\n"
    "# (function-key|effect-kind), one per line.  The gate fails on any\n"
    "# entry NOT listed here; re-pin deliberately with\n"
    "#   repro lint --update-effects-baseline\n"
)


def _read_baseline(root: Path) -> set[str]:
    path = root / BASELINE_RELPATH
    if not path.is_file():
        return set()
    entries: set[str] = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def _write_baseline(root: Path, entries: set[str]) -> Path:
    path = root / BASELINE_RELPATH
    path.parent.mkdir(parents=True, exist_ok=True)
    body = "".join(f"{entry}\n" for entry in sorted(entries))
    path.write_text(_BASELINE_HEADER + body)
    return path


def update_baseline(project: "ProjectContext") -> tuple[Path, set[str]]:
    """Rewrite the checked-in baseline to the current impurity set."""
    world = effects_world_for(project)
    entries = set(world.purity()["entries"])
    return _write_baseline(project.root, entries), entries


# -- the rules ---------------------------------------------------------------


@register
class EffectTaintRule(LintRule):
    id = "R014"
    name = "determinism-taint"
    rationale = (
        "unseeded entropy (ambient RNG, clock, os entropy, env) must "
        "not transitively reach sim state, worker entry points, cache "
        "keys, or fingerprints — found interprocedurally"
    )
    scope = "project"

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        world = effects_world_for(project)
        for record in world.taint_records():
            extra = (
                f" (and {record['n_sinks'] - 1} more sink(s))"
                if record["n_sinks"] > 1
                else ""
            )
            yield self._at(
                record["path"], record["line"],
                f"determinism taint: {record['source']} ({record['kind']}) "
                f"reaches {record['sink_what']} via "
                f"{' -> '.join(reversed(record['chain']))} "
                f"[sink {record['sink']}]{extra}; seed explicitly or "
                "justify with `repro: noqa[R014] -- reason`",
            )
        for record in policy_audit(project, world):
            for kind in record["taint"]:
                chain = record["chains"][kind]
                yield self._at(
                    record["path"], record["line"],
                    f"policy factory {record['factory']} (registered "
                    f"as {record['policy']!r}) transitively reads "
                    f"{kind} via {' -> '.join(reversed(chain))} — "
                    "policies run inside the deterministic engine",
                )

    def _at(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id, severity=self.severity, path=path, line=line,
            col=0, message=message,
        )


@register
class DrawOrderRule(LintRule):
    id = "R015"
    name = "rng-draw-order"
    rationale = (
        "RNG draws under set-ordered iteration or clock/env-dependent "
        "control flow reorder the stream between runs even when seeded"
    )
    scope = "project"

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        world = effects_world_for(project)
        for record in world.draw_order_records():
            yield Finding(
                rule=self.id, severity=self.severity,
                path=record["path"], line=record["line"], col=0,
                message=(
                    f"rng draw-order hazard: {record['detail']} "
                    f"[{' -> '.join(record['chain'])}]; iterate a "
                    "sorted() view or hoist the draw out of the "
                    "entropy-dependent branch"
                ),
            )


@register
class FingerprintPurityRule(LintRule):
    id = "R016"
    name = "fingerprint-purity"
    rationale = (
        "functions reachable from cache-key/fingerprint computation "
        "must infer pure; accepted debt is baselined and ratchets down"
    )
    scope = "project"

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        world = effects_world_for(project)
        baseline = _read_baseline(project.root)
        purity = world.purity()
        for entry in sorted(purity["entries"]):
            if entry in baseline:
                continue
            record = purity["entries"][entry]
            yield Finding(
                rule=self.id, severity=self.severity,
                path=record["path"], line=record["line"], col=0,
                message=(
                    f"fingerprint impurity: {record['function']} is "
                    "reachable from cache-key/fingerprint computation "
                    f"but has effect {record['kind']} via "
                    f"{' -> '.join(record['chain'])}; make it pure or "
                    "re-pin with --update-effects-baseline"
                ),
            )


# -- effects_graph.json ------------------------------------------------------

#: Schema identifier of the ``--graph`` artifact.
GRAPH_SCHEMA = "repro.effects_graph/v1"


def _suppression_records(project: "ProjectContext") -> list[dict[str, Any]]:
    """Every R014-R016 noqa in the tree, with its justification."""
    from repro.devtools.suppressions import (
        JUSTIFIED_RULES,
        line_justifications,
        line_suppressions,
    )

    records: list[dict[str, Any]] = []
    for ctx in project.files:
        suppressions = line_suppressions(ctx.lines)
        justifications = line_justifications(ctx.lines)
        for lineno in sorted(suppressions):
            ids = suppressions[lineno]
            covered = sorted(
                JUSTIFIED_RULES & ids
                if "*" not in ids
                else JUSTIFIED_RULES
            )
            if "*" not in ids and not covered:
                continue
            records.append({
                "path": str(ctx.relpath),
                "line": lineno,
                "rules": sorted(ids),
                "covers": covered,
                "justification": justifications.get(lineno),
            })
    records.sort(key=lambda r: (r["path"], r["line"]))
    return records


def effects_graph_doc(project: "ProjectContext") -> dict[str, Any]:
    """The ``effects_graph.json`` document for ``repro lint --graph``."""
    world = effects_world_for(project)
    purity = world.purity()
    baseline = _read_baseline(project.root)
    entries = set(purity["entries"])
    functions: dict[str, Any] = {}
    for key in sorted(world.effects):
        eff = world.effects[key]
        if not eff:
            continue
        rendered: dict[str, Any] = {}
        for kind in sorted(eff):
            origin = eff[kind]
            if "via" in origin:
                rendered[kind] = {
                    "via": origin["via"],
                    "line": origin["line"],
                }
            else:
                rendered[kind] = {
                    "origin": f"{origin['path']}:{origin['line']}",
                    "source": origin["source"],
                }
        functions[key] = {
            "path": world.graph.paths.get(key, "?"),
            "effects": rendered,
        }
    return {
        "schema": GRAPH_SCHEMA,
        "analysis_version": ANALYSIS_VERSION,
        "vocabulary": dict(EFFECT_KINDS),
        "boundaries": sorted(TELEMETRY_BOUNDARY),
        "n_functions": len(world.effects),
        "functions": functions,
        "taint": world.taint_records(),
        "draw_order": world.draw_order_records(),
        "policies": policy_audit(project, world),
        "purity": {
            "roots": purity["roots"],
            "frontier": purity["frontier"],
            "impure": sorted(entries),
            "baseline": sorted(baseline),
            "new": sorted(entries - baseline),
            "stale": sorted(baseline - entries),
        },
        "suppressions": _suppression_records(project),
    }


def validate_effects_graph(doc: Any) -> list[str]:
    """Structural validation of an ``effects_graph.json`` document;
    returns a list of problems (empty when valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != GRAPH_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, not {GRAPH_SCHEMA}")
    for field in ("vocabulary", "functions", "purity"):
        if not isinstance(doc.get(field), dict):
            problems.append(f"missing/invalid object field {field!r}")
    for field in ("boundaries", "taint", "draw_order", "policies",
                  "suppressions"):
        if not isinstance(doc.get(field), list):
            problems.append(f"missing/invalid array field {field!r}")
    if isinstance(doc.get("vocabulary"), dict):
        missing = set(EFFECT_KINDS) - set(doc["vocabulary"])
        if missing:
            problems.append(f"vocabulary missing kinds: {sorted(missing)}")
    if isinstance(doc.get("functions"), dict):
        for key, entry in doc["functions"].items():
            if not isinstance(entry, dict) or "effects" not in entry:
                problems.append(f"functions[{key!r}] lacks effects")
                break
            for kind in entry["effects"]:
                if kind not in EFFECT_KINDS:
                    problems.append(
                        f"functions[{key!r}] has unknown kind {kind!r}"
                    )
                    break
    purity = doc.get("purity")
    if isinstance(purity, dict):
        for field in ("roots", "frontier", "impure", "baseline", "new"):
            if not isinstance(purity.get(field), list):
                problems.append(f"purity.{field} missing/invalid")
    return problems
