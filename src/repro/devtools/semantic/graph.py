"""The project import/call graph, built from cached per-file summaries.

:func:`build_graph` turns a batch of parsed files into a
:class:`ProjectGraph`: an index of every function/method in the tree,
an import graph between project modules, and a best-effort call graph.
Resolution is intentionally static and conservative:

* ``f(...)`` resolves to the same module's ``f`` or through the import
  map (chasing package-facade re-exports, so ``from repro.exec import
  run_jobs`` reaches ``repro.exec.pool.run_jobs``);
* ``self.m(...)`` resolves to the enclosing class's method;
* ``obj.m(...)`` resolves when ``obj`` was constructed from a known
  class in the same function (``sim = Simulator(...); sim.run()``) or
  when ``obj`` is an imported module;
* anything else (duck-typed receivers, dynamic dispatch) resolves to
  nothing — the analysis under-approximates the call graph rather than
  inventing edges.

The *worker* analysis rides on top: any function reference passed to
``run_jobs(...)``, ``*.submit(...)`` or ``functools.partial(...)`` at a
resolvable call site is a pool-worker entry point, and
:meth:`ProjectGraph.worker_reachable` is the transitive closure those
entry points can execute **in a worker process** — the domain the R010
race detector polices.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.devtools.semantic.cache import AnalysisCache, content_digest
from repro.devtools.semantic.summary import FileSummary, FunctionInfo, summarize_file

if TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.context import FileContext

__all__ = [
    "ProjectGraph",
    "analysis_versions",
    "build_graph",
    "graph_for_project",
]

#: Cache location relative to the project root; *not* under results/
#: (the results tree is reserved for simulation products, R006).
CACHE_RELPATH = ".lint-cache/semantic.json"

#: Call names (resolved) that take a worker function as first argument.
_WORKER_SINKS = frozenset({
    "repro.exec.pool.run_jobs",
    "repro.exec.run_jobs",
})

#: Unresolved attribute-call tails that submit work to a process pool.
_SUBMIT_TAILS = ("submit",)


@dataclass
class ProjectGraph:
    """The resolved whole-program view of one lint batch."""

    #: module name -> its summary
    modules: dict[str, FileSummary] = field(default_factory=dict)
    #: "module.qualname" -> FunctionInfo, for every definition
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: "module.qualname" -> repo-relative path (for findings)
    paths: dict[str, str] = field(default_factory=dict)
    #: resolved call edges: caller key -> {callee keys}
    calls: dict[str, set[str]] = field(default_factory=dict)
    #: worker entry points: function keys handed to a pool
    workers: set[str] = field(default_factory=set)
    #: cache statistics of the build (hits, misses)
    cache_hits: int = 0
    cache_misses: int = 0

    # -- name resolution -----------------------------------------------

    def chase(self, dotted: str, depth: int = 8) -> str | None:
        """Resolve ``dotted`` through facade re-exports to a definition.

        ``repro.exec.run_jobs`` -> ``repro.exec.pool.run_jobs`` via the
        ``repro.exec`` package summary's import map.  Returns a key of
        :attr:`functions`, a module name, or None.
        """
        seen: set[str] = set()
        while depth > 0:
            depth -= 1
            if dotted in seen:
                return None
            seen.add(dotted)
            if dotted in self.functions or dotted in self.modules:
                return dotted
            mod, _, leaf = dotted.rpartition(".")
            if not mod:
                return None
            summary = self.modules.get(mod)
            if summary is None:
                # maybe "module.Class.method" with a two-level tail
                mod2, _, cls = mod.rpartition(".")
                summary2 = self.modules.get(mod2)
                if summary2 is not None and cls in summary2.imports:
                    dotted = f"{summary2.imports[cls]}.{leaf}"
                    continue
                return None
            if leaf in summary.imports:
                dotted = summary.imports[leaf]
                continue
            return None
        return None

    def resolve_call(
        self, caller_module: str, caller_qualname: str, name: str
    ) -> str | None:
        """Resolve a recorded call name from a caller's context."""
        summary = self.modules.get(caller_module)
        if summary is None:
            return None
        if name.startswith("self."):
            cls = caller_qualname.split(".")[0]
            method = name[len("self."):]
            key = f"{caller_module}.{cls}.{method}"
            return key if key in self.functions else None
        head, _, tail = name.partition(".")
        # Same-module definition (function, or Class.method via a
        # constructor-typed local already rewritten by the summary).
        key = f"{caller_module}.{name}"
        if key in self.functions:
            return key
        if head in summary.imports:
            target = summary.imports[head]
            dotted = f"{target}.{tail}" if tail else target
            return self.chase(dotted)
        return None

    # -- worker reachability --------------------------------------------

    def callees(self, key: str) -> set[str]:
        return self.calls.get(key, set())

    def worker_reachable(self) -> set[str]:
        """Every function the pool-worker entry points can execute."""
        frontier = list(self.workers)
        reached: set[str] = set()
        while frontier:
            key = frontier.pop()
            if key in reached:
                continue
            reached.add(key)
            frontier.extend(self.callees(key) - reached)
        return reached

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON document for ``repro lint --graph``."""
        import_edges = []
        for mod, summary in sorted(self.modules.items()):
            targets = set()
            for dotted in summary.imports.values():
                if dotted in self.modules:
                    targets.add(dotted)
                else:
                    owner = dotted.rpartition(".")[0]
                    if owner in self.modules:
                        targets.add(owner)
            for target in sorted(targets):
                import_edges.append({"from": mod, "to": target})
        call_edges = [
            {"from": caller, "to": callee}
            for caller in sorted(self.calls)
            for callee in sorted(self.calls[caller])
        ]
        return {
            "modules": sorted(self.modules),
            "functions": sorted(self.functions),
            "imports": import_edges,
            "calls": call_edges,
            "workers": sorted(self.workers),
            "worker_reachable": sorted(self.worker_reachable()),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
        }


def analysis_versions() -> dict[str, int]:
    """Per-analysis version fingerprint for the :class:`AnalysisCache`.

    Every semantic component whose inputs flow through cached summaries
    declares an ``ANALYSIS_VERSION``; bumping any of them discards the
    cache wholesale, so editing a *rule* re-analyzes instead of serving
    findings computed by its previous self.  (Lazy imports: the rule
    modules import this one.)
    """
    from repro.devtools.semantic import (
        clockdomains, effects, lifecycle, races, summary, typedcore, units,
    )

    return {
        "summary": summary.ANALYSIS_VERSION,
        "lifecycle": lifecycle.ANALYSIS_VERSION,
        "races": races.ANALYSIS_VERSION,
        "typedcore": typedcore.ANALYSIS_VERSION,
        "units": units.ANALYSIS_VERSION,
        "clockdomains": clockdomains.ANALYSIS_VERSION,
        "effects": effects.ANALYSIS_VERSION,
    }


def _summarize_source_job(spec: tuple[str, str, str]) -> dict:
    """Pool worker: summarize one file from raw source (picklable spec
    ``(module, path, source)``; the AST cannot cross the pickle
    boundary, so workers re-parse — the parse is the cheap part)."""
    module, path, source = spec
    return summarize_file(module, path, ast.parse(source)).to_dict()


def _load_cached_summary(doc: object, module: str) -> FileSummary | None:
    """Deserialize one cached entry, treating anything malformed as a
    miss.

    A cache written by a crashed or concurrent run can hold entries
    that are not dicts, dicts missing required keys, or summaries for a
    different module (digest collision across moves).  Any such entry
    degrades to ``None`` — the file is re-summarized and the fresh
    document overwrites the bad entry on save — instead of crashing the
    lint run or, worse, silently feeding a partial summary to the
    whole-program passes.
    """
    if not isinstance(doc, dict) or doc.get("module") != module:
        return None
    try:
        return FileSummary.from_dict(doc)
    except (KeyError, TypeError, ValueError, AttributeError):
        return None


def _summaries_for(
    files: "list[FileContext]",
    cache: AnalysisCache | None,
    jobs: int | None,
) -> dict[int, FileSummary]:
    """Index-keyed summaries for the batch, cache-aware.

    Cache misses fan out over :func:`repro.exec.run_jobs` when ``jobs``
    asks for parallelism; ``run_jobs`` preserves spec order, so the
    result (and everything derived from it) is byte-identical to the
    serial path.

    Cache discipline: workers only ever *return* summary documents —
    every ``cache.put`` happens here in the parent, and the single
    resulting :meth:`AnalysisCache.save` goes through the atomic
    temp-file + replace path.  No child process holds a cache handle,
    so a parallel run cannot interleave partial writes.
    """
    summaries: dict[int, FileSummary] = {}
    misses: list[tuple[int, "FileContext"]] = []
    for i, ctx in enumerate(files):
        if ctx.module is None:
            continue
        if cache is not None:
            cached = _load_cached_summary(
                cache.get(content_digest(ctx.source)), ctx.module
            )
            if cached is not None:
                summaries[i] = cached
                continue
        misses.append((i, ctx))
    if jobs is not None and jobs != 1 and len(misses) > 1:
        from repro.exec import run_jobs

        specs = [
            (ctx.module, str(ctx.relpath), ctx.source) for _, ctx in misses
        ]
        docs = run_jobs(_summarize_source_job, specs, n_jobs=jobs)
        for (i, ctx), doc in zip(misses, docs):
            if cache is not None:
                cache.put(content_digest(ctx.source), doc)
            summaries[i] = FileSummary.from_dict(doc)
    else:
        for i, ctx in misses:
            summary = summarize_file(ctx.module, str(ctx.relpath), ctx.tree)
            if cache is not None:
                cache.put(content_digest(ctx.source), summary.to_dict())
            summaries[i] = summary
    return summaries


def build_graph(
    files: "list[FileContext]",
    cache: AnalysisCache | None = None,
    jobs: int | None = None,
) -> ProjectGraph:
    """Build the :class:`ProjectGraph` for a batch of parsed files.

    Files outside the module roots (no layer identity) are skipped;
    test files participate so worker functions defined in tests resolve,
    but nothing forces them to.  ``jobs`` parallelizes summarization of
    cache misses (summaries are picklable JSON); findings built from
    the graph stay byte-identical to a serial build.
    """
    graph = ProjectGraph()
    for _i, summary in sorted(_summaries_for(files, cache, jobs).items()):
        graph.modules[summary.module] = summary
        for qual, info in summary.functions.items():
            key = f"{summary.module}.{qual}"
            graph.functions[key] = info
            graph.paths[key] = summary.path
    if cache is not None:
        graph.cache_hits, graph.cache_misses = cache.hits, cache.misses
        cache.prune({
            content_digest(ctx.source) for ctx in files if ctx.module
        })
        cache.save()

    # Resolve call edges and worker registrations.
    for mod, summary in graph.modules.items():
        for qual, info in summary.functions.items():
            caller = f"{mod}.{qual}"
            edges = graph.calls.setdefault(caller, set())
            for call in info.calls:
                name = call["name"]
                resolved = graph.resolve_call(mod, qual, name)
                if resolved is not None and resolved in graph.functions:
                    edges.add(resolved)
                tail = name.split(".")[-1]
                is_partial = tail == "partial"
                is_sink = (
                    resolved in _WORKER_SINKS
                    or (resolved is None and tail == "run_jobs")
                    or tail in _SUBMIT_TAILS
                )
                if not (is_partial or is_sink):
                    continue
                refs = call.get("arg_refs") or []
                if not refs:
                    continue
                worker_ref = graph.resolve_call(mod, qual, refs[0])
                if worker_ref is None or worker_ref not in graph.functions:
                    continue
                if is_partial:
                    # partial(f, ...) runs f wherever the partial runs:
                    # keep it as an ordinary call edge.
                    edges.add(worker_ref)
                else:
                    graph.workers.add(worker_ref)
    return graph


def graph_for_project(project: Any) -> ProjectGraph:
    """The (memoized) :class:`ProjectGraph` of one lint invocation.

    Both project-scoped semantic rules and the ``--graph`` dump need the
    graph; building it twice would double the parse work, so the first
    caller stashes it on the :class:`~repro.devtools.context
    .ProjectContext`.  The linter may pre-set ``semantic_cache_path``
    (``None`` disables persistence, for ``--no-semantic-cache``).
    """
    cached = getattr(project, "_semantic_graph", None)
    if cached is not None:
        return cached
    if hasattr(project, "semantic_cache_path"):
        cache_path = project.semantic_cache_path
    else:
        cache_path = project.root / CACHE_RELPATH
    cache = (
        AnalysisCache(cache_path, versions=analysis_versions())
        if cache_path is not None
        else None
    )
    jobs = getattr(project, "semantic_jobs", None)
    graph = build_graph(project.files, cache, jobs=jobs)
    project._semantic_graph = graph
    return graph


def parse_and_summarize(
    module: str, path: str, source: str
) -> FileSummary:
    """Convenience for tests: summarize raw source text."""
    return summarize_file(module, path, ast.parse(source))
