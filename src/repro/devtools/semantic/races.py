"""R010 — the cross-process race detector.

:func:`repro.exec.pool.run_jobs` executes worker functions in forked or
spawned processes.  Anything a worker does to *process-global* state —
mutating a module-level dict, installing an ambient tracer, appending to
a shared list — happens in the child's copy of the interpreter and is
silently discarded when the worker exits.  The classic failure mode is a
cache or counter that works perfectly under ``n_jobs=1`` (the serial
fallback runs in-process) and quietly loses every update the moment a
sweep goes parallel — no exception, just wrong numbers.

The rule works on the :class:`~repro.devtools.semantic.graph.ProjectGraph`:

1. collect the *worker-reachable* set — every function transitively
   callable from a function handed to ``run_jobs``/``pool.submit``;
2. inside that set, flag

   * in-place mutation (``append``/``update``/subscript-store/…) of a
     name that resolves to a module-level mutable binding, in the same
     module or through an import;
   * rebinding or augmenting a name declared ``global`` (same loss, by
     assignment instead of mutation);
   * calls to the ambient-state installers (``set_tracer`` /
     ``set_metrics``) — the parent's tracer never sees spans installed
     in a child;
   * raw file writes (``open(..., "w")``, ``Path.write_text`` /
     ``write_bytes``) outside :mod:`repro.obs.io` — concurrent workers
     sharing a path need the atomic-replace helpers, not independent
     buffered handles.

Reads of module-level state in workers are fine (each child inherits a
consistent snapshot); it is the *write-back* that cannot cross the
process boundary.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.devtools.findings import Finding
from repro.devtools.registry import LintRule, register
from repro.devtools.semantic.graph import ProjectGraph, graph_for_project

if TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.context import ProjectContext
    from repro.devtools.semantic.summary import FileSummary, FunctionInfo

__all__ = ["ANALYSIS_VERSION", "RaceRule"]

#: Version of the race analysis; part of the AnalysisCache key.
ANALYSIS_VERSION = 1

#: Resolved callees that install ambient per-process state.  A worker
#: calling one of these configures only its own child process.
_AMBIENT_INSTALLERS = {
    "repro.obs.trace.set_tracer": "set_tracer",
    "repro.obs.metrics.set_metrics": "set_metrics",
}

#: Modules whose own file writes are the atomic-write implementation
#: (or the pool machinery itself) and therefore exempt.
_WRITE_EXEMPT_MODULES = frozenset({"repro.obs.io"})


def _global_target(
    graph: ProjectGraph, summary: "FileSummary", target: str
) -> tuple[str, str] | None:
    """Resolve a mutation target to ``(module, name)`` of a module-level
    mutable binding, or ``None`` if it is only ever local state."""
    head, _, tail = target.partition(".")
    if not tail:
        if target in summary.mutable_globals:
            return summary.module, target
        return None
    # ``mod.NAME`` through a plain import, one attribute deep.
    if "." in tail:
        return None
    imported = summary.imports.get(head)
    if imported is None:
        return None
    owner = graph.modules.get(imported)
    if owner is not None and tail in owner.mutable_globals:
        return owner.module, tail
    return None


@register
class RaceRule(LintRule):
    id = "R010"
    name = "proc-races"
    rationale = (
        "pool workers run in child processes: module-global writes, "
        "ambient-state installs, and raw file writes there are lost or "
        "torn, silently, only when a sweep runs parallel"
    )
    scope = "project"

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        graph = graph_for_project(project)
        reachable = graph.worker_reachable()
        if not reachable:
            return
        for mod in sorted(graph.modules):
            summary = graph.modules[mod]
            for qual in sorted(summary.functions):
                key = f"{mod}.{qual}"
                if key not in reachable:
                    continue
                info = summary.functions[qual]
                yield from self._check_function(graph, summary, key, info)

    # -- per-function checks --------------------------------------------

    def _check_function(
        self,
        graph: ProjectGraph,
        summary: "FileSummary",
        key: str,
        info: "FunctionInfo",
    ) -> Iterator[Finding]:
        path = summary.path
        for mut in info.mutations:
            op = mut["op"]
            if op in ("global-assign", "augassign"):
                yield self._at(
                    path, mut["line"],
                    f"cross-process race: {key} runs in pool workers but "
                    f"rebinds module-global {mut['target']!r} — the "
                    "assignment happens in the child process and the "
                    "parent never sees it",
                )
                continue
            resolved = _global_target(graph, summary, mut["target"])
            if resolved is None:
                continue
            owner_mod, name = resolved
            how = mut["method"] or op
            yield self._at(
                path, mut["line"],
                f"cross-process race: {key} runs in pool workers but "
                f"mutates module-level {owner_mod}.{name} via {how!r} — "
                "updates made in a worker process are discarded when it "
                "exits; return the data instead",
            )
        for call in info.calls:
            resolved = graph.resolve_call(
                summary.module, info.qualname, call["name"]
            )
            installer = _AMBIENT_INSTALLERS.get(resolved or "")
            if installer is None:
                tail = call["name"].split(".")[-1]
                if tail in _AMBIENT_INSTALLERS.values() and resolved is None:
                    installer = tail
            if installer is not None:
                yield self._at(
                    path, call["line"],
                    f"cross-process race: {key} runs in pool workers but "
                    f"calls {installer}() — ambient observers installed "
                    "in a child process are invisible to the parent; "
                    "install them in the parent and carry data back in "
                    "the job result",
                )
        if summary.module not in _WRITE_EXEMPT_MODULES:
            for write in info.writes:
                yield self._at(
                    path, write["line"],
                    f"pool-worker file write: {key} runs in pool workers "
                    f"but writes files directly ({write['kind']}) — "
                    "concurrent workers tear shared paths; use the "
                    "atomic helpers in repro.obs.io or write from the "
                    "parent",
                )

    def _at(self, path: str, line: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=path,
            line=line,
            col=0,
            message=message,
        )
