"""R011 — typed-core enforcement for ``repro.sim`` and ``repro.exec``.

The simulator core and the pool runner are the two layers everything
else builds on; their public call surfaces ship with ``py.typed`` and
must stay fully annotated so downstream code (and mypy, when present —
see :mod:`repro.devtools.semantic.typegate`) can actually check against
them.  The AST half of the contract lives here and needs no third-party
tooling: every *public* function and method in those packages must
annotate every parameter and its return type.

Scope decisions, so the rule stays about the public surface:

* private helpers (leading underscore) are exempt — they are free to
  rely on inference;
* ``self``/``cls`` receivers never need annotations;
* ``__init__`` must annotate its parameters (they *are* the constructor
  surface) but may omit the return annotation, matching mypy;
* other dunders follow their visibility: they are part of the type's
  protocol, so they are treated as public;
* nested functions are exempt (not callable from outside);
* public methods of *private* classes (``class _Foo``) are exempt — the
  class itself is not reachable from the public surface.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.devtools.findings import Finding
from repro.devtools.registry import LintRule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.context import FileContext

__all__ = ["ANALYSIS_VERSION", "TypedCoreRule", "TYPED_PACKAGES"]

#: Version of the typed-core analysis; part of the AnalysisCache key.
ANALYSIS_VERSION = 1

#: The packages whose public surface must be fully annotated.
TYPED_PACKAGES = ("repro.sim", "repro.exec")


def _missing_params(node: ast.FunctionDef | ast.AsyncFunctionDef,
                    *, is_method: bool) -> list[str]:
    args = node.args
    ordered = [*args.posonlyargs, *args.args]
    if is_method and ordered:
        ordered = ordered[1:]  # self / cls
    ordered += args.kwonlyargs
    missing = [a.arg for a in ordered if a.annotation is None]
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    return missing


def _is_public(name: str) -> bool:
    return not name.startswith("_") or (
        name.startswith("__") and name.endswith("__")
    )


@register
class TypedCoreRule(LintRule):
    id = "R011"
    name = "typed-core"
    rationale = (
        "repro.sim and repro.exec ship py.typed: an unannotated public "
        "parameter or return silently erases type checking for every "
        "caller of that surface"
    )

    def check_file(self, ctx: "FileContext") -> Iterator[Finding]:
        if not ctx.in_package(*TYPED_PACKAGES):
            return
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_def(ctx, node, is_method=False)
            elif isinstance(node, ast.ClassDef) and _is_public(node.name):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        yield from self._check_def(ctx, sub, is_method=True)

    def _check_def(
        self,
        ctx: "FileContext",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        is_method: bool,
    ) -> Iterator[Finding]:
        if not _is_public(node.name) or node.name == "__init_subclass__":
            return
        missing = _missing_params(node, is_method=is_method)
        if missing:
            yield self.finding(
                ctx, node,
                f"public {'method' if is_method else 'function'} "
                f"{node.name}() in a typed-core package leaves "
                f"parameter(s) {', '.join(repr(m) for m in missing)} "
                "unannotated",
            )
        if node.returns is None and node.name != "__init__":
            yield self.finding(
                ctx, node,
                f"public {'method' if is_method else 'function'} "
                f"{node.name}() in a typed-core package has no return "
                "annotation",
            )
