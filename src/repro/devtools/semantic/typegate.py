"""The (optional) mypy baseline ratchet behind ``repro lint --types``.

The container running the simulator does not necessarily have mypy;
type enforcement therefore has two layers:

* the AST-level :class:`~repro.devtools.semantic.typedcore.TypedCoreRule`
  (R011) always runs and needs nothing beyond the standard library;
* when mypy *is* importable (developer machines, the CI
  ``lint-semantic`` job installs it), ``repro lint --types`` runs it in
  strict mode over the typed-core packages and compares the result
  against a checked-in baseline.

The baseline (:data:`BASELINE_RELPATH`) is a ratchet, not an allowlist
of lines: each entry is a mypy diagnostic normalized to
``path|error-code|message`` — deliberately *without* the line number,
so unrelated edits that shift code do not churn the file.  The gate
fails when the current run produces a diagnostic (counted with
multiplicity) that the baseline does not contain; it never fails for
*fixing* errors, and ``--update-type-baseline`` rewrites the file to
the current (smaller or annotated-as-accepted) state.
"""

from __future__ import annotations

import importlib.util
import re
import subprocess
import sys
from collections import Counter
from pathlib import Path

__all__ = [
    "BASELINE_RELPATH",
    "TypeGateResult",
    "mypy_available",
    "run_type_gate",
]

#: Checked-in baseline, relative to the project root.
BASELINE_RELPATH = Path("src/repro/devtools/mypy_baseline.txt")

#: Directories handed to mypy, relative to the project root.
TYPED_ROOTS = ("src/repro/sim", "src/repro/exec")

#: ``path:line: error: message  [code]`` — mypy's standard output shape.
_DIAG_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+)(?::\d+)?: error: "
    r"(?P<message>.*?)(?:\s+\[(?P<code>[\w-]+)\])?$"
)


class TypeGateResult:
    """Outcome of one gate run, preformatted for the CLI."""

    def __init__(
        self,
        ok: bool,
        messages: list[str],
        new: list[str] | None = None,
        fixed: list[str] | None = None,
    ) -> None:
        self.ok = ok
        self.messages = messages
        self.new = new or []
        self.fixed = fixed or []


def mypy_available() -> bool:
    """Is mypy importable in this interpreter?"""
    return importlib.util.find_spec("mypy") is not None


def _normalize(line: str) -> str | None:
    """One raw mypy output line -> baseline key, or None for non-errors."""
    m = _DIAG_RE.match(line.strip())
    if m is None:
        return None
    path = m.group("path").replace("\\", "/")
    code = m.group("code") or "misc"
    return f"{path}|{code}|{m.group('message')}"


def _read_baseline(path: Path) -> Counter[str]:
    if not path.is_file():
        return Counter()
    entries = [
        line.strip()
        for line in path.read_text().splitlines()
        if line.strip() and not line.startswith("#")
    ]
    return Counter(entries)


def _write_baseline(path: Path, current: Counter[str]) -> None:
    lines = [
        "# mypy baseline ratchet for repro lint --types.",
        "# One normalized diagnostic per line: path|error-code|message",
        "# (line numbers omitted so edits elsewhere do not churn this",
        "# file).  Regenerate with: repro lint --types "
        "--update-type-baseline",
    ]
    for key in sorted(current.elements()):
        lines.append(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n")


def _run_mypy(root: Path) -> tuple[list[str], str]:
    """Run mypy over the typed roots; return (normalized keys, raw)."""
    cmd = [
        sys.executable, "-m", "mypy",
        "--config-file", "pyproject.toml",
        *TYPED_ROOTS,
    ]
    proc = subprocess.run(
        cmd, cwd=root, capture_output=True, text=True, check=False
    )
    raw = proc.stdout + proc.stderr
    keys = []
    for line in proc.stdout.splitlines():
        key = _normalize(line)
        if key is not None:
            keys.append(key)
    return keys, raw


def run_type_gate(root: Path, update_baseline: bool = False) -> TypeGateResult:
    """Run the mypy ratchet from ``root``; skip cleanly without mypy."""
    baseline_path = root / BASELINE_RELPATH
    if not mypy_available():
        return TypeGateResult(
            ok=True,
            messages=[
                "type gate: mypy is not installed in this environment; "
                "skipping the strict-mode pass (the AST-level R011 "
                "checks still ran).  Install mypy to run the full gate."
            ],
        )
    keys, raw = _run_mypy(root)
    current = Counter(keys)
    baseline = _read_baseline(baseline_path)
    new = sorted((current - baseline).elements())
    fixed = sorted((baseline - current).elements())

    if update_baseline:
        _write_baseline(baseline_path, current)
        return TypeGateResult(
            ok=True,
            messages=[
                f"type gate: baseline updated with {sum(current.values())} "
                f"diagnostic(s) ({len(new)} new, {len(fixed)} removed)."
            ],
            new=new,
            fixed=fixed,
        )

    messages = []
    if new:
        messages.append(
            f"type gate: {len(new)} new mypy diagnostic(s) not in the "
            f"baseline ({baseline_path.as_posix()}):"
        )
        messages.extend(f"  {key}" for key in new)
        messages.append(
            "fix the diagnostics, or (for accepted debt) rerun with "
            "--update-type-baseline."
        )
    if fixed:
        messages.append(
            f"type gate: {len(fixed)} baseline diagnostic(s) no longer "
            "occur — rerun with --update-type-baseline to ratchet down."
        )
    if not new and not fixed:
        messages.append(
            f"type gate: clean ({sum(current.values())} diagnostic(s), "
            "all in baseline)."
        )
    if new and raw.strip():
        messages.append("raw mypy output:")
        messages.extend(f"  {line}" for line in raw.strip().splitlines())
    return TypeGateResult(ok=not new, messages=messages, new=new, fixed=fixed)
