"""R013 clock-domain separation: sim cycles never meet wall-clock time.

The tree runs on two clocks.  The simulator advances in *cycles* (the
calendar wheel, DRAM timing, window boundaries); the tracer measures
*wall-clock* time (``time.perf_counter`` microseconds).  The Chrome
export deliberately maps sim events onto the trace's µs axis at
1 cycle = 1 µs — a *conversion boundary*, not an equality — and the
tracer's two-clock event constructor accepts timestamps from either
clock by design.

Everywhere else, arithmetic that combines a cycle-dimensioned quantity
with a wall-dimensioned one (``+``, ``-``, ``*``, ``/``, ``//``, ``%``
or an ordering comparison) is an error: there is no physical conversion
between simulated time and host time, so such an expression is a bug by
construction (PR 6's event folds made several cycle quantities flow
through code that also handles tracer timestamps, which is exactly how
this mix happens).

The dataflow engine lives in :mod:`repro.devtools.semantic.units`; this
rule packages its ``kind == "clock"`` findings.  The allowlisted
boundaries are :data:`~repro.devtools.semantic.units
.CLOCK_BOUNDARY_MODULES` and :data:`~repro.devtools.semantic.units
.CLOCK_BOUNDARY_FUNCS`.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import LintRule, register
from repro.devtools.semantic.units import units_analysis

if TYPE_CHECKING:  # pragma: no cover
    from repro.devtools.context import ProjectContext

__all__ = ["ANALYSIS_VERSION", "ClockDomainRule"]

#: Version of the clock-domain check, part of the AnalysisCache key.
ANALYSIS_VERSION = 1


@register
class ClockDomainRule(LintRule):
    id = "R013"
    name = "clock-domains"
    rationale = (
        "sim-cycle and wall-clock quantities never mix outside the "
        "declared conversion boundaries (Chrome export, two-clock "
        "event constructor)"
    )
    severity = Severity.ERROR
    scope = "project"
    analysis_version = ANALYSIS_VERSION

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for uf in units_analysis(project)["findings"]:
            if uf.kind != "clock":
                continue
            yield Finding(
                rule=self.id, severity=self.severity, path=uf.path,
                line=uf.line, col=uf.col, message=uf.message,
            )
