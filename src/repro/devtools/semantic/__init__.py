"""Whole-program semantic analysis for the repro tree.

The per-file AST rules (R001–R008) check invariants a single parse can
see.  This package adds the cross-function layer the engine's pooled
``MemTxn`` stage machine needs:

* :mod:`repro.devtools.semantic.summary` — one compact, cacheable
  summary per source file (imports, definitions, calls, module-level
  mutable state, mutation/write events);
* :mod:`repro.devtools.semantic.cache` — a content-hash-keyed store for
  those summaries so ``repro lint`` re-analyzes only edited files;
* :mod:`repro.devtools.semantic.graph` — the project import/call graph
  built from the summaries (JSON-dumpable via ``repro lint --graph``);
* :mod:`repro.devtools.semantic.lifecycle` — **R009**, the pooled-object
  lifecycle verifier over ``Simulator._dispatch`` and its helpers, plus
  the extracted stage-transition graph;
* :mod:`repro.devtools.semantic.races` — **R010**, the cross-process
  race detector for ``repro.exec`` pool workers;
* :mod:`repro.devtools.semantic.typedcore` — **R011**, typed-core
  enforcement of the ``repro.sim`` / ``repro.exec`` public surfaces;
* :mod:`repro.devtools.semantic.typegate` — the (optional) mypy
  baseline ratchet behind ``repro lint --types``.

See ``docs/devtools.md`` for the catalog entries and the architecture
notes.
"""

from repro.devtools.semantic.cache import AnalysisCache
from repro.devtools.semantic.graph import ProjectGraph, build_graph
from repro.devtools.semantic.summary import FileSummary, summarize_file

__all__ = [
    "AnalysisCache",
    "FileSummary",
    "ProjectGraph",
    "build_graph",
    "summarize_file",
]
