"""The lint-rule registry.

Rules subclass :class:`LintRule` and register themselves with the
:func:`register` decorator; the linter driver instantiates every
registered rule per run.  Two scopes exist:

* ``file`` rules get one :meth:`~LintRule.check_file` call per parsed
  source file;
* ``project`` rules get one :meth:`~LintRule.check_project` call per
  lint invocation, with the full batch (used when an invariant spans
  files, like the cache-schema fingerprint).
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.devtools.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    import ast

    from repro.devtools.context import FileContext, ProjectContext

__all__ = ["LintRule", "register", "all_rules", "rule_by_id"]

_RULE_ID_RE = re.compile(r"^R\d{3}$")

#: id -> rule class, in registration order
_REGISTRY: dict[str, type["LintRule"]] = {}


class LintRule:
    """Base class for lint rules.

    Subclasses set ``id`` (``R0XX``), ``name`` (short slug shown in
    ``--list-rules``), ``rationale`` (one line), and optionally
    ``severity`` and ``scope``; then implement :meth:`check_file` or
    :meth:`check_project`.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""
    severity: Severity = Severity.ERROR
    scope: str = "file"  # "file" | "project"

    def finding(
        self,
        ctx: "FileContext",
        node: "ast.AST | None",
        message: str,
        *,
        line: int | None = None,
        col: int | None = None,
    ) -> Finding:
        """Build a finding located at ``node`` (or explicit line/col)."""
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=str(ctx.relpath),
            line=line if line is not None else getattr(node, "lineno", 1),
            col=col if col is not None else getattr(node, "col_offset", 0),
            message=message,
        )

    def check_file(self, ctx: "FileContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        return iter(())


def register(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator: add ``cls`` to the rule registry."""
    if not _RULE_ID_RE.match(cls.id):
        raise ValueError(f"rule id {cls.id!r} does not match R0XX")
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id}")
    if cls.scope not in ("file", "project"):
        raise ValueError(f"{cls.id}: unknown scope {cls.scope!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules(select: Iterable[str] | None = None) -> list[LintRule]:
    """Instantiate the registered rules, ordered by id.

    ``select`` restricts to the given rule ids (unknown ids raise, so a
    typo in ``--select`` is loud rather than silently lint-nothing).
    """
    # Importing the rules package populates the registry on first use.
    import repro.devtools.rules  # noqa: F401  (import-for-effect)

    if select is not None:
        wanted = list(select)
        unknown = sorted(set(wanted) - set(_REGISTRY))
        if unknown:
            raise ValueError(
                f"unknown rule ids: {', '.join(unknown)} "
                f"(valid: {', '.join(sorted(_REGISTRY))})"
            )
        return [_REGISTRY[i]() for i in sorted(set(wanted))]
    return [_REGISTRY[i]() for i in sorted(_REGISTRY)]


def rule_by_id(rule_id: str) -> LintRule:
    import repro.devtools.rules  # noqa: F401  (import-for-effect)

    return _REGISTRY[rule_id]()
