"""The lint driver: file discovery, rule execution, reporting.

``lint_paths`` is the library entry point (used by tests and the CLI);
``main`` is the argv-level entry behind ``python -m repro lint`` and
``scripts/lint.py``.  Exit codes: 0 clean, 1 error-severity findings,
2 usage/parse problems.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.devtools.context import FileContext, ProjectContext
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import all_rules
from repro.devtools.suppressions import (
    expand_statement_lines,
    expand_statement_suppressions,
    filter_suppressed,
    line_justifications,
    line_suppressions,
)

__all__ = [
    "lint_paths",
    "changed_files",
    "add_arguments",
    "build_parser",
    "run",
    "main",
    "DEFAULT_PATHS",
]

#: What ``repro lint`` checks when no paths are given.
DEFAULT_PATHS = ("src", "tests", "scripts")

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "results", "node_modules"})


def find_root(start: Path) -> Path:
    """Nearest ancestor holding ``pyproject.toml`` (else ``start``)."""
    start = start.resolve()
    base = start if start.is_dir() else start.parent
    for candidate in (base, *base.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return base


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while preserving order (overlapping path arguments).
    seen: set[Path] = set()
    unique = []
    for p in files:
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            unique.append(p)
    return unique


def _parse_file(path: Path, root: Path) -> FileContext | Finding:
    try:
        relpath = path.resolve().relative_to(root)
    except ValueError:
        relpath = Path(path.name)
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return Finding(
            rule="E999",
            severity=Severity.ERROR,
            path=str(relpath),
            line=line,
            col=(getattr(exc, "offset", None) or 1) - 1,
            message=f"cannot parse: {exc.__class__.__name__}: {exc}",
        )
    return FileContext(path=path.resolve(), relpath=relpath, source=source, tree=tree)


def changed_files(root: Path, ref: str = "HEAD") -> set[str]:
    """Repo-relative paths of ``.py`` files changed since ``ref``.

    The set is git's view: ``git diff --name-only ref`` (staged and
    unstaged edits against the ref) plus untracked, non-ignored files.
    Raises :class:`RuntimeError` when git cannot answer (no repo, bad
    ref) — the CLI maps that to a usage error, exit code 2.
    """
    import subprocess

    changed: set[str] = set()
    for cmd in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, cwd=root, capture_output=True, text=True, check=False
            )
        except OSError as exc:  # git binary missing
            raise RuntimeError(f"cannot run git: {exc}") from exc
        if proc.returncode != 0:
            detail = proc.stderr.strip().splitlines()
            raise RuntimeError(
                f"`{' '.join(cmd)}` failed"
                + (f": {detail[0]}" if detail else "")
            )
        changed.update(
            line.strip()
            for line in proc.stdout.splitlines()
            if line.strip().endswith(".py")
        )
    return changed


def lint_paths(
    paths: Sequence[str | Path],
    *,
    root: Path | None = None,
    select: Sequence[str] | None = None,
    semantic_cache: bool = True,
    changed: set[str] | None = None,
    jobs: int | None = None,
    _project_out: list[ProjectContext] | None = None,
) -> list[Finding]:
    """Lint ``paths`` (files or directories), returning sorted findings.

    ``semantic_cache=False`` disables the per-file analysis cache under
    ``<root>/.lint-cache/`` (the semantic rules then re-summarize every
    file).  ``changed``, when given, narrows the *report* to findings
    in those repo-relative paths: file rules skip other files outright,
    and project rules still analyze the whole tree (cross-file findings
    need it) but only findings located in changed files are returned.
    ``jobs`` parallelizes semantic summarization (byte-identical
    findings either way).  ``_project_out``, when given, receives the
    built :class:`ProjectContext` so the CLI can reuse the memoized
    project graph for ``--graph`` without a second build.
    """
    path_objs = [Path(p) for p in paths]
    if root is None:
        root = find_root(path_objs[0] if path_objs else Path.cwd())
    rules = all_rules(select)

    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for path in iter_python_files(path_objs):
        parsed = _parse_file(path, root)
        if isinstance(parsed, Finding):
            if changed is None or parsed.path in changed:
                findings.append(parsed)
        else:
            contexts.append(parsed)

    suppressions = {
        str(ctx.relpath): expand_statement_suppressions(
            line_suppressions(ctx.lines), ctx.tree
        )
        for ctx in contexts
    }
    # Justification tails (``-- reason``), expanded over the same
    # statement extents: R014-R016 suppressions are inert without one.
    justifications = {
        str(ctx.relpath): expand_statement_lines(
            line_justifications(ctx.lines), ctx.tree
        )
        for ctx in contexts
    }
    for ctx in contexts:
        if changed is not None and str(ctx.relpath) not in changed:
            continue
        relpath = str(ctx.relpath)
        for rule in rules:
            if rule.scope != "file":
                continue
            findings.extend(
                filter_suppressed(
                    rule.check_file(ctx),
                    suppressions[relpath],
                    justifications[relpath],
                )
            )

    project = ProjectContext(root=root, files=contexts)
    if not semantic_cache:
        project.semantic_cache_path = None  # type: ignore[attr-defined]
    if jobs is not None:
        project.semantic_jobs = jobs  # type: ignore[attr-defined]
    if _project_out is not None:
        _project_out.append(project)
    for rule in rules:
        if rule.scope != "project":
            continue
        for finding in rule.check_project(project):
            if changed is not None and finding.path not in changed:
                continue
            kept = filter_suppressed(
                [finding],
                suppressions.get(finding.path, {}),
                justifications.get(finding.path, {}),
            )
            findings.extend(kept)

    return sorted(findings, key=Finding.sort_key)


def _render_text(findings: list[Finding], n_files: int) -> str:
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(
        f"checked {n_files} file(s): {errors} error(s), {warnings} warning(s)"
    )
    return "\n".join(lines)


def _render_json(findings: list[Finding], n_files: int) -> str:
    return json.dumps(
        {
            "files_checked": n_files,
            "errors": sum(1 for f in findings if f.severity is Severity.ERROR),
            "warnings": sum(
                1 for f in findings if f.severity is Severity.WARNING
            ),
            "findings": [f.to_dict() for f in findings],
        },
        indent=2,
    )


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root (default: nearest ancestor with pyproject.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--update-cache-schema",
        action="store_true",
        help="re-pin the cached-result schema fingerprint (after a "
        "deliberate CACHE_FORMAT bump) and exit",
    )
    parser.add_argument(
        "--types",
        action="store_true",
        help="additionally run the mypy baseline ratchet over the "
        "typed-core packages (skipped with a notice if mypy is not "
        "installed; see docs/devtools.md)",
    )
    parser.add_argument(
        "--update-type-baseline",
        action="store_true",
        help="with --types: rewrite the checked-in mypy baseline to the "
        "current diagnostics instead of failing on drift",
    )
    parser.add_argument(
        "--update-effects-baseline",
        action="store_true",
        help="rewrite the checked-in R016 fingerprint-purity baseline "
        "(src/repro/devtools/effects_baseline.txt) to the current "
        "impurity set and exit",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the project import/call graph, the MemTxn "
        "stage-transition graph, unit signatures, and the R014-R016 "
        "effects graph as JSON (see --graph-dir)",
    )
    parser.add_argument(
        "--graph-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="directory for --graph artifacts "
        "(default: <root>/results/lint)",
    )
    parser.add_argument(
        "--no-semantic-cache",
        action="store_true",
        help="disable the per-file semantic analysis cache "
        "(<root>/.lint-cache/)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help="only report findings in files changed since REF "
        "(git diff + untracked; REF defaults to HEAD). Project-wide "
        "analyses still see the whole tree, so cross-file findings "
        "stay correct — only the report is narrowed.",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallelize semantic summarization over N worker "
        "processes (default: serial; findings are byte-identical "
        "either way)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker for the repro tree "
        "(determinism, cache-schema drift, layering, ...)",
    )
    add_arguments(parser)
    return parser


def run(args: argparse.Namespace) -> int:
    """Execute a lint invocation from a parsed namespace."""
    root = args.root.resolve() if args.root else None

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:<20s} [{rule.severity.value}] "
                  f"{rule.rationale}")
        return 0

    if args.update_cache_schema:
        from repro.devtools.rules.cache_schema import write_pin

        try:
            pin = write_pin(root or find_root(Path.cwd()))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"re-pinned cache schema at {pin}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    files = iter_python_files([Path(p) for p in args.paths])
    if not files:
        print(
            "error: no Python files found under: "
            + ", ".join(str(p) for p in args.paths),
            file=sys.stderr,
        )
        return 2

    select = None
    if args.select:
        select = [s.strip().upper() for s in args.select.split(",") if s.strip()]

    changed: set[str] | None = None
    if args.changed is not None:
        try:
            changed = changed_files(
                root or find_root(Path(args.paths[0])), args.changed
            )
        except RuntimeError as exc:
            print(f"error: --changed: {exc}", file=sys.stderr)
            return 2
        if not changed:
            print(
                f"no Python files changed since {args.changed}; "
                "nothing to lint"
            )
            return 0

    if getattr(args, "update_effects_baseline", False):
        from repro.devtools.semantic.effects import update_baseline

        project_out = []
        lint_paths(
            args.paths,
            root=root,
            select=[],
            semantic_cache=not args.no_semantic_cache,
            jobs=args.jobs,
            _project_out=project_out,
        )
        baseline_path, entries = update_baseline(project_out[0])
        print(
            f"re-pinned effects baseline at {baseline_path} "
            f"({len(entries)} entr{'y' if len(entries) == 1 else 'ies'})"
        )
        return 0

    project_out: list[ProjectContext] = []
    try:
        findings = lint_paths(
            args.paths,
            root=root,
            select=select,
            semantic_cache=not args.no_semantic_cache,
            changed=changed,
            jobs=args.jobs,
            _project_out=project_out,
        )
    except ValueError as exc:  # unknown --select ids
        print(f"error: {exc}", file=sys.stderr)
        return 2

    render = _render_json if args.format == "json" else _render_text
    print(render(findings, len(files)))
    has_errors = any(f.severity is Severity.ERROR for f in findings)
    status = 1 if has_errors else 0

    if args.graph and project_out:
        written = _dump_graphs(project_out[0], args.graph_dir)
        for path in written:
            print(f"graph: wrote {path}")

    if args.types:
        from repro.devtools.semantic.typegate import run_type_gate

        gate = run_type_gate(
            root or find_root(Path.cwd()),
            update_baseline=args.update_type_baseline,
        )
        for message in gate.messages:
            print(message)
        if not gate.ok:
            status = max(status, 1)

    return status


def _dump_graphs(project: ProjectContext, graph_dir: Path | None) -> list[Path]:
    """Write the ``--graph`` JSON artifacts; returns the written paths.

    Artifacts go through :func:`repro.obs.io.atomic_write_text` — the
    default location is under ``results/``, where rule R006 reserves
    writes for the atomic helpers.
    """
    from repro.obs.io import atomic_write_text

    from repro.devtools.semantic.graph import graph_for_project
    from repro.devtools.semantic.lifecycle import analyze_engine

    out_dir = graph_dir if graph_dir is not None else project.root / "results" / "lint"
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    graph = graph_for_project(project)
    graph_path = out_dir / "project_graph.json"
    atomic_write_text(graph_path, json.dumps(graph.to_dict(), indent=2) + "\n")
    written.append(graph_path)

    engine_ctx = project.file_for("src/repro/sim/engine.py")
    if engine_ctx is not None:
        analysis = analyze_engine(engine_ctx.tree)
        stage_path = out_dir / "stage_graph.json"
        atomic_write_text(
            stage_path, json.dumps(analysis.to_dict(), indent=2) + "\n"
        )
        written.append(stage_path)

    from repro.devtools.semantic.units import units_graph_doc

    units_path = out_dir / "units_graph.json"
    atomic_write_text(
        units_path, json.dumps(units_graph_doc(project), indent=2) + "\n"
    )
    written.append(units_path)

    from repro.devtools.semantic.effects import effects_graph_doc

    effects_path = out_dir / "effects_graph.json"
    atomic_write_text(
        effects_path, json.dumps(effects_graph_doc(project), indent=2) + "\n"
    )
    written.append(effects_path)
    return written


def main(argv: Sequence[str] | None = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
