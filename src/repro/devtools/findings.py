"""Lint findings: what a rule reports, and how it is rendered.

A :class:`Finding` pins one defect to a file and line.  Findings sort
by location so output is stable across rule-execution order, which
keeps both the human and the JSON output diffable in CI logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the lint run; ``WARNING`` findings are
    reported but do not (used while migrating a rule in, so CI can show
    the debt without blocking every PR at once).
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: rule id, e.g. ``"R001"``
    severity: Severity
    path: str  #: path as given to the linter (repo-relative in CI)
    line: int  #: 1-based line number
    col: int  #: 0-based column offset, as in :mod:`ast`
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def render(self) -> str:
        """``path:line:col: R00X [severity] message`` (editor-clickable)."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
