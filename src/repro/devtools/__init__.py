"""Developer tooling: the repo's own static-analysis pass.

``repro.devtools`` hosts an AST-walking lint framework plus the
repo-specific rules that guard the reproduction's headline guarantees:

* **R001 determinism** — no unseeded global RNG, no wall-clock reads in
  the simulator, no iteration over bare sets in sim hot paths;
* **R002 float-equality** — no ``==``/``!=`` against float expressions
  in library code;
* **R003 cache-schema drift** — the serialized field sets of
  ``SimResult``/``SchemeResult``/``WindowSample`` are fingerprinted and
  pinned against ``CACHE_FORMAT``, so changing them without bumping the
  version (the PR 1 ``windows`` bug) fails the lint;
* **R004 layering** — experiments/metrics/scripts use the
  ``repro.sim`` facade, never engine internals; the simulator never
  imports the experiment layer;
* **R005 picklability** — workers and specs handed to the
  ``repro.exec`` pool are module-level and closure-free;
* **R006 atomic-write** — nothing writes under ``results/`` except
  through the atomic-replace helpers.

Run it with ``python -m repro lint [paths...]`` or
``python scripts/lint.py``; suppress a finding in place with a
``# repro: noqa[R001]`` comment.  See ``docs/devtools.md`` for the rule
catalog and how to add a rule.
"""

from repro.devtools.findings import Finding, Severity
from repro.devtools.linter import lint_paths, main
from repro.devtools.registry import LintRule, all_rules, register

__all__ = [
    "Finding",
    "Severity",
    "LintRule",
    "all_rules",
    "register",
    "lint_paths",
    "main",
]
