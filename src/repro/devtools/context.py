"""Per-file and per-project context handed to lint rules.

A :class:`FileContext` bundles everything a file-scoped rule needs —
source text, parsed AST, and the file's *layer identity* (dotted module
name under ``src/``, or its ``tests``/``scripts``/``benchmarks`` role).
A :class:`ProjectContext` wraps the whole batch for project-scoped
rules (e.g. the cache-schema fingerprint check, which correlates
several files and a pinned artifact).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path

__all__ = ["FileContext", "ProjectContext", "module_name_for"]


def module_name_for(relpath: Path) -> str | None:
    """Dotted module name for a repo-relative path, or ``None``.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``tests/test_exec.py`` -> ``tests.test_exec``;
    ``scripts/lint.py`` -> ``scripts.lint``.  Paths outside those
    roots have no layer identity and get ``None``.
    """
    parts = relpath.parts
    if not parts or relpath.suffix != ".py":
        return None
    if parts[0] == "src":
        parts = parts[1:]
    elif parts[0] not in ("tests", "scripts", "benchmarks", "examples"):
        return None
    if not parts:
        return None
    stem = parts[:-1] + ((parts[-1][: -len(".py")],) if parts[-1] != "__init__.py" else ())
    return ".".join(stem) if stem else None


@dataclass
class FileContext:
    """One parsed source file, as seen by file-scoped rules."""

    path: Path  #: absolute path on disk
    relpath: Path  #: path relative to the project root
    source: str
    tree: ast.Module

    @cached_property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    @cached_property
    def module(self) -> str | None:
        """Dotted module name (``repro.sim.engine``), if resolvable."""
        return module_name_for(self.relpath)

    # --- layer predicates, used by rules to scope themselves -----------

    @property
    def is_test(self) -> bool:
        parts = self.relpath.parts
        name = self.path.name
        return (
            (bool(parts) and parts[0] == "tests")
            or name.startswith("test_")
            or name == "conftest.py"
        )

    @property
    def is_script(self) -> bool:
        parts = self.relpath.parts
        return bool(parts) and parts[0] in ("scripts", "benchmarks", "examples")

    def in_package(self, *prefixes: str) -> bool:
        """True if the file's module is (under) any of ``prefixes``."""
        mod = self.module
        if mod is None:
            return False
        return any(mod == p or mod.startswith(p + ".") for p in prefixes)

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (best effort; '' if unavailable)."""
        return ast.get_source_segment(self.source, node) or ""


@dataclass
class ProjectContext:
    """The whole lint batch, for project-scoped rules."""

    root: Path  #: project root (directory holding ``pyproject.toml``)
    files: list[FileContext] = field(default_factory=list)

    def file_for(self, relpath: str) -> FileContext | None:
        """The batch's context for ``relpath``, parsing from disk if the
        file exists but was not part of the linted path set."""
        target = (self.root / relpath).resolve()
        for ctx in self.files:
            if ctx.path == target:
                return ctx
        if not target.is_file():
            return None
        source = target.read_text()
        try:
            tree = ast.parse(source, filename=str(target))
        except SyntaxError:
            return None
        return FileContext(
            path=target,
            relpath=Path(relpath),
            source=source,
            tree=tree,
        )
