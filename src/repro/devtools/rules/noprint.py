"""R007: no-print — simulation layers stay silent.

``repro.sim`` and ``repro.core`` execute inside pool workers and inner
sweep loops; a stray debugging ``print()`` there interleaves garbage
into the CLI's progress line from several processes at once and is
invisible in any structured record of the run.  Diagnostics from those
layers belong in the observability stack instead: a counter/instant on
the ambient tracer (:mod:`repro.obs.trace`), a metric on the registry
(:mod:`repro.obs.metrics`), or a structured decision record
(:meth:`repro.core.controller.BaseController.note_decision`) — all of
which survive into the trace file and ``repro trace summarize``.

The rule is a *warning* (reported, does not fail the lint run) and
flags only calls of the ``print`` builtin; writing to an explicit
stream object is not its business.  A deliberate console escape hatch
takes a ``# repro: noqa[R007]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import LintRule, register

__all__ = ["NoPrintRule"]

#: Layers that must not print: their output channel is the trace.
_SILENT_LAYERS = ("repro.sim", "repro.core")


@register
class NoPrintRule(LintRule):
    id = "R007"
    name = "no-print"
    rationale = (
        "sim/core run inside pool workers; diagnostics go through "
        "repro.obs, not stdout"
    )
    severity = Severity.WARNING

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_test or not ctx.in_package(*_SILENT_LAYERS):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "bare print() in a simulation layer; emit through the "
                    "tracer/metrics registry (repro.obs) or a structured "
                    "decision record instead, or add '# repro: noqa[R007]' "
                    "for a deliberate console escape hatch",
                )
