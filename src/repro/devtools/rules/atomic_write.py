"""R006: atomic-write — nothing writes under ``results/`` directly.

The results cache is shared by concurrent sweep workers (PR 1 made
``ResultStore.save`` publish through a uniquely-named temp file +
``os.replace``).  Any *other* code path that opens a file under
``results/`` for writing can tear a reader mid-JSON or clobber a
concurrent writer, so all such writes must route through
``repro.experiments.common``'s helpers (``ResultStore.save`` /
``atomic_write_text``).

Detection is taint-based and deliberately conservative: a write-mode
``open()`` / ``Path.open()`` / ``write_text`` / ``write_bytes`` whose
path expression mentions a ``results`` path — either a string constant
containing ``results`` or a module-level name assigned from one (e.g.
``OUT = ROOT / "results" / "reports"``) — is an error outside the
helper module itself.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import LintRule, register

__all__ = ["AtomicWriteRule"]

#: The one module allowed to open result files raw: it owns the
#: temp-name + os.replace publication protocol.
_HELPER_MODULE = "repro.experiments.common"

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _mentions_results_string(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and "results" in sub.value
        ):
            return True
    return False


def _tainted_names(tree: ast.Module) -> set[str]:
    """Module-level names whose value expression mentions ``results``,
    plus names assigned from already-tainted names."""
    tainted: set[str] = set()
    for _ in range(2):  # one extra pass for simple name-to-name chains
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
            else:
                continue
            is_tainted = _mentions_results_string(value) or any(
                isinstance(sub, ast.Name) and sub.id in tainted
                for sub in ast.walk(value)
            )
            if is_tainted:
                for target in targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
    return tainted


def _is_write_mode(call: ast.Call, mode_pos: int) -> bool:
    """Does the open()-style call request a writing mode?"""
    mode: ast.expr | None = None
    if len(call.args) > mode_pos:
        mode = call.args[mode_pos]
    else:
        for kw in call.keywords:
            if kw.arg == "mode":
                mode = kw.value
    if mode is None:
        return False  # default "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(c in mode.value for c in "wax+")
    return True  # dynamic mode: assume the worst


def _touches_results(node: ast.AST, tainted: set[str]) -> bool:
    if _mentions_results_string(node):
        return True
    return any(
        isinstance(sub, ast.Name) and sub.id in tainted for sub in ast.walk(node)
    )


@register
class AtomicWriteRule(LintRule):
    id = "R006"
    name = "atomic-write"
    rationale = "results/ is shared by concurrent workers; writes must be atomic"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_test or ctx.module == _HELPER_MODULE:
            return
        if not (ctx.in_package("repro") or ctx.is_script):
            return
        tainted = _tainted_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target: ast.AST | None = None
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                if node.args and _is_write_mode(node, mode_pos=1):
                    target = node.args[0]
            elif isinstance(node.func, ast.Attribute):
                if node.func.attr == "open" and _is_write_mode(node, mode_pos=0):
                    target = node.func.value
                elif node.func.attr in _WRITE_METHODS:
                    target = node.func.value
            if target is not None and _touches_results(target, tainted):
                yield self.finding(
                    ctx,
                    node,
                    "non-atomic write under results/; route it through "
                    "repro.experiments.common.atomic_write_text (or "
                    "ResultStore.save) so concurrent workers cannot tear it",
                )
