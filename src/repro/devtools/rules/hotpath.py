"""R008: hot-path-allocation — the simulator's event loop stays closure-free.

The PR-4 hot-path refactor replaced per-event closures with reusable
:class:`~repro.sim.engine.MemTxn` transaction objects and pre-bound
callbacks: every allocation the dispatch loop avoids is ~100ns of
allocator and collector work times tens of millions of events.  This
rule keeps that property from regressing:

* **error** — a ``lambda`` or nested ``def`` that executes *per event*
  (i.e. inside any function of a hot simulation module other than
  ``__init__``) allocates a fresh function object, and usually a cell
  chain, on every dispatch.  Construction-time closures are exempt:
  module level, class bodies, and ``__init__`` run once per simulator,
  not once per event — that is where ``functools.partial`` pre-binding
  belongs (see ``Simulator.__init__``).
* **warning** — a class on the hot-class registry missing ``__slots__``
  (or ``@dataclass(slots=True)``): instances of these are created or
  touched millions of times per run, and a ``__dict__`` per instance
  costs both memory and every-attribute-access hash lookups.

``repro.sim.probes`` is deliberately *not* a hot module: probes are
opt-in diagnostics that wrap the dispatch path with closures by design,
and their documented cost model already says "don't use while
benchmarking" (see ``docs/observability.md``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding, Severity
from repro.devtools.registry import LintRule, register

__all__ = ["HotPathRule"]

#: Modules whose function bodies run once per simulated event.
_HOT_MODULES = (
    "repro.sim.engine",
    "repro.sim.dram",
    "repro.sim.cache",
    "repro.sim.core",
    "repro.sim.interconnect",
    "repro.sim.stats",
)

#: Classes instantiated or field-accessed on the per-event path.  Each
#: must carry ``__slots__`` (or ``@dataclass(slots=True)``).  The
#: registry is explicit rather than "every class in a hot module":
#: StatsCollector, SimResult and WindowSample are per-run/per-window
#: objects where dict flexibility is worth more than layout.
_HOT_CLASSES = frozenset({
    "MemTxn", "EventQueue", "Simulator",
    "Warp", "IssueServer", "Core",
    "CacheStats", "SetAssocCache", "MSHRTable",
    "DRAMRequest", "DRAMChannel", "_Bank",
    "Link", "Crossbar",
    "AppStats",
})


def _has_slots(node: ast.ClassDef) -> bool:
    """True if the class declares ``__slots__`` one way or another."""
    for stmt in node.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for dec in node.decorator_list:
        # @dataclass(slots=True), possibly spelled dataclasses.dataclass
        if isinstance(dec, ast.Call):
            for kw in dec.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    return False


def _per_event_closures(
    node: ast.AST, runtime: bool
) -> Iterator[tuple[ast.AST, str]]:
    """Yield (node, kind) for function objects created per call.

    ``runtime`` is True while inside the body of any function other
    than ``__init__`` — code there runs once per event, so a ``lambda``
    or ``def`` encountered allocates on the hot path.  Module level,
    class bodies, decorators, and argument defaults execute where the
    enclosing statement does.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        if runtime:
            yield node, "nested function definition"
        for dec in node.decorator_list:
            yield from _per_event_closures(dec, runtime)
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None:
                yield from _per_event_closures(default, runtime)
        body_runtime = runtime or node.name != "__init__"
        for stmt in node.body:
            yield from _per_event_closures(stmt, body_runtime)
    elif isinstance(node, ast.Lambda):
        if runtime:
            yield node, "lambda"
        yield from _per_event_closures(node.body, runtime)
    elif isinstance(node, ast.ClassDef):
        for dec in node.decorator_list:
            yield from _per_event_closures(dec, runtime)
        for stmt in node.body:
            yield from _per_event_closures(stmt, runtime)
    else:
        for child in ast.iter_child_nodes(node):
            yield from _per_event_closures(child, runtime)


@register
class HotPathRule(LintRule):
    id = "R008"
    name = "hot-path-allocation"
    rationale = (
        "dispatch-path closures and dict-backed hot classes cost an "
        "allocation per event; pre-bind in __init__ and use __slots__"
    )
    severity = Severity.ERROR

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_test or not ctx.in_package(*_HOT_MODULES):
            return
        for stmt in ctx.tree.body:
            for node, kind in _per_event_closures(stmt, False):
                yield self.finding(
                    ctx,
                    node,
                    f"{kind} on the event-dispatch path allocates a function "
                    "object per event; pre-bind the callback at construction "
                    "time (functools.partial / bound method in __init__) or "
                    "make the event object callable (see DRAMRequest)",
                )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name in _HOT_CLASSES
                and not _has_slots(node)
            ):
                yield Finding(
                    rule=self.id,
                    severity=Severity.WARNING,
                    path=str(ctx.relpath),
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"hot class {node.name} has no __slots__: its "
                        "instances live on the per-event path, where a "
                        "__dict__ costs memory and attribute-lookup time; "
                        "declare __slots__ or use @dataclass(slots=True)"
                    ),
                )
