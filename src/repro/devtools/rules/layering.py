"""R004: layering — experiments consume the sim facade, never internals.

The dependency contract of the tree:

* ``repro.experiments``, ``repro.metrics``, ``repro.analysis`` and the
  top-level ``scripts/`` consume the simulator only through the public
  facade ``repro.sim`` (``from repro.sim import Simulator, SimResult``).
  Importing ``repro.sim.<submodule>`` from there couples experiment
  code to engine internals, which is how refactors of the hot path end
  up breaking figure scripts.
* ``repro.sim`` never imports the layers above it (``repro.experiments``,
  ``repro.metrics``, ``repro.analysis``) — the engine must stay usable
  without the experiment harness.  ``if TYPE_CHECKING:`` imports are
  exempt (they vanish at runtime).
* ``repro.sim`` also never imports the live-telemetry consumers
  ``repro.obs.live`` / ``repro.obs.dashboard``: those modules sit
  *above* the simulator (they stream and render its outputs), and the
  engine's only sanctioned observability seam is the tracer/metrics
  layer (``repro.obs.trace`` / ``repro.obs.metrics``) plus the probe
  API.  Publishing engine self-profiling through the ambient metrics
  registry keeps profiled and unprofiled runs bit-identical.

Tests are exempt: white-box tests poke internals by design.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import LintRule, register

__all__ = ["LayeringRule"]

#: Layers that must go through the ``repro.sim`` facade.
_FACADE_CONSUMERS = ("repro.experiments", "repro.metrics", "repro.analysis")

#: Layers the simulator itself may never import.
_ABOVE_SIM = ("repro.experiments", "repro.metrics", "repro.analysis")

#: Observability modules that *consume* simulator output (live stream,
#: dashboard); the engine may use the tracer/metrics seam, never these.
_SIM_FORBIDDEN_OBS = ("repro.obs.live", "repro.obs.dashboard")


def _type_checking_lines(tree: ast.Module) -> set[int]:
    """Line numbers inside ``if TYPE_CHECKING:`` blocks."""
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (
            test.id
            if isinstance(test, ast.Name)
            else test.attr
            if isinstance(test, ast.Attribute)
            else None
        )
        if name == "TYPE_CHECKING":
            for stmt in node.body:
                lines.update(range(stmt.lineno, (stmt.end_lineno or stmt.lineno) + 1))
    return lines


def _imported_modules(node: ast.stmt) -> list[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        return [node.module]
    return []


def _under(module: str, *prefixes: str) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


@register
class LayeringRule(LintRule):
    id = "R004"
    name = "layering"
    rationale = "experiments use the repro.sim facade; sim never imports upward"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_test:
            return
        consumer = ctx.in_package(*_FACADE_CONSUMERS) or ctx.is_script
        provider = ctx.in_package("repro.sim")
        if not (consumer or provider):
            return
        exempt = _type_checking_lines(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if node.lineno in exempt:
                continue
            for module in _imported_modules(node):
                if consumer and _under(module, "repro.sim") and module != "repro.sim":
                    yield self.finding(
                        ctx,
                        node,
                        f"import of sim internal '{module}'; import from the "
                        "public facade 'repro.sim' instead (add the name to "
                        "the facade if it is missing)",
                    )
                elif provider and _under(module, *_ABOVE_SIM):
                    yield self.finding(
                        ctx,
                        node,
                        f"repro.sim must not import the experiment layer "
                        f"('{module}'); move the dependency up or inject it",
                    )
                elif provider and _under(module, *_SIM_FORBIDDEN_OBS):
                    yield self.finding(
                        ctx,
                        node,
                        f"repro.sim must not import '{module}': live "
                        "telemetry consumes engine output; publish through "
                        "the tracer/metrics seam (repro.obs.trace, "
                        "repro.obs.metrics) or the probe API instead",
                    )
