"""R002: float-equality — no ``==``/``!=`` against float expressions.

Exact float comparison in library code is almost always a latent bug:
EB/IPC values arrive through long chains of arithmetic, so "is the
miss rate zero" must be an epsilon test documented against the metric's
definition (see ``repro.metrics.bandwidth.EPS``, this rule's seed
example).  The rule flags comparisons where an operand is statically
float-like: a float literal, a ``float(...)`` call, or ``math.inf`` /
``math.nan``.

Tests are exempt — asserting an exact value is the *point* of a
determinism regression test — as is comparison against ``0.0`` inside
an allowlisted module (none today).  Intentional exact comparisons in
library code take a ``# repro: noqa[R002]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import LintRule, register

__all__ = ["FloatEqualityRule", "ALLOWED_MODULES"]

#: Modules exempt from R002 (dotted names).  Deliberately empty: the
#: historical offender (repro.metrics.bandwidth) now uses EPS guards.
ALLOWED_MODULES: frozenset[str] = frozenset()


def _is_floatlike(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return True
    if isinstance(node, ast.Attribute) and node.attr in ("inf", "nan"):
        base = node.value
        return isinstance(base, ast.Name) and base.id in ("math", "np", "numpy")
    if isinstance(node, ast.UnaryOp):
        return _is_floatlike(node.operand)
    return False


@register
class FloatEqualityRule(LintRule):
    id = "R002"
    name = "float-equality"
    rationale = "exact float comparison hides epsilon decisions; make them explicit"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.is_test:
            return
        if ctx.module is not None and ctx.module in ALLOWED_MODULES:
            return
        if not (ctx.in_package("repro") or ctx.is_script):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatlike(left) or _is_floatlike(right):
                    frag = ctx.segment(node) or "float comparison"
                    yield self.finding(
                        ctx,
                        node,
                        f"exact float comparison '{frag.strip()}'; compare "
                        "against a documented epsilon (see "
                        "repro.metrics.bandwidth.EPS) or add "
                        "'# repro: noqa[R002]' if exactness is intended",
                    )
                    break
