"""R003: cache-schema drift — serialized fields are pinned to CACHE_FORMAT.

``ResultStore`` memoizes simulation products as JSON keyed by
``CACHE_FORMAT``.  PR 1 shipped the failure mode this rule exists for:
``SimResult`` grew a ``windows`` field, the serializer in
``repro.experiments.common`` silently dropped it, and cached scheme
evaluations disagreed with fresh ones until ``CACHE_FORMAT`` was bumped
to 2.

The rule statically extracts the cache-visible schema — the annotated
fields of ``SimResult``, ``SchemeResult`` and ``WindowSample`` plus the
serializer's ``_SAMPLE_FIELDS`` tuple — fingerprints it, and compares
(fingerprint, ``CACHE_FORMAT``) against the pin checked in at
``src/repro/devtools/cache_schema.json``.  Changing any of those fields
without bumping ``CACHE_FORMAT`` *and* refreshing the pin
(``python -m repro lint --update-cache-schema``) is an error.
"""

from __future__ import annotations

import ast
import hashlib
import json
from collections.abc import Iterator
from pathlib import Path

from repro.devtools.context import FileContext, ProjectContext
from repro.devtools.findings import Finding
from repro.devtools.registry import LintRule, register

__all__ = [
    "CacheSchemaRule",
    "PIN_RELPATH",
    "extract_schema",
    "schema_fingerprint",
    "write_pin",
]

#: Where the pinned (CACHE_FORMAT, fingerprint) lives, repo-relative.
PIN_RELPATH = "src/repro/devtools/cache_schema.json"

#: class name -> repo-relative file defining it.
_SCHEMA_CLASSES = {
    "SimResult": "src/repro/sim/engine.py",
    "SchemeResult": "src/repro/core/runner.py",
    "WindowSample": "src/repro/sim/stats.py",
}

#: The serializer module: holds CACHE_FORMAT and _SAMPLE_FIELDS.
_SERIALIZER_RELPATH = "src/repro/experiments/common.py"


def _class_fields(tree: ast.Module, class_name: str) -> list[str] | None:
    """Annotated field names of a (dataclass-style) class body."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
    return None


def _module_constant(tree: ast.Module, name: str) -> tuple[ast.stmt, object] | None:
    """A module-level ``NAME = <literal>`` assignment and its value."""
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                try:
                    return stmt, ast.literal_eval(value)
                except ValueError:
                    return stmt, None
    return None


def extract_schema(project: ProjectContext) -> tuple[dict, int, FileContext] | None:
    """(field schema, CACHE_FORMAT, serializer ctx) — or None if this
    tree does not contain the result-cache stack at all."""
    serializer = project.file_for(_SERIALIZER_RELPATH)
    if serializer is None:
        return None
    fmt = _module_constant(serializer.tree, "CACHE_FORMAT")
    if fmt is None or not isinstance(fmt[1], int):
        return None
    schema: dict[str, list[str]] = {}
    for class_name, relpath in _SCHEMA_CLASSES.items():
        ctx = project.file_for(relpath)
        fields = _class_fields(ctx.tree, class_name) if ctx else None
        if fields is None:
            return None
        schema[class_name] = fields
    sample_fields = _module_constant(serializer.tree, "_SAMPLE_FIELDS")
    if sample_fields is None or not isinstance(sample_fields[1], tuple):
        return None
    schema["_SAMPLE_FIELDS"] = list(sample_fields[1])
    return schema, fmt[1], serializer


def schema_fingerprint(schema: dict) -> str:
    blob = json.dumps(schema, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def load_pin(root: Path) -> dict | None:
    path = root / PIN_RELPATH
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def write_pin(root: Path) -> Path:
    """Recompute the schema and rewrite the pin file (CLI helper)."""
    project = ProjectContext(root=root)
    extracted = extract_schema(project)
    if extracted is None:
        raise ValueError(f"cannot extract cache schema under {root}")
    schema, cache_format, _ = extracted
    path = root / PIN_RELPATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "cache_format": cache_format,
                "fingerprint": schema_fingerprint(schema),
                "schema": schema,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return path


@register
class CacheSchemaRule(LintRule):
    id = "R003"
    name = "cache-schema-drift"
    rationale = (
        "serialized result fields must not change without a CACHE_FORMAT bump"
    )
    scope = "project"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        extracted = extract_schema(project)
        if extracted is None:
            return
        schema, cache_format, serializer = extracted
        anchor = _module_constant(serializer.tree, "CACHE_FORMAT")
        assert anchor is not None  # extract_schema validated it
        line = anchor[0].lineno
        pin = load_pin(project.root)
        fingerprint = schema_fingerprint(schema)
        fix = "bump CACHE_FORMAT and run 'python -m repro lint --update-cache-schema'"
        if pin is None:
            yield self.finding(
                serializer,
                None,
                f"no schema pin at {PIN_RELPATH}; run "
                "'python -m repro lint --update-cache-schema' to create it",
                line=line,
            )
            return
        if cache_format != pin.get("cache_format"):
            yield self.finding(
                serializer,
                None,
                f"CACHE_FORMAT is {cache_format} but the pin records "
                f"{pin.get('cache_format')}; {fix}",
                line=line,
            )
        elif fingerprint != pin.get("fingerprint"):
            changed = sorted(
                name
                for name in schema
                if schema[name] != (pin.get("schema") or {}).get(name)
            )
            yield self.finding(
                serializer,
                None,
                "cached-result schema drifted without a CACHE_FORMAT bump "
                f"(changed: {', '.join(changed) or 'unknown'}); stale cache "
                f"entries would half-deserialize — {fix}",
                line=line,
            )
