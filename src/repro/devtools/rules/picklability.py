"""R005: picklability — pool workers and specs must survive pickling.

``repro.exec.pool.run_jobs`` ships its worker and every spec to child
processes via pickle.  Pickle resolves functions and classes *by
qualified name*, so lambdas, functions defined inside other functions,
and classes constructed in local scope all fail — at runtime, deep in a
sweep, on the platforms that spawn (macOS/Windows) but not on fork
Linux where the tests run.  This rule rejects the failure statically:

* the worker argument of ``run_jobs(...)`` / ``pool.submit(...)`` must
  be a module-level function (not a lambda, not a nested ``def``);
* ``SimJob(...)`` / ``OpenSimJob(...)`` construction must not embed
  lambdas in any field (e.g. a callable tag or progress hook smuggled
  into a spec);
* the factory registered with ``register_policy(name, factory)`` must
  be module-level: ``OpenSimJob`` carries policies *by name* and the
  worker rebuilds them from the registry, so a lambda or nested-def
  factory would resurrect the exact failure the name indirection
  exists to avoid.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import LintRule, register

__all__ = ["PicklabilityRule"]

#: Callees whose first positional argument is a pool-shipped worker.
_POOL_ENTRY_POINTS = frozenset({"run_jobs", "submit"})

#: Spec classes shipped to workers whole.
_SPEC_CLASSES = frozenset({"SimJob", "OpenSimJob"})

#: Registration calls whose factory argument must be module-level.
_POLICY_REGISTRARS = frozenset({"register_policy"})


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _nested_defs(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function's body."""
    nested: set[str] = set()

    def visit(node: ast.AST, inside_fn: bool) -> None:
        for child in ast.iter_child_nodes(node):
            is_fn = isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_fn and inside_fn:
                nested.add(child.name)
            visit(child, inside_fn or is_fn)

    visit(tree, False)
    return nested


@register
class PicklabilityRule(LintRule):
    id = "R005"
    name = "picklability"
    rationale = "pool workers/specs resolve by qualified name; no lambdas or closures"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        # Applies everywhere (tests included): a nested worker in a test
        # passes on fork-Linux CI and breaks users on spawn platforms.
        nested = _nested_defs(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _callee_name(node.func)
            if name in _POOL_ENTRY_POINTS and node.args:
                worker = node.args[0]
                if isinstance(worker, ast.Lambda):
                    yield self.finding(
                        ctx,
                        worker,
                        f"lambda passed as {name}() worker cannot be "
                        "pickled to pool processes; define a module-level "
                        "function",
                    )
                elif isinstance(worker, ast.Name) and worker.id in nested:
                    yield self.finding(
                        ctx,
                        worker,
                        f"'{worker.id}' is defined inside a function; pool "
                        "workers must be module-level so pickle can resolve "
                        "them by qualified name",
                    )
            elif name in _SPEC_CLASSES:
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    if isinstance(arg, ast.Lambda):
                        yield self.finding(
                            ctx,
                            arg,
                            f"lambda embedded in {name}(...) field; specs "
                            "are pickled whole — pass data, not closures",
                        )
            elif name in _POLICY_REGISTRARS:
                factory = None
                if len(node.args) >= 2:
                    factory = node.args[1]
                else:
                    for kw in node.keywords:
                        if kw.arg == "factory":
                            factory = kw.value
                if isinstance(factory, ast.Lambda):
                    yield self.finding(
                        ctx,
                        factory,
                        f"lambda registered as a policy factory via {name}(); "
                        "job specs carry policies by name and workers rebuild "
                        "them from the registry, so factories must be "
                        "module-level functions",
                    )
                elif isinstance(factory, ast.Name) and factory.id in nested:
                    yield self.finding(
                        ctx,
                        factory,
                        f"'{factory.id}' is defined inside a function; policy "
                        "factories are resolved by qualified name in pool "
                        "workers and must be module-level",
                    )
