"""R001: determinism — no ambient randomness or wall-clock in the sim.

Byte-identical parallel/serial sweeps (PR 1's guarantee) require every
source of nondeterminism to flow from the run's seed.  Three leak
classes are banned:

* calls through the *module-level* ``random`` / ``np.random`` state
  anywhere in library code — each simulation object must own a seeded
  ``random.Random`` (see ``repro.workloads.synthetic.stream_seed``);
* wall-clock / entropy reads (``time.time``, ``os.urandom``,
  ``uuid.uuid4``, ...) inside ``repro.sim`` and ``repro.core``, whose
  outputs feed simulation state;
* iterating a bare ``set`` display/constructor in ``repro.sim`` /
  ``repro.core`` hot paths — set order is salted per process, so it
  leaks process identity into event order (sort first, or use a dict).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import LintRule, register

__all__ = ["DeterminismRule"]

#: ``random`` module attributes that are legitimate to touch: the
#: seeded-generator classes, not the hidden global instance.
_RANDOM_OK = frozenset({"Random", "SystemRandom"})

#: numpy.random attributes allowed: explicit generator construction.
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})

#: (module, attr) wall-clock / entropy reads banned in sim layers.
_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("os", "urandom"),
        ("os", "getrandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
        ("secrets", "token_bytes"),
        ("secrets", "token_hex"),
        ("secrets", "randbelow"),
    }
)

#: layers whose outputs are simulation state: clock/set-order leaks here
#: break run reproducibility, not just logging cosmetics.
_SIM_LAYERS = ("repro.sim", "repro.core", "repro.workloads")


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_display(node: ast.AST) -> bool:
    """A set literal, ``set(...)`` call, or set comprehension."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "set"
    )


@register
class DeterminismRule(LintRule):
    id = "R001"
    name = "determinism"
    rationale = (
        "all randomness flows from the run seed; no wall-clock or "
        "set-order leaks into simulation state"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        # Library code only: tests may use ambient randomness to build
        # fixtures, and scripts may time themselves with time.time().
        if not ctx.in_package("repro"):
            return
        in_sim_layer = ctx.in_package(*_SIM_LAYERS)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, in_sim_layer)
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in _RANDOM_OK:
                        yield self.finding(
                            ctx,
                            node,
                            f"'from random import {alias.name}' binds the "
                            "module-level RNG; construct a seeded "
                            "random.Random instead",
                        )
            elif in_sim_layer and isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_display(node.iter):
                    yield self.finding(
                        ctx,
                        node.iter,
                        "iterating a bare set: iteration order is "
                        "process-salted; sort it (or use a dict) before "
                        "it can reach simulation state",
                    )
            elif in_sim_layer and isinstance(node, ast.comprehension):
                if _is_set_display(node.iter):
                    yield self.finding(
                        ctx,
                        node.iter,
                        "comprehension over a bare set: iteration order "
                        "is process-salted; sort it first",
                    )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, in_sim_layer: bool
    ) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        # random.<fn>(...) through the hidden module-level generator.
        if parts[0] == "random" and len(parts) == 2 and parts[1] not in _RANDOM_OK:
            yield self.finding(
                ctx,
                node,
                f"unseeded module-level RNG call '{dotted}()'; use a "
                "random.Random seeded from the run seed",
            )
            return
        # np.random.<fn> / numpy.random.<fn> global-state calls.
        if (
            len(parts) >= 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] not in _NP_RANDOM_OK
        ):
            yield self.finding(
                ctx,
                node,
                f"global numpy RNG call '{dotted}()'; use "
                "np.random.default_rng(seed)",
            )
            return
        # Wall-clock / entropy reads inside the simulation layers.
        if in_sim_layer and len(parts) == 2 and tuple(parts) in _CLOCK_CALLS:
            yield self.finding(
                ctx,
                node,
                f"'{dotted}()' reads ambient time/entropy inside the "
                "simulation layer; derive everything from the run seed "
                "and simulated clock",
            )
