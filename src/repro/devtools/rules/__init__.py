"""Repo-specific lint rules.

Importing this package registers every rule with
:mod:`repro.devtools.registry`.  Add a rule by creating a module here
that defines a :class:`~repro.devtools.registry.LintRule` subclass
decorated with ``@register``, and importing it below.

The per-file rules (R001–R008) live in this package; the whole-program
semantic rules (R009–R016) live in :mod:`repro.devtools.semantic` and
are imported here for the same register-on-import effect.
"""

from repro.devtools.rules import (  # noqa: F401  (import-for-effect)
    atomic_write,
    cache_schema,
    determinism,
    floatcmp,
    hotpath,
    layering,
    noprint,
    picklability,
)
from repro.devtools.semantic import (  # noqa: F401  (import-for-effect)
    clockdomains,
    effects,
    lifecycle,
    races,
    typedcore,
    units,
)

__all__ = [
    "determinism",
    "floatcmp",
    "cache_schema",
    "layering",
    "picklability",
    "atomic_write",
    "noprint",
    "hotpath",
    "lifecycle",
    "races",
    "typedcore",
    "units",
    "clockdomains",
    "effects",
]
