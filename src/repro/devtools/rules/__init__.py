"""Repo-specific lint rules.

Importing this package registers every rule with
:mod:`repro.devtools.registry`.  Add a rule by creating a module here
that defines a :class:`~repro.devtools.registry.LintRule` subclass
decorated with ``@register``, and importing it below.
"""

from repro.devtools.rules import (  # noqa: F401  (import-for-effect)
    atomic_write,
    cache_schema,
    determinism,
    floatcmp,
    hotpath,
    layering,
    noprint,
    picklability,
)

__all__ = [
    "determinism",
    "floatcmp",
    "cache_schema",
    "layering",
    "picklability",
    "atomic_write",
    "noprint",
    "hotpath",
]
