"""In-source suppression comments: ``# repro: noqa[R001]``.

A suppression applies to findings on its own line, and — when it sits
on the header line of a multi-line statement — to that statement's
continuation lines as well (:func:`expand_statement_suppressions`), so

.. code-block:: python

    value = compute(  # repro: noqa[R001]
        seed=time.time(),
    )

silences an R001 reported on the ``time.time()`` line.  For compound
statements (``if``/``for``/``def``/…) the extent covers only the
*header* (through the line before the first body statement): a noqa on
``if cond:`` never silences the block under it.

The bare form ``# repro: noqa`` silences every rule; the bracketed form
``# repro: noqa[R001]`` (or ``[R001,R004]``) silences only the listed
rules.  The distinct ``repro:`` prefix keeps these orthogonal to
flake8/ruff ``# noqa`` comments, so suppressing one tool never
accidentally silences the other.

The determinism rules (R014-R016, :data:`JUSTIFIED_RULES`) additionally
require a *recorded justification*::

    run_id = f"run-{time.strftime('%H%M%S')}"  # repro: noqa[R014] -- run ids name artifacts, never enter results

Without the ``-- reason`` tail the suppression is **inert** for those
rules (the finding shows through), so deliberate entropy is always
accompanied by its written rationale; the justifications are published
in ``effects_graph.json`` for review.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from repro.devtools.findings import Finding

__all__ = [
    "ALL_RULES",
    "JUSTIFIED_RULES",
    "line_suppressions",
    "line_justifications",
    "expand_statement_suppressions",
    "expand_statement_lines",
    "filter_suppressed",
]

#: Sentinel for "every rule suppressed on this line".
ALL_RULES = "*"

#: Rules whose suppressions require a ``-- justification`` tail to take
#: effect (the effect/determinism family: deliberate entropy must carry
#: its written rationale).
JUSTIFIED_RULES = frozenset({"R014", "R015", "R016"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
    r"(?:\s*--\s*(?P<why>\S.*?)\s*$)?",
)


def line_suppressions(lines: Iterable[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> suppressed rule ids (or ``{'*'}``)."""
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "#" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = frozenset((ALL_RULES,))
        else:
            ids = frozenset(r.strip().upper() for r in rules.split(",") if r.strip())
            out[lineno] = ids or frozenset((ALL_RULES,))
    return out


def line_justifications(lines: Iterable[str]) -> dict[int, str]:
    """Map 1-based line number -> the ``-- reason`` tail of its noqa.

    Only lines that carry a suppression *and* a non-empty justification
    appear; :func:`filter_suppressed` consults this map before honoring
    a suppression of a :data:`JUSTIFIED_RULES` member.
    """
    out: dict[int, str] = {}
    for lineno, text in enumerate(lines, start=1):
        if "#" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        why = match.group("why")
        if why:
            out[lineno] = why.strip()
    return out


def _statement_extent(stmt: ast.stmt) -> tuple[int, int]:
    """Lines covered by a suppression on ``stmt``'s header line.

    Simple statements cover their full (possibly wrapped) extent; for
    compound statements the extent stops before the first body line, so
    the header's own continuation lines (a wrapped ``if`` condition, a
    multi-line ``def`` signature) are covered but the suite is not.
    """
    start = stmt.lineno
    end = getattr(stmt, "end_lineno", None) or start
    body = getattr(stmt, "body", None)
    if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
        end = min(end, body[0].lineno - 1)
    return start, max(start, end)


def expand_statement_suppressions(
    suppressions: dict[int, frozenset[str]], tree: ast.Module
) -> dict[int, frozenset[str]]:
    """Extend header-line suppressions over their statements' extents.

    Returns a new map; lines that already carry their own suppression
    get the union of both (an inner comment can only widen, never
    narrow, what the header declared).
    """
    if not suppressions:
        return suppressions
    out = dict(suppressions)
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        ids = suppressions.get(node.lineno)
        if ids is None:
            continue
        start, end = _statement_extent(node)
        for lineno in range(start + 1, end + 1):
            existing = out.get(lineno)
            out[lineno] = ids if existing is None else existing | ids
    return out


def expand_statement_lines(
    values: dict[int, str], tree: ast.Module
) -> dict[int, str]:
    """Extend header-line justification texts over their statements'
    extents, mirroring :func:`expand_statement_suppressions` (a line
    with its own justification keeps it)."""
    if not values:
        return values
    out = dict(values)
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        text = values.get(node.lineno)
        if text is None:
            continue
        start, end = _statement_extent(node)
        for lineno in range(start + 1, end + 1):
            out.setdefault(lineno, text)
    return out


def filter_suppressed(
    findings: Iterable[Finding],
    suppressions: dict[int, frozenset[str]],
    justifications: dict[int, str] | None = None,
) -> list[Finding]:
    """Drop findings whose line carries a matching suppression.

    When ``justifications`` is provided, suppressions of
    :data:`JUSTIFIED_RULES` members are honored only on lines whose
    noqa carries a ``-- reason`` tail; an unjustified one is inert and
    the finding shows through.  (``None`` preserves the historical
    unconditional behavior for callers without line information.)
    """
    kept = []
    for f in findings:
        ids = suppressions.get(f.line)
        if ids is not None and (ALL_RULES in ids or f.rule in ids):
            if (
                justifications is not None
                and f.rule in JUSTIFIED_RULES
                and f.line not in justifications
            ):
                kept.append(f)
            continue
        kept.append(f)
    return kept
