"""In-source suppression comments: ``# repro: noqa[R001]``.

A suppression applies to findings on its own line.  The bare form
``# repro: noqa`` silences every rule on the line; the bracketed form
``# repro: noqa[R001]`` (or ``[R001,R004]``) silences only the listed
rules.  The distinct ``repro:`` prefix keeps these orthogonal to
flake8/ruff ``# noqa`` comments, so suppressing one tool never
accidentally silences the other.
"""

from __future__ import annotations

import re
from collections.abc import Iterable

from repro.devtools.findings import Finding

__all__ = ["ALL_RULES", "line_suppressions", "filter_suppressed"]

#: Sentinel for "every rule suppressed on this line".
ALL_RULES = "*"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?",
)


def line_suppressions(lines: Iterable[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> suppressed rule ids (or ``{'*'}``)."""
    out: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "#" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = frozenset((ALL_RULES,))
        else:
            ids = frozenset(r.strip().upper() for r in rules.split(",") if r.strip())
            out[lineno] = ids or frozenset((ALL_RULES,))
    return out


def filter_suppressed(
    findings: Iterable[Finding], suppressions: dict[int, frozenset[str]]
) -> list[Finding]:
    """Drop findings whose line carries a matching suppression."""
    kept = []
    for f in findings:
        ids = suppressions.get(f.line)
        if ids is not None and (ALL_RULES in ids or f.rule in ids):
            continue
        kept.append(f)
    return kept
