"""Tests for repro.exec: the parallel sweep executor and the
cache-coherence fixes that ride along with it.

Covers the pool runner itself (worker-count resolution, order
preservation, error propagation, progress), parallel-vs-serial
determinism of the profiling entry points, concurrent ResultStore
writers, cache round-trip equality including the window log, and the
post-warmup DRAM-utilization accounting.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import small_config
from repro.core.runner import (
    AloneProfile,
    RunLengths,
    SchemeResult,
    profile_alone,
    profile_surface,
)
from repro.exec import JobError, SimJob, resolve_jobs, run_jobs, run_sim_job
from repro.experiments.common import (
    ExperimentContext,
    ResultStore,
    _result_to_dict,
)
from repro.sim.engine import SimResult, Simulator
from repro.sim.stats import WindowSample
from repro.workloads.table4 import app_by_abbr


# --- module-level workers (must be picklable) ---------------------------------

def _square(x: int) -> int:
    return x * x


def _explode_on_three(x: int) -> int:
    if x == 3:
        raise RuntimeError("boom")
    return x


def _raise_interrupt(x: int) -> int:
    raise KeyboardInterrupt


def _save_repeatedly(spec: tuple[str, str, int]) -> None:
    """Hammer one store key from a worker process."""
    root, payload_id, n = spec
    store = ResultStore(root)
    for _ in range(n):
        store.save("race", "samekey", {"writer": payload_id, "blob": "x" * 2000})


# --- the pool runner ----------------------------------------------------------

class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()

    def test_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestRunJobs:
    def test_empty(self):
        assert run_jobs(_square, [], n_jobs=4) == []

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_order_preserved(self, n_jobs):
        assert run_jobs(_square, range(20), n_jobs=n_jobs) == [
            x * x for x in range(20)
        ]

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_error_names_spec(self, n_jobs):
        with pytest.raises(JobError, match="3") as err:
            run_jobs(_explode_on_three, range(6), n_jobs=n_jobs)
        assert err.value.spec == 3
        assert isinstance(err.value.__cause__, RuntimeError)

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_error_preserves_worker_traceback(self, n_jobs):
        """The worker-side frame survives in JobError.args.

        For pool jobs the original traceback objects cannot cross the
        process boundary, so the rendered text is the only way to see
        *where* in the worker the job died.
        """
        with pytest.raises(JobError) as err:
            run_jobs(_explode_on_three, range(6), n_jobs=n_jobs)
        remote = err.value.remote_traceback
        assert remote == err.value.args[1]
        assert "RuntimeError: boom" in remote
        # the failing worker function is named in the preserved frames
        assert "_explode_on_three" in remote

    def test_keyboard_interrupt_not_wrapped(self):
        """Ctrl-C propagates as itself, never as a JobError."""
        with pytest.raises(KeyboardInterrupt):
            run_jobs(_raise_interrupt, range(3), n_jobs=1)

    def test_progress_counts_to_total(self):
        seen = []
        run_jobs(_square, range(5), n_jobs=1,
                 progress=lambda done, total, spec: seen.append((done, total)))
        assert seen == [(i, 5) for i in range(1, 6)]

    def test_progress_parallel_reaches_total(self):
        seen = []
        run_jobs(_square, range(8), n_jobs=4,
                 progress=lambda done, total, spec: seen.append(done))
        assert sorted(seen) == list(range(1, 9))


class TestProgressElapsed:
    """The extended progress hook: 4-positional callbacks get per-job
    elapsed seconds; legacy 3-arg callbacks keep working unchanged."""

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_four_arg_callback_gets_elapsed(self, n_jobs):
        seen = []

        def progress(done, total, spec, elapsed):
            seen.append((done, total, spec, elapsed))

        run_jobs(_square, range(6), n_jobs=n_jobs, progress=progress)
        assert sorted(d for d, _, _, _ in seen) == list(range(1, 7))
        assert all(total == 6 for _, total, _, _ in seen)
        assert all(
            isinstance(elapsed, float) and elapsed >= 0.0
            for _, _, _, elapsed in seen
        )

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_star_args_callback_gets_elapsed(self, n_jobs):
        calls = []
        run_jobs(_square, range(3), n_jobs=n_jobs,
                 progress=lambda *a: calls.append(a))
        assert all(len(a) == 4 for a in calls)

    def test_legacy_three_arg_callback_unchanged(self):
        calls = []
        run_jobs(_square, range(3), n_jobs=1,
                 progress=lambda done, total, spec: calls.append((done, spec)))
        assert [d for d, _ in calls] == [1, 2, 3]

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_job_error_carries_duration(self, n_jobs):
        with pytest.raises(JobError) as err:
            run_jobs(_explode_on_three, range(6), n_jobs=n_jobs)
        assert err.value.duration is not None
        assert err.value.duration >= 0.0
        assert "after" in str(err.value)

    def test_job_error_without_duration_still_renders(self):
        err = JobError(spec=7, cause=RuntimeError("x"))
        assert err.duration is None
        assert "after" not in str(err)


class TestJobTraceEvents:
    """With a tracer installed, every job leaves a cat='job' span."""

    @pytest.mark.parametrize("n_jobs", [1, 3])
    def test_jobs_traced(self, n_jobs):
        from repro.obs import Tracer, tracing

        tracer = Tracer("t")
        with tracing(tracer):
            run_jobs(_square, range(5), n_jobs=n_jobs)
        jobs = [e for e in tracer.events if e.cat == "job"]
        assert len(jobs) == 5
        for e in jobs:
            assert e.ph == "X" and e.dur >= 0.0
            assert "worker" in e.args
            assert e.args["queue_wait_s"] >= 0.0
        if n_jobs == 1:
            assert {e.args["worker"] for e in jobs} == {"main"}

    def test_untraced_run_emits_nothing(self):
        from repro.obs import get_tracer

        assert not get_tracer().enabled
        run_jobs(_square, range(3), n_jobs=1)  # must not raise or record


# --- parallel-vs-serial determinism -------------------------------------------

LEVELS = (1, 4, 16)  # a sub-lattice keeps the determinism tests fast


class TestDeterminism:
    def test_surface_parallel_matches_serial(self):
        cfg = small_config()
        apps = [app_by_abbr("BLK"), app_by_abbr("TRD")]
        lengths = RunLengths.quick()
        serial = profile_surface(cfg, apps, lengths=lengths, seed=9,
                                 levels=LEVELS, n_jobs=1)
        parallel = profile_surface(cfg, apps, lengths=lengths, seed=9,
                                   levels=LEVELS, n_jobs=4)
        assert list(serial) == list(parallel)  # same lattice order
        # byte-identical through the cache serialization
        for combo in serial:
            assert json.dumps(_result_to_dict(serial[combo])) == json.dumps(
                _result_to_dict(parallel[combo])
            )

    def test_alone_parallel_matches_serial(self):
        cfg = small_config()
        app = app_by_abbr("BFS")
        lengths = RunLengths.quick()
        serial = profile_alone(cfg, app, 1, lengths=lengths, seed=9,
                               levels=LEVELS, n_jobs=1)
        parallel = profile_alone(cfg, app, 1, lengths=lengths, seed=9,
                                 levels=LEVELS, n_jobs=4)
        assert serial == parallel

    def test_sim_job_worker_equals_direct_run(self):
        cfg = small_config()
        app = app_by_abbr("BLK")
        job = SimJob(config=cfg, apps=(app,), combo=(8,), cycles=4_000,
                     warmup=1_000, seed=2, core_split=(2,))
        direct = Simulator(cfg, [app], core_split=(2,), seed=2).run(
            4_000, warmup=1_000, initial_tlp={0: 8}
        )
        assert run_sim_job(job) == direct


# --- concurrent store writers -------------------------------------------------

class TestConcurrentStore:
    def test_concurrent_saves_of_same_key(self, tmp_path):
        specs = [(str(tmp_path), f"writer{i}", 25) for i in range(4)]
        run_jobs(_save_repeatedly, specs, n_jobs=4)
        final = ResultStore(tmp_path).load("race", "samekey")
        assert final is not None
        assert final["writer"] in {f"writer{i}" for i in range(4)}
        assert final["blob"] == "x" * 2000  # never a torn write
        leftovers = list(tmp_path.glob("*.tmp")) + list(tmp_path.glob(".*.tmp"))
        assert leftovers == []

    def test_save_is_atomic_rename(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("kind", "k", {"v": 1})
        store.save("kind", "k", {"v": 2})
        assert store.load("kind", "k") == {"v": 2}
        assert len(list(tmp_path.iterdir())) == 1


# --- cache round-trips --------------------------------------------------------

@pytest.fixture
def ctx(tmp_path):
    return ExperimentContext(
        config=small_config(),
        lengths=RunLengths.quick(),
        seed=5,
        store=ResultStore(tmp_path),
        n_jobs=1,
    )


class TestCacheRoundTrip:
    def test_scheme_roundtrip_field_for_field(self, ctx, tmp_path):
        """A cached SchemeResult must equal the fresh one exactly —
        including the window log (which old caches silently dropped)."""
        apps = ctx.pair_apps("BLK", "TRD")
        fresh = ctx.scheme(apps, "dyncta")
        assert fresh.result.windows, "dynamic run should log windows"
        ctx2 = ExperimentContext(
            config=small_config(), lengths=RunLengths.quick(), seed=5,
            store=ResultStore(tmp_path), n_jobs=1,
        )
        cached = ctx2.scheme(apps, "dyncta")
        assert cached == fresh  # dataclass equality: every field, incl. windows
        assert cached.result.windows == fresh.result.windows

    def test_surface_roundtrip_preserves_simresult(self, ctx):
        apps = ctx.pair_apps("BLK", "TRD")
        fresh = ctx.surface(apps)
        cached = ctx.surface(apps)
        assert cached == fresh

    def test_schemes_batch_matches_individual(self, ctx, tmp_path):
        apps = ctx.pair_apps("BLK", "TRD")
        batch = ctx.schemes(apps, ["besttlp", "maxtlp"])
        ctx2 = ExperimentContext(
            config=small_config(), lengths=RunLengths.quick(), seed=5,
            store=ResultStore(tmp_path / "other"), n_jobs=1,
        )
        for scheme, result in batch.items():
            assert ctx2.scheme(apps, scheme) == result

    def test_schemes_batch_parallel(self, ctx):
        apps = ctx.pair_apps("BLK", "TRD")
        parallel_ctx = ExperimentContext(
            config=ctx.config, lengths=ctx.lengths, seed=ctx.seed,
            store=ctx.store, n_jobs=3,
        )
        batch = parallel_ctx.schemes(apps, ["besttlp", "maxtlp", "dyncta"])
        assert set(batch) == {"besttlp", "maxtlp", "dyncta"}
        # the pool workers wrote through the shared store: all cached now
        assert ctx.schemes(apps, ["besttlp", "maxtlp", "dyncta"]) == batch

    def test_alone_for_batch_matches_alone(self, ctx, tmp_path):
        apps = ctx.pair_apps("BLK", "TRD")
        batch = ctx.alone_for(apps)
        ctx2 = ExperimentContext(
            config=small_config(), lengths=RunLengths.quick(), seed=5,
            store=ResultStore(tmp_path / "other"), n_jobs=1,
        )
        n_cores = ctx2.config.n_cores // 2
        for app, profile in zip(apps, batch):
            assert ctx2.alone(app, n_cores) == profile


# --- the bugfix batch ---------------------------------------------------------

class TestZeroIPCAlone:
    def test_from_result_names_the_app(self):
        sample = WindowSample(
            app_id=0, cycles=100.0, insts=10, ipc=0.1, l1_miss_rate=1.0,
            l2_miss_rate=1.0, cmr=1.0, bw=0.1, eb=0.1, avg_mem_latency=1.0,
            row_hit_rate=0.0,
        )
        result = SimResult(samples={0: sample}, cycles=100.0, tlp_timeline=[])
        broken = AloneProfile(abbr="DEAD", best_tlp=1, ipc_alone=0.0,
                              eb_alone=0.0)
        with pytest.raises(ValueError, match="DEAD"):
            SchemeResult.from_result("besttlp", "wl", (1,), result, [broken])


class TestDramUtilization:
    def test_whole_run_when_no_warmup(self):
        cfg = small_config()
        sim = Simulator(cfg, [app_by_abbr("BLK")], seed=3)
        result = sim.run(2_000, warmup=0, initial_tlp={0: 24})
        busy = sum(ch.busy_cycles for ch in sim.channels)
        assert result.dram_utilization == pytest.approx(
            busy / (2_000 * cfg.n_channels)
        )
        assert 0.0 < result.dram_utilization <= 1.0

    def test_warmup_region_excluded(self):
        """Utilization must cover only the measured region: it equals
        (busy(full) - busy(prefix)) / measured-cycles, where the prefix
        run is a deterministic replay of the warmup region."""
        cfg = small_config()
        app = app_by_abbr("BLK")
        prefix = Simulator(cfg, [app], seed=3)
        prefix.run(2_000, warmup=0, initial_tlp={0: 24})
        busy_prefix = sum(ch.busy_cycles for ch in prefix.channels)

        full = Simulator(cfg, [app], seed=3)
        result = full.run(4_000, warmup=2_000, initial_tlp={0: 24})
        busy_full = sum(ch.busy_cycles for ch in full.channels)

        expected = (busy_full - busy_prefix) / (2_000 * cfg.n_channels)
        # tolerance: one data-bus burst per channel can straddle the
        # warmup boundary in the two runs' event orderings
        tol = cfg.dram.burst_cycles / 2_000
        assert result.dram_utilization == pytest.approx(expected, abs=tol)

    def test_warmup_traffic_not_averaged_in(self):
        """The old accounting folded the warmup region (cold caches, so
        all misses go to DRAM) into the ratio; the measured-region value
        must differ from the whole-run average for a cacheable workload."""
        cfg = small_config()
        sim = Simulator(cfg, [app_by_abbr("BLK")], seed=3)
        result = sim.run(4_000, warmup=2_000, initial_tlp={0: 24})
        whole_run = sum(ch.busy_cycles for ch in sim.channels) / (
            4_000 * cfg.n_channels
        )
        assert abs(result.dram_utilization - whole_run) > 0.01
