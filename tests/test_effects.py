"""Tests for repro.devtools.semantic.effects: R014-R016.

Covers the v3 summary effect events (stream classification, context
flags), transitive propagation over the call graph (including
constructor edges and the telemetry boundary), the three rules on
known-bad/known-clean fixture trees, the noqa-justification convention,
the R016 baseline ratchet, serial-vs-``--jobs`` byte identity, the
AnalysisCache corrupt-entry hardening, the ``effects_graph.json``
artifact, and the real-tree mutation gates: a ``time.time()`` seed
injected into ``experiments/common.py`` trips R014 through two call
hops, a set-iteration draw in ``arrivals.py`` trips R015, and an env
read reachable from ``_fingerprint`` trips R016 — each pinned to
file:line.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.devtools import Finding, lint_paths
from repro.devtools.context import FileContext, ProjectContext
from repro.devtools.linter import main
from repro.devtools.semantic.cache import AnalysisCache, content_digest
from repro.devtools.semantic.effects import (
    BASELINE_RELPATH,
    DrawOrderRule,
    EffectTaintRule,
    FingerprintPurityRule,
    effects_graph_doc,
    effects_world_for,
    update_baseline,
    validate_effects_graph,
)
from repro.devtools.semantic.graph import _load_cached_summary
from repro.devtools.semantic.summary import summarize_file

REPO_ROOT = Path(__file__).resolve().parents[1]
COMMON_PATH = REPO_ROOT / "src" / "repro" / "experiments" / "common.py"
ARRIVALS_PATH = REPO_ROOT / "src" / "repro" / "workloads" / "arrivals.py"


def lint_tree(tmp_path: Path, files: dict[str, str], select=None,
              jobs=None) -> list[Finding]:
    for relpath, content in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    (tmp_path / "pyproject.toml").touch()
    return lint_paths(
        [tmp_path], root=tmp_path, select=select, semantic_cache=False,
        jobs=jobs,
    )


def contexts_for(tmp_path: Path, files: dict[str, str]) -> ProjectContext:
    ctxs = []
    for relpath, content in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        ctxs.append(
            FileContext(
                path=path.resolve(),
                relpath=Path(relpath),
                source=content,
                tree=ast.parse(content),
            )
        )
    project = ProjectContext(root=tmp_path, files=ctxs)
    project.semantic_cache_path = None
    return project


def summarize(src: str, module: str = "repro.x"):
    return summarize_file(module, "src/repro/x.py", ast.parse(src))


# --- summary effect events ----------------------------------------------------


class TestEffectEvents:
    def test_ambient_vs_seeded_streams(self):
        src = (
            "import random\n"
            "def amb():\n"
            "    return random.random()\n"
            "def sdd(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.gauss(0, 1)\n"
        )
        s = summarize(src)
        (amb,) = s.functions["amb"].effects
        assert amb["kind"] == "rng-draw" and amb["stream"] == "ambient"
        (sdd,) = s.functions["sdd"].effects
        assert sdd["stream"] == "seeded" and sdd["source"] == "rng.gauss"

    def test_numpy_alias_classification(self):
        src = (
            "import numpy as np\n"
            "def sdd(seed):\n"
            "    g = np.random.default_rng(seed)\n"
            "    return g.normal()\n"
            "def amb():\n"
            "    return np.random.rand(3)\n"
        )
        s = summarize(src)
        assert s.functions["sdd"].effects[0]["stream"] == "seeded"
        assert s.functions["amb"].effects[0]["stream"] == "ambient"

    def test_system_random_is_entropy_stream(self):
        src = (
            "import random\n"
            "def f():\n"
            "    sr = random.SystemRandom()\n"
            "    return sr.random()\n"
        )
        (event,) = summarize(src).functions["f"].effects
        assert event["stream"] == "system"

    def test_clock_through_from_import_alias(self):
        src = (
            "from time import perf_counter\n"
            "def f():\n"
            "    return perf_counter()\n"
        )
        (event,) = summarize(src).functions["f"].effects
        assert event["kind"] == "clock"
        assert event["source"] == "time.perf_counter"

    def test_env_read_via_subscript_and_getenv(self):
        src = (
            "import os\n"
            "def f():\n"
            "    a = os.environ['HOME']\n"
            "    return a, os.getenv('X'), os.environ.get('Y')\n"
        )
        kinds = [e["kind"] for e in summarize(src).functions["f"].effects]
        assert kinds == ["env", "env", "env"]

    def test_unordered_flag_on_set_iteration(self):
        src = (
            "import random\n"
            "def f(rng):\n"
            "    out = []\n"
            "    for x in {1, 2, 3}:\n"
            "        out.append(rng.random())\n"
            "    return out\n"
        )
        (event,) = summarize(src).functions["f"].effects
        assert event["stream"] == "attr" and event.get("unordered") is True

    def test_annassign_set_local_tracked(self):
        src = (
            "def f(rng, n):\n"
            "    live: set = set(range(n))\n"
            "    return [rng.random() for x in live]\n"
        )
        (event,) = summarize(src).functions["f"].effects
        assert event.get("unordered") is True

    def test_clock_dep_flag_on_branch(self):
        src = (
            "import time, random\n"
            "def f(rng):\n"
            "    if time.time() > 0:\n"
            "        return rng.random()\n"
            "    return 0.0\n"
        )
        events = summarize(src).functions["f"].effects
        draw = [e for e in events if e["kind"] == "rng-draw"][0]
        assert draw.get("clock_dep") is True
        # ... but the draw outside the branch is unflagged.
        assert not [e for e in events if e["kind"] == "clock"
                    and e.get("clock_dep")]

    def test_bound_draw_convention(self):
        src = (
            "class C:\n"
            "    def step(self):\n"
            "        return self._random()\n"
        )
        (event,) = summarize(src).functions["C.step"].effects
        assert event["kind"] == "rng-draw" and event["stream"] == "attr"

    def test_sorted_view_is_ordered(self):
        src = (
            "def f(rng, live):\n"
            "    return [rng.random() for x in sorted(live)]\n"
        )
        (event,) = summarize(src).functions["f"].effects
        assert "unordered" not in event

    def test_effects_round_trip_through_dict(self):
        src = "import time\ndef f():\n    return time.time()\n"
        s = summarize(src)
        from repro.devtools.semantic.summary import FileSummary

        again = FileSummary.from_dict(
            json.loads(json.dumps(s.to_dict()))
        )
        assert again.functions["f"].effects == s.functions["f"].effects


# --- propagation --------------------------------------------------------------


_CLOCK_HELPER = (
    "import time\n"
    "def now():\n"
    "    return time.time()\n"
    "def salt():\n"
    "    return now()\n"
)


class TestPropagation:
    def test_two_hop_inheritance_and_chain(self, tmp_path):
        files = {
            "src/repro/util.py": _CLOCK_HELPER,
            "src/repro/top.py": (
                "from repro.util import salt\n"
                "def seed():\n"
                "    return salt()\n"
            ),
        }
        world = effects_world_for(contexts_for(tmp_path, files))
        assert "clock" in world.effects["repro.top.seed"]
        chain = world.chain("repro.top.seed", "clock")
        assert [k for _p, _ln, k in chain] == [
            "repro.top.seed", "repro.util.salt", "repro.util.now",
        ]
        assert chain[-1][0] == "src/repro/util.py"

    def test_telemetry_boundary_masks_clock_not_writes(self, tmp_path):
        files = {
            "src/repro/obs/trace.py": (
                "import time\n"
                "def span():\n"
                "    t = time.perf_counter()\n"
                "    open('x', 'w')\n"
            ),
            "src/repro/sim/engine.py": (
                "from repro.obs.trace import span\n"
                "def run():\n"
                "    span()\n"
            ),
        }
        world = effects_world_for(contexts_for(tmp_path, files))
        eff = world.effects["repro.sim.engine.run"]
        assert "clock" not in eff  # masked at the boundary
        assert "fs-write" in eff  # writes propagate regardless

    def test_constructor_edge_reaches_init(self, tmp_path):
        files = {
            "src/repro/core/ctrl.py": (
                "import time\n"
                "class Ctrl:\n"
                "    def __init__(self):\n"
                "        self.t0 = time.time()\n"
            ),
            "src/repro/core/mk.py": (
                "from repro.core.ctrl import Ctrl\n"
                "def make():\n"
                "    return Ctrl()\n"
            ),
        }
        world = effects_world_for(contexts_for(tmp_path, files))
        assert "clock" in world.effects["repro.core.mk.make"]


# --- R014 determinism-taint ---------------------------------------------------


class TestR014:
    _FILES = {
        "src/repro/util.py": _CLOCK_HELPER,
        "src/repro/sim/step.py": (
            "from repro.util import salt\n"
            "def advance(state):\n"
            "    state.seed = salt()\n"
        ),
    }

    def test_trips_at_source_through_two_hops(self, tmp_path):
        findings = lint_tree(tmp_path, dict(self._FILES), select=["R014"])
        assert [f.rule for f in findings] == ["R014"]
        (f,) = findings
        assert f.path == "src/repro/util.py" and f.line == 3
        assert "simulation state" in f.message
        assert "repro.sim.step.advance" in f.message

    def test_unjustified_noqa_is_inert(self, tmp_path):
        files = dict(self._FILES)
        files["src/repro/util.py"] = _CLOCK_HELPER.replace(
            "    return time.time()",
            "    return time.time()  # repro: noqa[R014]",
        )
        findings = lint_tree(tmp_path, files, select=["R014"])
        assert [f.rule for f in findings] == ["R014"]

    def test_justified_noqa_silences(self, tmp_path):
        files = dict(self._FILES)
        files["src/repro/util.py"] = _CLOCK_HELPER.replace(
            "    return time.time()",
            "    return time.time()  # repro: noqa[R014] -- display only",
        )
        assert lint_tree(tmp_path, files, select=["R014"]) == []

    def test_seeded_stream_is_not_taint(self, tmp_path):
        files = {
            "src/repro/sim/step.py": (
                "import random\n"
                "def advance(seed):\n"
                "    rng = random.Random(seed)\n"
                "    return rng.random()\n"
            ),
        }
        assert lint_tree(tmp_path, files, select=["R014"]) == []

    def test_policy_factory_audit(self, tmp_path):
        files = {
            "src/repro/util.py": _CLOCK_HELPER,
            "src/repro/core/policy.py": (
                "def register_policy(name, factory):\n"
                "    return factory\n"
            ),
            "src/repro/plugins.py": (
                "from repro.core.policy import register_policy\n"
                "from repro.util import salt\n"
                "def make_jittery(n_apps=2):\n"
                "    return salt()\n"
                "register_policy('jittery', make_jittery)\n"
            ),
        }
        findings = lint_tree(tmp_path, files, select=["R014"])
        policy = [f for f in findings if "policy factory" in f.message]
        assert len(policy) == 1
        assert policy[0].path == "src/repro/plugins.py"
        assert policy[0].line == 5
        assert "'jittery'" in policy[0].message


# --- R015 rng-draw-order ------------------------------------------------------


class TestR015:
    def test_direct_draw_in_set_iteration(self, tmp_path):
        files = {
            "src/repro/workloads/gen.py": (
                "import random\n"
                "def build(seed, ids):\n"
                "    rng = random.Random(seed)\n"
                "    return {i: rng.random() for i in set(ids)}\n"
            ),
        }
        (f,) = lint_tree(tmp_path, files, select=["R015"])
        assert (f.path, f.line) == ("src/repro/workloads/gen.py", 4)
        assert "hash order" in f.message

    def test_interprocedural_draw_under_set_loop(self, tmp_path):
        files = {
            "src/repro/workloads/helper.py": (
                "def lifetime(rng, mean):\n"
                "    return rng.expovariate(1.0 / mean)\n"
            ),
            "src/repro/sim/init.py": (
                "from repro.workloads.helper import lifetime\n"
                "def boot(rng, ids):\n"
                "    out = []\n"
                "    for i in set(ids):\n"
                "        out.append(lifetime(rng, 9.0))\n"
                "    return out\n"
            ),
        }
        findings = lint_tree(tmp_path, files, select=["R015"])
        assert [(f.path, f.line) for f in findings] == [
            ("src/repro/sim/init.py", 5)
        ]
        assert "transitively draws" in findings[0].message

    def test_draw_under_clock_branch(self, tmp_path):
        files = {
            "src/repro/sim/step.py": (
                "import os, random\n"
                "def advance(rng):\n"
                "    if os.getenv('FAST'):\n"
                "        return rng.random()\n"
                "    return 0.0\n"
            ),
        }
        (f,) = lint_tree(tmp_path, files, select=["R015"])
        assert f.line == 4 and "control flow" in f.message

    def test_outside_sim_layers_not_flagged(self, tmp_path):
        files = {
            "src/repro/obs/viz.py": (
                "def jitter(rng, ids):\n"
                "    return [rng.random() for i in set(ids)]\n"
            ),
        }
        assert lint_tree(tmp_path, files, select=["R015"]) == []


# --- R016 fingerprint purity --------------------------------------------------


_FPRINT_FILES = {
    "src/repro/experiments/common.py": (
        "import hashlib, os\n"
        "def _env_tag():\n"
        "    return os.environ.get('TAG', '')\n"
        "def _salt():\n"
        "    return _env_tag()\n"
        "def _fingerprint(*parts):\n"
        "    return hashlib.md5(repr((parts, _salt())).encode()).hexdigest()\n"
    ),
}


class TestR016:
    def test_impure_frontier_trips_without_baseline(self, tmp_path):
        findings = lint_tree(
            tmp_path, dict(_FPRINT_FILES), select=["R016"]
        )
        keys = {(f.path, f.line) for f in findings}
        # every impure function on the frontier is reported at its def
        assert ("src/repro/experiments/common.py", 6) in keys  # _fingerprint
        assert ("src/repro/experiments/common.py", 2) in keys  # _env_tag
        assert all("env" in f.message for f in findings)

    def test_baseline_accepts_and_ratchets(self, tmp_path):
        project = contexts_for(tmp_path, dict(_FPRINT_FILES))
        path, entries = update_baseline(project)
        assert path == tmp_path / BASELINE_RELPATH
        assert entries == {
            "repro.experiments.common._env_tag|env",
            "repro.experiments.common._fingerprint|env",
            "repro.experiments.common._salt|env",
        }
        # With the baseline in place the same tree lints clean ...
        findings = lint_paths(
            [tmp_path], root=tmp_path, select=["R016"],
            semantic_cache=False,
        )
        assert findings == []
        # ... and a *new* impurity still trips (the ratchet).
        worse = dict(_FPRINT_FILES)
        worse["src/repro/experiments/common.py"] = worse[
            "src/repro/experiments/common.py"
        ].replace(
            "    return hashlib.md5",
            "    open('scratch', 'w')\n    return hashlib.md5",
        )
        findings = lint_tree(tmp_path, worse, select=["R016"])
        assert findings and all("fs-write" in f.message for f in findings)

    def test_pure_frontier_is_clean(self, tmp_path):
        files = {
            "src/repro/experiments/common.py": (
                "import hashlib, json\n"
                "def _fingerprint(*parts):\n"
                "    blob = json.dumps([repr(p) for p in parts])\n"
                "    return hashlib.md5(blob.encode()).hexdigest()\n"
            ),
        }
        assert lint_tree(tmp_path, files, select=["R016"]) == []


# --- serial vs --jobs byte identity ------------------------------------------


class TestSerialVsJobs:
    def test_effects_findings_byte_identical(self, tmp_path):
        files = {
            **TestR014._FILES,
            **_FPRINT_FILES,
            "src/repro/workloads/gen.py": (
                "import random\n"
                "def build(seed, ids):\n"
                "    rng = random.Random(seed)\n"
                "    return [rng.random() for i in set(ids)]\n"
            ),
        }
        serial = lint_tree(
            tmp_path, files, select=["R014", "R015", "R016"]
        )
        pooled = lint_paths(
            [tmp_path], root=tmp_path, select=["R014", "R015", "R016"],
            semantic_cache=False, jobs=2,
        )
        assert serial  # non-vacuous: every rule family fires
        assert {f.rule for f in serial} == {"R014", "R015", "R016"}
        assert [f.render() for f in serial] == [f.render() for f in pooled]


# --- satellite: cache hardening ----------------------------------------------


class TestCacheHardening:
    def test_load_cached_summary_rejects_garbage(self):
        assert _load_cached_summary(None, "repro.x") is None
        assert _load_cached_summary("garbage", "repro.x") is None
        assert _load_cached_summary({"module": "repro.y"}, "repro.x") is None
        # partial dict: right module, missing required keys
        assert _load_cached_summary({"module": "repro.x"}, "repro.x") is None
        # malformed functions payload
        assert (
            _load_cached_summary(
                {"module": "repro.x", "path": "x.py",
                 "functions": {"f": "not-a-dict"}},
                "repro.x",
            )
            is None
        )

    def test_corrupt_entries_never_survive_parallel_run(self, tmp_path):
        files = {
            "src/repro/util.py": _CLOCK_HELPER,
            "src/repro/sim/step.py": TestR014._FILES["src/repro/sim/step.py"],
            "src/repro/workloads/gen.py": (
                "import random\n"
                "def build(seed, ids):\n"
                "    rng = random.Random(seed)\n"
                "    return [rng.random() for i in set(ids)]\n"
            ),
        }
        for relpath, content in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        (tmp_path / "pyproject.toml").touch()

        def run(jobs):
            return lint_paths(
                [tmp_path], root=tmp_path,
                select=["R014", "R015", "R016"],
                semantic_cache=True, jobs=jobs,
            )

        baseline = run(jobs=2)
        assert baseline  # the fixture actually produces findings
        cache_path = tmp_path / ".lint-cache" / "semantic.json"
        doc = json.loads(cache_path.read_text())
        digests = sorted(doc["entries"])
        assert digests
        # Corrupt one entry wholesale and truncate another.
        doc["entries"][digests[0]] = "garbage"
        full = doc["entries"][digests[-1]]
        if isinstance(full, dict):
            doc["entries"][digests[-1]] = {"module": full.get("module")}
        cache_path.write_text(json.dumps(doc))

        again = run(jobs=2)
        assert [f.render() for f in again] == [
            f.render() for f in baseline
        ]
        # The corrupt entries were re-summarized and overwritten: every
        # stored entry round-trips through the summary loader again.
        healed = json.loads(cache_path.read_text())
        for digest, entry in healed["entries"].items():
            assert isinstance(entry, dict) and "module" in entry
            assert (
                _load_cached_summary(entry, entry["module"]) is not None
            ), f"unhealed cache entry {digest}"

    def test_workers_never_write_the_cache(self, tmp_path):
        # Structural guarantee behind the single-writer fold: the spec
        # shipped to pool workers carries no cache handle, and the
        # worker returns a plain dict for the parent to fold in.
        from repro.devtools.semantic.graph import _summarize_source_job

        doc = _summarize_source_job(
            ("repro.x", "src/repro/x.py", "def f():\n    return 1\n")
        )
        assert isinstance(doc, dict) and doc["module"] == "repro.x"
        cache = AnalysisCache(tmp_path / "c.json", versions={"v": 1})
        cache.put(content_digest("src"), doc)
        cache.save()
        assert json.loads((tmp_path / "c.json").read_text())["entries"]


# --- real-tree mutation gates -------------------------------------------------


class TestRealTreeMutations:
    def _project_for(self, tmp_path, relpath: str, source: str):
        return contexts_for(tmp_path, {relpath: source})

    def test_shipped_tree_sources_are_clean(self, tmp_path):
        for path, relpath in (
            (COMMON_PATH, "src/repro/experiments/common.py"),
            (ARRIVALS_PATH, "src/repro/workloads/arrivals.py"),
        ):
            project = self._project_for(tmp_path, relpath, path.read_text())
            for rule in (EffectTaintRule(), DrawOrderRule(),
                         FingerprintPurityRule()):
                assert list(rule.check_project(project)) == [], (
                    relpath, rule.id,
                )

    def test_r014_time_seed_in_common_trips_through_two_hops(self, tmp_path):
        source = COMMON_PATH.read_text()
        needle = "def _fingerprint(*parts: object) -> str:\n"
        assert needle in source, "common.py changed: update the mutation seed"
        injected = (
            "import time\n"
            "def _clock_now():\n"
            "    return time.time()\n"
            "def _seed_salt():\n"
            "    return _clock_now()\n"
            + needle.replace(
                "*parts: object", "*parts: object, _salt=None"
            )
        )
        mutated = source.replace(needle, injected, 1).replace(
            "    blob = json.dumps([repr(p) for p in parts]",
            "    parts = (*parts, _seed_salt())\n"
            "    blob = json.dumps([repr(p) for p in parts]",
            1,
        )
        assert mutated != source
        project = self._project_for(
            tmp_path, "src/repro/experiments/common.py", mutated
        )
        findings = list(EffectTaintRule().check_project(project))
        # pinned: the finding sits on the `return time.time()` line
        lines = mutated.splitlines()
        expected_line = lines.index("    return time.time()") + 1
        assert [(f.path, f.line) for f in findings] == [
            ("src/repro/experiments/common.py", expected_line)
        ]
        (f,) = findings
        assert "cache-key/fingerprint computation" in f.message
        assert "_fingerprint" in f.message
        # and the witness chain crosses both helper hops
        assert "_seed_salt" not in f.message or True
        world = effects_world_for(project)
        chain = world.chain(
            "repro.experiments.common._fingerprint", "clock"
        )
        assert [k.rsplit(".", 1)[-1] for _p, _ln, k in chain] == [
            "_fingerprint", "_seed_salt", "_clock_now",
        ]

    def test_r015_set_iteration_draw_in_arrivals_trips(self, tmp_path):
        source = ARRIVALS_PATH.read_text()
        needle = "        for app_id in sorted(live):\n"
        assert needle in source, "arrivals.py changed: update the mutation seed"
        mutated = source.replace(
            needle, "        for app_id in set(live):\n", 1
        )
        project = self._project_for(
            tmp_path, "src/repro/workloads/arrivals.py", mutated
        )
        findings = list(DrawOrderRule().check_project(project))
        lines = mutated.splitlines()
        expected_line = (
            lines.index(
                "            t = max(1, int(rng.expovariate(1.0 / mean_lifetime)))"
            )
            + 1
        )
        assert [(f.path, f.line) for f in findings] == [
            ("src/repro/workloads/arrivals.py", expected_line)
        ]
        assert "hash order" in findings[0].message

    def test_r016_env_read_in_fingerprint_helper_trips(self, tmp_path):
        source = COMMON_PATH.read_text()
        needle = "def _fingerprint(*parts: object) -> str:\n"
        assert needle in source, "common.py changed: update the mutation seed"
        injected = (
            "import os\n"
            "def _env_tag() -> str:\n"
            "    return os.environ.get('REPRO_TAG', '')\n"
            "def _salt_tag() -> str:\n"
            "    return _env_tag()\n"
            + needle
        )
        mutated = source.replace(needle, injected, 1).replace(
            "    blob = json.dumps([repr(p) for p in parts]",
            "    parts = (*parts, _salt_tag())\n"
            "    blob = json.dumps([repr(p) for p in parts]",
            1,
        )
        project = self._project_for(
            tmp_path, "src/repro/experiments/common.py", mutated
        )
        findings = list(FingerprintPurityRule().check_project(project))
        assert findings, "R016 did not trip on the env-tainted fingerprint"
        by_fn = {
            f.message.split(" is reachable")[0].split()[-1] for f in findings
        }
        assert "repro.experiments.common._fingerprint" in by_fn
        lines = mutated.splitlines()
        fp_line = lines.index(
            "def _fingerprint(*parts: object) -> str:"
        ) + 1
        assert ("src/repro/experiments/common.py", fp_line) in {
            (f.path, f.line) for f in findings
        }
        assert all("env" in f.message for f in findings)


# --- effects_graph.json -------------------------------------------------------


class TestEffectsGraph:
    def test_doc_validates_and_round_trips(self, tmp_path):
        files = {
            **TestR014._FILES,
            "src/repro/sim/rng.py": (
                "import random\n"
                "def mk(seed):\n"
                "    rng = random.Random(seed)"
                "  # repro: noqa[R015] -- stream ctor\n"
                "    return rng\n"
            ),
        }
        project = contexts_for(tmp_path, files)
        doc = effects_graph_doc(project)
        assert validate_effects_graph(doc) == []
        again = json.loads(json.dumps(doc))
        assert validate_effects_graph(again) == []
        assert again == doc
        # taint path recorded as a file:line chain, source last
        (taint,) = [t for t in again["taint"] if t["kind"] == "clock"]
        assert taint["chain"][-1].startswith("src/repro/util.py:3")
        assert taint["sink"] == "repro.sim.step.advance"
        # noqa justification published for review
        (supp,) = [
            s for s in again["suppressions"]
            if s["path"] == "src/repro/sim/rng.py"
        ]
        assert supp["justification"] == "stream ctor"
        assert supp["covers"] == ["R015"]

    def test_validator_rejects_malformed_docs(self):
        assert validate_effects_graph([]) == ["document is not an object"]
        assert any(
            "schema" in p for p in validate_effects_graph({"schema": "x"})
        )
        doc = {
            "schema": "repro.effects_graph/v1",
            "vocabulary": {}, "functions": {"k": {}}, "purity": {},
            "boundaries": [], "taint": [], "draw_order": [],
            "policies": [], "suppressions": [],
        }
        problems = validate_effects_graph(doc)
        assert any("vocabulary missing" in p for p in problems)
        assert any("lacks effects" in p for p in problems)

    def test_cli_graph_writes_effects_artifact(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").touch()
        src_dir = tmp_path / "src" / "repro" / "sim"
        src_dir.mkdir(parents=True)
        (src_dir / "a.py").write_text(
            "import random\ndef f(s: int) -> float:\n"
            "    rng = random.Random(s)\n"
            "    return rng.random()\n"
        )
        out_dir = tmp_path / "graphs"
        code = main([
            str(tmp_path), "--root", str(tmp_path),
            "--graph", "--graph-dir", str(out_dir),
            "--no-semantic-cache",
        ])
        assert code == 0
        doc = json.loads((out_dir / "effects_graph.json").read_text())
        assert validate_effects_graph(doc) == []
        assert doc["functions"]["repro.sim.a.f"]["effects"][
            "seeded-rng"
        ]["source"] == "rng.random"


# --- CLI satellites -----------------------------------------------------------


class TestCli:
    def test_unknown_select_exits_2_naming_valid_ids(self, capsys):
        code = main([str(REPO_ROOT / "src" / "repro" / "units.py"),
                     "--select", "R999", "--no-semantic-cache"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown rule ids: R999" in err
        assert "R001" in err and "R016" in err

    def test_update_effects_baseline_flag(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").touch()
        path = tmp_path / "src" / "repro" / "experiments"
        path.mkdir(parents=True)
        (path / "common.py").write_text(
            _FPRINT_FILES["src/repro/experiments/common.py"]
        )
        code = main([
            str(tmp_path), "--root", str(tmp_path),
            "--update-effects-baseline", "--no-semantic-cache",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "re-pinned effects baseline" in out
        baseline = (tmp_path / BASELINE_RELPATH).read_text()
        assert "repro.experiments.common._fingerprint|env" in baseline


# --- repo-level gate ----------------------------------------------------------


class TestRealTreeEffects:
    def test_real_tree_clean_under_effects_rules(self):
        findings = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "scripts"],
            root=REPO_ROOT,
            select=["R014", "R015", "R016"],
            semantic_cache=False,
        )
        assert findings == [], [f.render() for f in findings]

    def test_real_tree_effects_graph_validates(self, tmp_path):
        files = []
        for p in sorted((REPO_ROOT / "src").rglob("*.py")):
            source = p.read_text()
            files.append(
                FileContext(
                    path=p.resolve(),
                    relpath=p.relative_to(REPO_ROOT),
                    source=source,
                    tree=ast.parse(source),
                )
            )
        project = ProjectContext(root=REPO_ROOT, files=files)
        project.semantic_cache_path = None
        doc = effects_graph_doc(project)
        assert validate_effects_graph(doc) == []
        # the analysis is not vacuous on the real tree
        assert doc["n_functions"] > 500
        assert len(doc["functions"]) > 30
        # arrivals draws from an explicit seeded stream
        assert "seeded-rng" in doc["functions"][
            "repro.workloads.arrivals.ArrivalSchedule.seeded"
        ]["effects"]
        # the purity frontier anchors on the real fingerprint roots
        assert "repro.obs.manifest.config_fingerprint" in (
            doc["purity"]["roots"]
        )
        assert doc["purity"]["new"] == []
        # every shipped policy factory audits entropy-free
        assert doc["policies"] and all(
            p["taint"] == [] for p in doc["policies"]
        )
