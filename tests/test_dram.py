"""Tests for repro.sim.dram: FR-FCFS scheduling and GDDR5 timing."""

import pytest

from repro.config import small_config
from repro.sim.address import AddressMap
from repro.sim.dram import DRAMChannel, DRAMRequest
from repro.sim.engine import EventQueue


class Harness:
    """A channel wired to a real event queue, recording completions."""

    def __init__(self, config=None):
        self.config = config or small_config()
        self.amap = AddressMap.from_config(self.config)
        self.events = EventQueue()
        self.channel = DRAMChannel(0, self.config, self.amap, self.events)
        self.done: list[tuple[int, float, bool]] = []

    def request(self, bank: int, row: int, tag: int = 0) -> DRAMRequest:
        return DRAMRequest(
            line_addr=tag,
            app_id=0,
            bank=bank,
            row=row,
            enqueue_time=self.events.now,
            callback=lambda req, t: self.done.append((req.line_addr, t, req.row_hit)),
        )

    def run(self, until: float = 100_000) -> None:
        self.events.run_until(until)


class TestTiming:
    def test_single_request_row_miss_latency(self):
        h = Harness()
        t = h.config.dram
        h.channel.enqueue(h.request(bank=0, row=5), now=0.0)
        h.run()
        assert len(h.done) == 1
        _, when, row_hit = h.done[0]
        assert row_hit is False
        # idle bank: activate (no precharge) + CAS + burst
        assert when == pytest.approx(t.t_rcd + t.t_cl + t.burst_cycles)

    def test_second_access_same_row_is_hit_and_fast(self):
        h = Harness()
        t = h.config.dram
        h.channel.enqueue(h.request(bank=0, row=5, tag=1), now=0.0)
        h.run()
        first_done = h.done[0][1]
        h.events.now = first_done
        h.channel.enqueue(h.request(bank=0, row=5, tag=2), now=first_done)
        h.run()
        assert h.done[1][2] is True, "same open row must be a row hit"
        hit_latency = h.done[1][1] - first_done
        miss_latency = h.done[0][1]
        assert hit_latency < miss_latency

    def test_row_conflict_pays_precharge(self):
        h = Harness()
        t = h.config.dram
        h.channel.enqueue(h.request(bank=0, row=5, tag=1), now=0.0)
        h.run()
        first_done = h.done[0][1]
        h.events.now = first_done
        h.channel.enqueue(h.request(bank=0, row=9, tag=2), now=first_done)
        h.run()
        assert h.done[1][2] is False
        conflict_latency = h.done[1][1] - first_done
        # must include precharge on top of activate + CAS + burst
        assert conflict_latency >= t.t_rp + t.t_rcd + t.t_cl + t.burst_cycles

    def test_row_hits_stream_at_burst_rate(self):
        h = Harness()
        t = h.config.dram
        for i in range(8):
            h.channel.enqueue(h.request(bank=0, row=5, tag=i), now=0.0)
        h.run()
        times = sorted(when for _, when, _ in h.done)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # After the first activation, hits are bus/burst limited (the
        # FR-FCFS cap inserts an occasional re-decision, allow slack).
        assert sum(gaps) / len(gaps) <= 2 * t.burst_cycles


class TestFRFCFS:
    def test_row_hit_prioritized_over_older_miss(self):
        h = Harness()
        # Open row 5 on bank 0.
        h.channel.enqueue(h.request(bank=0, row=5, tag=0), now=0.0)
        h.run()
        start = h.done[0][1]
        h.events.now = start
        # Enqueue an older conflicting request, then a row hit.
        h.channel.enqueue(h.request(bank=0, row=9, tag=1), now=start)
        h.channel.enqueue(h.request(bank=0, row=5, tag=2), now=start)
        h.run()
        order = [tag for tag, _, _ in h.done[1:]]
        assert order == [2, 1], "the row hit is served first"

    def test_hit_streak_cap_prevents_starvation(self):
        h = Harness()
        cap = h.config.frfcfs_cap
        h.channel.enqueue(h.request(bank=0, row=5, tag=0), now=0.0)
        h.run()
        start = h.done[0][1]
        h.events.now = start
        # One starving conflict plus a long stream of row hits.
        h.channel.enqueue(h.request(bank=0, row=9, tag=99), now=start)
        for i in range(3 * cap):
            h.channel.enqueue(h.request(bank=0, row=5, tag=i + 1), now=start)
        h.run()
        order = [tag for tag, _, _ in h.done[1:]]
        position = order.index(99)
        assert position <= cap, (
            f"conflict served after {position} hits; cap is {cap}"
        )

    def test_bank_parallelism_beats_serial_misses(self):
        """Misses to different banks overlap their activations."""
        h = Harness()
        t = h.config.dram
        n = h.config.banks_per_channel
        for b in range(n):
            h.channel.enqueue(h.request(bank=b, row=1, tag=b), now=0.0)
        h.run()
        makespan = max(when for _, when, _ in h.done)
        serial = n * (t.t_rcd + t.t_cl + t.burst_cycles)
        assert makespan < 0.6 * serial, "activations must overlap across banks"


class TestStatsAndUtilization:
    def test_counters_consistent(self):
        h = Harness()
        for i in range(10):
            h.channel.enqueue(h.request(bank=i % 2, row=i % 3, tag=i), now=0.0)
        h.run()
        ch = h.channel
        assert ch.lines_transferred == 10
        assert ch.row_hits + ch.row_misses == 10
        assert len(h.done) == 10

    def test_utilization_bounded(self):
        h = Harness()
        for i in range(20):
            h.channel.enqueue(h.request(bank=i % 4, row=0, tag=i), now=0.0)
        h.run()
        end = max(when for _, when, _ in h.done)
        assert 0.0 < h.channel.utilization(end) <= 1.0

    def test_queue_drains(self):
        h = Harness()
        for i in range(5):
            h.channel.enqueue(h.request(bank=0, row=0, tag=i), now=0.0)
        h.run()
        assert h.channel.queue_depth == 0


class TestScanWindow:
    def test_row_hit_beyond_window_is_not_seen(self):
        """The scheduler only reorders within its visibility window."""
        h = Harness()
        original = type(h.channel).SCAN_WINDOW
        type(h.channel).SCAN_WINDOW = 2
        try:
            # Open row 5 on bank 0.
            h.channel.enqueue(h.request(bank=0, row=5, tag=0), now=0.0)
            h.run()
            start = h.done[0][1]
            h.events.now = start
            # Two conflicting requests ahead of a row hit: the hit sits
            # outside the 2-entry window and cannot jump the queue.
            h.channel.enqueue(h.request(bank=0, row=7, tag=1), now=start)
            h.channel.enqueue(h.request(bank=0, row=8, tag=2), now=start)
            h.channel.enqueue(h.request(bank=0, row=5, tag=3), now=start)
            h.run()
            order = [tag for tag, _, _ in h.done[1:]]
            assert order[0] == 1, "oldest request served when no visible hit"
        finally:
            type(h.channel).SCAN_WINDOW = original

    def test_decisions_overlap_other_banks(self):
        """A request to an idle bank overlaps a busy bank's stream."""
        h = Harness()
        t = h.config.dram
        # Occupy bank 0 with a stream, plus one request to idle bank 1.
        for i in range(4):
            h.channel.enqueue(h.request(bank=0, row=5, tag=i), now=0.0)
        h.channel.enqueue(h.request(bank=1, row=9, tag=99), now=0.0)
        h.run()
        done_99 = next(when for tag, when, _ in h.done if tag == 99)
        serial = 5 * (t.row_miss_service + t.burst_cycles)
        assert done_99 < serial, "bank-1 must not wait for bank 0 serially"
