"""Tests for repro.sim.cache: LRU sets, stats, bypass, quotas, MSHRs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import CacheStats, MSHRTable, SetAssocCache

LINE = 128


def make_cache(n_sets=4, assoc=2) -> SetAssocCache:
    return SetAssocCache(n_sets=n_sets, assoc=assoc, line_bytes=LINE)


def addr(set_idx: int, tag: int, n_sets: int = 4) -> int:
    """Build a line address landing in ``set_idx`` with a distinct tag."""
    return (tag * n_sets + set_idx) * LINE


class TestBasicCaching:
    def test_cold_miss_then_hit_after_fill(self):
        cache = make_cache()
        a = addr(0, 0)
        assert cache.access(a, app_id=0) is False
        cache.fill(a, app_id=0)
        assert cache.access(a, app_id=0) is True

    def test_miss_does_not_install(self):
        cache = make_cache()
        a = addr(0, 0)
        cache.access(a, app_id=0)
        assert cache.access(a, app_id=0) is False, "no fill yet, still a miss"

    def test_lru_eviction_order(self):
        cache = make_cache(n_sets=1, assoc=2)
        a, b, c = addr(0, 0, 1), addr(0, 1, 1), addr(0, 2, 1)
        cache.fill(a, 0)
        cache.fill(b, 0)
        victim = cache.fill(c, 0)
        assert victim == a, "the least recently used line is evicted"

    def test_hit_refreshes_lru(self):
        cache = make_cache(n_sets=1, assoc=2)
        a, b, c = addr(0, 0, 1), addr(0, 1, 1), addr(0, 2, 1)
        cache.fill(a, 0)
        cache.fill(b, 0)
        cache.access(a, 0)  # a becomes MRU
        victim = cache.fill(c, 0)
        assert victim == b

    def test_duplicate_fill_is_idempotent(self):
        cache = make_cache()
        a = addr(1, 0)
        cache.fill(a, 0)
        assert cache.fill(a, 0) is None
        assert cache.resident_lines == 1

    def test_sets_are_independent(self):
        cache = make_cache(n_sets=4, assoc=1)
        for s in range(4):
            cache.fill(addr(s, 0), 0)
        assert cache.resident_lines == 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssocCache(n_sets=0, assoc=2, line_bytes=LINE)


class TestStats:
    def test_per_app_miss_rates(self):
        cache = make_cache()
        a0, a1 = addr(0, 0), addr(1, 0)
        cache.access(a0, app_id=0)  # miss
        cache.fill(a0, 0)
        cache.access(a0, app_id=0)  # hit
        cache.access(a1, app_id=1)  # miss
        assert cache.stats.miss_rate(0) == pytest.approx(0.5)
        assert cache.stats.miss_rate(1) == pytest.approx(1.0)
        assert cache.stats.miss_rate() == pytest.approx(2 / 3)

    def test_unused_cache_reports_unity_miss_rate(self):
        assert CacheStats().miss_rate() == 1.0
        assert CacheStats().miss_rate(3) == 1.0


class TestBypass:
    def test_bypassed_app_does_not_install(self):
        cache = make_cache()
        cache.bypass_apps.add(1)
        a = addr(0, 0)
        cache.fill(a, app_id=1)
        assert cache.resident_lines == 0
        assert cache.access(a, app_id=1) is False

    def test_other_apps_unaffected(self):
        cache = make_cache()
        cache.bypass_apps.add(1)
        a = addr(0, 0)
        cache.fill(a, app_id=0)
        assert cache.access(a, app_id=0) is True


class TestWayQuota:
    def test_quota_evicts_own_lru(self):
        cache = make_cache(n_sets=1, assoc=4)
        cache.way_quota = {0: 2}
        a, b, c = addr(0, 0, 1), addr(0, 1, 1), addr(0, 2, 1)
        other = addr(0, 3, 1)
        cache.fill(other, 1)
        cache.fill(a, 0)
        cache.fill(b, 0)
        victim = cache.fill(c, 0)  # app 0 at quota: evicts its own LRU (a)
        assert victim == a
        assert cache.access(other, 1) is True, "co-runner's line survived"

    def test_without_quota_global_lru(self):
        cache = make_cache(n_sets=1, assoc=2)
        other = addr(0, 0, 1)
        cache.fill(other, 1)
        cache.fill(addr(0, 1, 1), 0)
        victim = cache.fill(addr(0, 2, 1), 0)
        assert victim == other, "global LRU evicts the co-runner's line"


class TestInvalidateAndOccupancy:
    def test_invalidate_app(self):
        cache = make_cache()
        cache.fill(addr(0, 0), 0)
        cache.fill(addr(1, 0), 0)
        cache.fill(addr(2, 0), 1)
        assert cache.invalidate_app(0) == 2
        assert cache.occupancy_by_app() == {1: 1}

    def test_occupancy_by_app(self):
        cache = make_cache()
        cache.fill(addr(0, 0), 0)
        cache.fill(addr(0, 1), 1)
        assert cache.occupancy_by_app() == {0: 1, 1: 1}


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(0, 1)),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=50)
    def test_capacity_never_exceeded(self, ops):
        cache = make_cache(n_sets=2, assoc=3)
        for tag, app in ops:
            a = addr(tag % 2, tag, 2)
            if not cache.access(a, app):
                cache.fill(a, app)
        assert cache.resident_lines <= 2 * 3
        for line_set in cache._sets:
            assert len(line_set) <= 3

    @given(
        st.lists(st.integers(0, 31), min_size=1, max_size=200),
        st.integers(1, 4),
    )
    @settings(max_examples=50)
    def test_second_access_to_resident_line_always_hits(self, tags, assoc):
        """Once filled and immediately re-accessed, a line must hit."""
        cache = make_cache(n_sets=2, assoc=assoc)
        for tag in tags:
            a = addr(tag % 2, tag, 2)
            if not cache.access(a, 0):
                cache.fill(a, 0)
            assert cache.access(a, 0) is True

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_stats_accesses_equals_hits_plus_misses(self, tags):
        cache = make_cache()
        for tag in tags:
            a = addr(tag % 4, tag)
            if not cache.access(a, 0):
                cache.fill(a, 0)
        stats = cache.stats
        assert stats.accesses == len(tags)
        assert 0 <= stats.misses <= stats.accesses


class TestMSHR:
    def test_new_then_merge(self):
        mshr = MSHRTable(4)
        assert mshr.allocate(0x100, "w0") == "new"
        assert mshr.allocate(0x100, "w1") == "merged"
        assert mshr.merges == 1
        assert sorted(mshr.release(0x100)) == ["w0", "w1"]

    def test_release_unknown_line_is_empty(self):
        assert MSHRTable(2).release(0x42) == []

    def test_full_table_rejects(self):
        mshr = MSHRTable(2)
        assert mshr.allocate(0x100, "a") == "new"
        assert mshr.allocate(0x200, "b") == "new"
        assert mshr.allocate(0x300, "c") == "full"
        assert mshr.allocation_failures == 1

    def test_full_table_still_merges(self):
        mshr = MSHRTable(1)
        mshr.allocate(0x100, "a")
        assert mshr.allocate(0x100, "b") == "merged"

    def test_release_frees_entry(self):
        mshr = MSHRTable(1)
        mshr.allocate(0x100, "a")
        mshr.release(0x100)
        assert mshr.allocate(0x200, "b") == "new"

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_occupancy_bounded(self, lines):
        mshr = MSHRTable(4)
        for ln in lines:
            mshr.allocate(ln * 128, object())
            assert len(mshr) <= 4
