"""Tests for the unit/clock-domain dataflow analysis (R012/R013).

Covers the unit algebra itself, the naming conventions, known-bad /
known-clean fixture pairs for every bug class the checker is specified
to catch (cycles+seconds, fraction-vs-absolute compares, bytes+lines,
cross-clock subtraction), the clock-boundary allowlist, ``noqa``
suppression, mutation tests that seed each bug class into the *real*
``repro.metrics.bandwidth`` source and assert the finding lands at the
right file:line, the ``units_graph.json`` artifact, the per-analysis
cache-version fingerprint, the ``--jobs`` parallel path (byte-identical
findings), the ``--changed`` git narrowing, and the repo-level gate
that the shipped tree is unit-clean.
"""

from __future__ import annotations

import ast
import subprocess
from pathlib import Path

import pytest

from repro.devtools import Finding, lint_paths
from repro.devtools.context import FileContext, ProjectContext
from repro.devtools.linter import changed_files, main
from repro.devtools.semantic.cache import AnalysisCache
from repro.devtools.semantic.graph import analysis_versions
from repro.devtools.semantic.units import (
    BYTES,
    CYCLES,
    DIMLESS,
    FRAC_OF_PEAK,
    INSTS,
    LINES,
    SCALAR,
    TICKS,
    WALL,
    compatible,
    convention_unit,
    crosses_clock,
    div_units,
    mul_units,
    units_analysis,
    units_graph_doc,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
BANDWIDTH_PATH = REPO_ROOT / "src" / "repro" / "metrics" / "bandwidth.py"


def lint_tree(tmp_path: Path, files: dict[str, str], select=None) -> list[Finding]:
    """Write ``files`` under a temp project root and lint them."""
    for relpath, content in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    (tmp_path / "pyproject.toml").touch()
    return lint_paths(
        [tmp_path], root=tmp_path, select=select, semantic_cache=False
    )


def contexts_for(tmp_path: Path, files: dict[str, str]) -> ProjectContext:
    ctxs = []
    for relpath, content in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        ctxs.append(
            FileContext(
                path=path.resolve(),
                relpath=Path(relpath),
                source=content,
                tree=ast.parse(content),
            )
        )
    project = ProjectContext(root=tmp_path, files=ctxs)
    project.semantic_cache_path = None
    return project


# --- the unit algebra ---------------------------------------------------------


class TestUnitAlgebra:
    def test_division_derives_rates_and_mul_inverts(self):
        ipc = div_units(INSTS, CYCLES)
        assert str(ipc) == "inst/cycle"
        assert mul_units(ipc, CYCLES) == INSTS
        assert div_units(CYCLES, CYCLES) == DIMLESS

    def test_scalar_is_transparent(self):
        assert mul_units(SCALAR, CYCLES) == CYCLES
        assert div_units(CYCLES, SCALAR) == CYCLES
        assert compatible(SCALAR, WALL)
        assert compatible(LINES, SCALAR)

    def test_compatibility_is_by_dimensions(self):
        assert compatible(CYCLES, CYCLES)
        assert not compatible(CYCLES, WALL)
        assert not compatible(BYTES, LINES)
        # frac-of-peak is dimensionless: mixes with plain fractions.
        assert compatible(FRAC_OF_PEAK, DIMLESS)
        assert not compatible(FRAC_OF_PEAK, LINES)

    def test_frac_tag_survives_scaling_but_not_dimensions(self):
        assert mul_units(FRAC_OF_PEAK, DIMLESS) == FRAC_OF_PEAK
        # frac-of-peak times an absolute rate is an absolute rate.
        assert mul_units(FRAC_OF_PEAK, LINES).dims == LINES.dims

    def test_clock_domains(self):
        assert crosses_clock(CYCLES, WALL)
        assert crosses_clock(WALL, CYCLES)
        assert not crosses_clock(CYCLES, CYCLES)
        # Trace ticks are unit-distinct but not a clock crossing.
        assert not crosses_clock(TICKS, WALL)
        # Rates carry their clock: inst/cycle against wall seconds.
        assert crosses_clock(div_units(INSTS, CYCLES), WALL)

    def test_rendering(self):
        assert str(CYCLES) == "cycle"
        assert str(DIMLESS) == "1"
        assert str(SCALAR) == "number"
        assert str(FRAC_OF_PEAK) == "frac-of-peak"
        assert str(div_units(BYTES, LINES)) == "byte/line"

    def test_naming_conventions(self):
        assert convention_unit("elapsed_cycles") == CYCLES
        assert convention_unit("bw") == FRAC_OF_PEAK
        assert convention_unit("window_s") == WALL
        assert convention_unit("payload_bytes") == BYTES
        assert convention_unit("some_random_name") is None


# --- bad/clean fixture pairs --------------------------------------------------


class TestFixturePairs:
    def test_cycles_plus_seconds_trips_r013(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import Cycles, WallSeconds\n"
            "def deadline(now: Cycles, t: WallSeconds) -> Cycles:\n"
            "    return now + t\n"
        )}
        findings = lint_tree(tmp_path, files, select=["R012", "R013"])
        assert [(f.rule, f.line) for f in findings] == [("R013", 3)]
        assert "clock-domain mix" in findings[0].message

    def test_cycles_plus_cycles_is_clean(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import Cycles\n"
            "def deadline(now: Cycles, dt: Cycles) -> Cycles:\n"
            "    return now + dt\n"
        )}
        assert lint_tree(tmp_path, files, select=["R012", "R013"]) == []

    def test_fraction_vs_absolute_compare_trips_r012(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import FractionOfPeak, LinesPerCycle\n"
            "def saturated(bw: FractionOfPeak, peak: LinesPerCycle) -> bool:\n"
            "    return bw > peak\n"
        )}
        findings = lint_tree(tmp_path, files, select=["R012", "R013"])
        assert [(f.rule, f.line) for f in findings] == [("R012", 3)]
        assert "unit confusion" in findings[0].message

    def test_normalizing_before_compare_is_clean(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import FractionOfPeak, LinesPerCycle\n"
            "def saturated(bw: FractionOfPeak, rate: LinesPerCycle,\n"
            "              peak: LinesPerCycle) -> bool:\n"
            "    return bw > rate / peak\n"
        )}
        assert lint_tree(tmp_path, files, select=["R012", "R013"]) == []

    def test_bytes_plus_lines_trips_r012(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import Bytes, Lines\n"
            "def total(b: Bytes, ln: Lines) -> Bytes:\n"
            "    return b + ln\n"
        )}
        findings = lint_tree(tmp_path, files, select=["R012", "R013"])
        assert [(f.rule, f.line) for f in findings] == [("R012", 3)]

    def test_converting_lines_to_bytes_is_clean(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import Bytes, BytesPerLine, Lines\n"
            "def total(b: Bytes, ln: Lines, lb: BytesPerLine) -> Bytes:\n"
            "    return b + ln * lb\n"
        )}
        assert lint_tree(tmp_path, files, select=["R012", "R013"]) == []

    def test_cross_clock_subtraction_trips_r013(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import Cycles, WallSeconds\n"
            "def lag(t: WallSeconds, start: Cycles) -> WallSeconds:\n"
            "    return t - start\n"
        )}
        findings = lint_tree(tmp_path, files, select=["R012", "R013"])
        assert [(f.rule, f.line) for f in findings] == [("R013", 3)]

    def test_bad_return_declaration_trips_store_check(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import Cycles, Insts\n"
            "def bad_ipc(insts: Insts, cycles: Cycles) -> Cycles:\n"
            "    return insts / cycles\n"
        )}
        findings = lint_tree(tmp_path, files, select=["R012", "R013"])
        assert [(f.rule, f.line) for f in findings] == [("R012", 3)]
        assert "storing" in findings[0].message

    def test_derived_rate_matches_declared_return(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import Cycles, Insts, Ipc\n"
            "def ipc_of(insts: Insts, cycles: Cycles) -> Ipc:\n"
            "    return insts / cycles\n"
        )}
        assert lint_tree(tmp_path, files, select=["R012", "R013"]) == []


class TestClockBoundaries:
    CONVERSION = (
        "from repro.units import Cycles, WallSeconds\n"
        "def to_wall(now: Cycles, s_per_cycle: WallSeconds) -> WallSeconds:\n"
        "    return now * s_per_cycle\n"
    )

    def test_conversion_outside_boundary_trips(self, tmp_path):
        files = {"src/repro/sim/conv.py": self.CONVERSION}
        findings = lint_tree(tmp_path, files, select=["R013"])
        assert [f.rule for f in findings] == ["R013"]

    def test_chrome_module_is_an_allowed_boundary(self, tmp_path):
        files = {"src/repro/obs/chrome.py": self.CONVERSION}
        assert lint_tree(tmp_path, files, select=["R012", "R013"]) == []

    def test_tracer_complete_is_an_allowed_boundary(self, tmp_path):
        files = {"src/repro/obs/trace.py": (
            "from repro.units import Cycles, WallSeconds\n"
            "class Tracer:\n"
            "    def complete(self, origin: WallSeconds, now: Cycles)"
            " -> WallSeconds:\n"
            "        return origin + now * 1e-9\n"
        )}
        assert lint_tree(tmp_path, files, select=["R012", "R013"]) == []

    def test_noqa_suppresses_a_unit_finding(self, tmp_path):
        files = {"src/repro/sim/f.py": (
            "from repro.units import Bytes, Lines\n"
            "def total(b: Bytes, ln: Lines) -> Bytes:\n"
            "    return b + ln  # repro: noqa[R012]\n"
        )}
        assert lint_tree(tmp_path, files, select=["R012", "R013"]) == []


# --- mutation tests on the real bandwidth module ------------------------------


class TestMutationsOnRealBandwidth:
    """Seed each bug class into the shipped ``repro.metrics.bandwidth``
    source and assert the checker pins it to the exact file:line."""

    NEEDLE = "    return bw / cmr\n"

    def _mutate(self, tmp_path, bad_stmt: str):
        source = BANDWIDTH_PATH.read_text()
        assert self.NEEDLE in source, "bandwidth.py changed: update the seed"
        idx = source.index(self.NEEDLE)
        line = source[:idx].count("\n") + 1
        mutated = source.replace(self.NEEDLE, bad_stmt + self.NEEDLE, 1)
        findings = lint_tree(
            tmp_path,
            {"src/repro/metrics/bandwidth.py": mutated},
            select=["R012", "R013"],
        )
        return findings, line

    def test_cycles_plus_seconds(self, tmp_path):
        findings, line = self._mutate(
            tmp_path, "    bad = elapsed_cycles + window_s\n"
        )
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("R013", "src/repro/metrics/bandwidth.py", line)
        ]

    def test_fraction_vs_absolute_compare(self, tmp_path):
        findings, line = self._mutate(tmp_path, "    bad = bw > dram_lines\n")
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("R012", "src/repro/metrics/bandwidth.py", line)
        ]

    def test_bytes_plus_lines(self, tmp_path):
        findings, line = self._mutate(
            tmp_path, "    bad = payload_bytes + dram_lines\n"
        )
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("R012", "src/repro/metrics/bandwidth.py", line)
        ]

    def test_cross_clock_subtraction(self, tmp_path):
        findings, line = self._mutate(
            tmp_path, "    bad = start_us - boot_cycles\n"
        )
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("R013", "src/repro/metrics/bandwidth.py", line)
        ]


# --- the units_graph.json artifact --------------------------------------------


class TestUnitsGraphArtifact:
    def test_doc_shape_and_signature_rendering(self, tmp_path):
        project = contexts_for(tmp_path, {
            "src/repro/sim/a.py": (
                "from repro.units import Cycles, Insts, Ipc\n"
                "def ipc_of(insts: Insts, cycles: Cycles) -> Ipc:\n"
                "    return insts / cycles\n"
            ),
        })
        doc = units_graph_doc(project)
        for key in ("version", "vocabulary", "conventions",
                    "clock_boundaries", "checked_modules", "coverage",
                    "findings", "modules"):
            assert key in doc
        assert doc["checked_modules"] == ["repro.sim.a"]
        entry = doc["modules"]["repro.sim.a"]["functions"]["ipc_of"]
        assert entry["params"] == {"insts": "inst", "cycles": "cycle"}
        assert entry["returns"] == "inst/cycle"
        assert doc["coverage"]["functions_with_units"] == 1
        assert doc["findings"] == {"unit": 0, "clock": 0}

    def test_analysis_is_memoized_on_the_project(self, tmp_path):
        project = contexts_for(tmp_path, {
            "src/repro/sim/a.py": "x = 1\n",
        })
        first = units_analysis(project)
        assert units_analysis(project) is first


# --- cache version fingerprint ------------------------------------------------


class TestAnalysisVersionFingerprint:
    def test_versions_cover_every_semantic_analysis(self):
        versions = analysis_versions()
        for key in ("summary", "lifecycle", "races", "typedcore",
                    "units", "clockdomains"):
            assert key in versions

    def test_bumping_an_analysis_version_discards_the_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = AnalysisCache(path, versions={"units": 1})
        cache.put("digest", {"module": "m"})
        cache.save()
        same = AnalysisCache(path, versions={"units": 1})
        assert same.get("digest") == {"module": "m"}
        bumped = AnalysisCache(path, versions={"units": 2})
        assert bumped.get("digest") is None
        added = AnalysisCache(path, versions={"units": 1, "clockdomains": 1})
        assert added.get("digest") is None


# --- parallel summarization ---------------------------------------------------


class TestParallelSummarization:
    def test_jobs_findings_identical_to_serial(self, tmp_path):
        files = {}
        for i in range(6):
            files[f"src/repro/sim/m{i}.py"] = (
                "from repro.units import Bytes, Lines\n"
                f"def f{i}(b: Bytes, ln: Lines) -> Bytes:\n"
                "    return b + ln\n"
            )
        for relpath, content in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
        (tmp_path / "pyproject.toml").touch()
        serial = lint_paths(
            [tmp_path], root=tmp_path, select=["R012", "R013"],
            semantic_cache=False,
        )
        parallel = lint_paths(
            [tmp_path], root=tmp_path, select=["R012", "R013"],
            semantic_cache=False, jobs=2,
        )
        assert serial, "fixture should produce findings"
        assert [f.render() for f in parallel] == [f.render() for f in serial]


# --- git-aware incremental linting --------------------------------------------


def _git(cwd: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t", *args],
        cwd=cwd, check=True, capture_output=True,
    )


class TestChangedFiles:
    def test_tracks_diff_and_untracked_python_files(self, tmp_path):
        _git(tmp_path, "init", "-q")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("n\n")
        _git(tmp_path, "add", "-A")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        (tmp_path / "a.py").write_text("x = 2\n")
        (tmp_path / "b.py").write_text("y = 1\n")
        (tmp_path / "more.txt").write_text("m\n")
        assert changed_files(tmp_path) == {"a.py", "b.py"}

    def test_outside_a_repo_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            changed_files(tmp_path)

    def test_cli_changed_lints_only_touched_files(self, tmp_path, capsys):
        _git(tmp_path, "init", "-q")
        (tmp_path / "pyproject.toml").touch()
        clean = tmp_path / "src" / "repro" / "sim" / "clean.py"
        clean.parent.mkdir(parents=True)
        clean.write_text(
            "from repro.units import Bytes, Lines\n"
            "def total(b: Bytes, ln: Lines) -> Bytes:\n"
            "    return b + ln\n"
        )
        _git(tmp_path, "add", "-A")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        # Committed tree unchanged: --changed finds nothing to lint,
        # even though the committed file has a finding.
        code = main([
            str(tmp_path), "--root", str(tmp_path), "--changed",
            "--select", "R012", "--no-semantic-cache",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "nothing to lint" in out
        # A new bad file is untracked -> reported.
        bad = tmp_path / "src" / "repro" / "sim" / "bad.py"
        bad.write_text(clean.read_text())
        code = main([
            str(tmp_path), "--root", str(tmp_path), "--changed",
            "--select", "R012", "--no-semantic-cache",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "bad.py" in out
        assert "clean.py" not in out


# --- repo-level gate ----------------------------------------------------------


class TestRealTreeUnits:
    def test_shipped_tree_is_unit_clean(self):
        findings = lint_paths(
            [REPO_ROOT / "src"],
            root=REPO_ROOT,
            select=["R012", "R013"],
            semantic_cache=False,
        )
        assert findings == [], [f.render() for f in findings]

    def test_core_surfaces_are_annotated(self):
        files = []
        for p in sorted((REPO_ROOT / "src").rglob("*.py")):
            source = p.read_text()
            files.append(
                FileContext(
                    path=p.resolve(),
                    relpath=p.relative_to(REPO_ROOT),
                    source=source,
                    tree=ast.parse(source),
                )
            )
        project = ProjectContext(root=REPO_ROOT, files=files)
        project.semantic_cache_path = None
        doc = units_graph_doc(project)
        # The analysis actually covered the sim/metrics/core/obs layers.
        for module in ("repro.sim.engine", "repro.sim.stats",
                       "repro.metrics.bandwidth", "repro.core.controller",
                       "repro.obs.trace"):
            assert module in doc["checked_modules"]
        ws = doc["modules"]["repro.sim.stats"]["classes"]["WindowSample"]
        assert ws["bw"] == "frac-of-peak"
        assert ws["cycles"] == "cycle"
        eb = doc["modules"]["repro.metrics.bandwidth"]["functions"]
        assert eb["effective_bandwidth"]["returns"] == "frac-of-peak"
        assert doc["coverage"]["functions_with_units"] >= 40
