"""Integration tests: the paper's core phenomena emerge from the substrate.

These run on the medium-scale GPU (the experiment configuration) with
short simulations, checking the qualitative physics everything else
rests on — not exact numbers.
"""

import pytest

from repro.config import medium_config
from repro.sim.engine import Simulator
from repro.workloads.table4 import app_by_abbr


def run_alone(cfg, abbr, tlp, cycles=20_000, warmup=5_000, seed=3):
    sim = Simulator(cfg, [app_by_abbr(abbr)], core_split=(cfg.n_cores // 2,),
                    seed=seed)
    return sim.run(cycles, warmup=warmup, initial_tlp={0: tlp})


def run_pair(cfg, a, b, tlp_a, tlp_b, cycles=20_000, warmup=5_000, seed=3):
    sim = Simulator(cfg, [app_by_abbr(a), app_by_abbr(b)], seed=seed)
    return sim.run(cycles, warmup=warmup, initial_tlp={0: tlp_a, 1: tlp_b})


@pytest.fixture(scope="module")
def cfg():
    return medium_config()


class TestSingleAppPhysics:
    def test_bandwidth_rises_with_tlp_for_streaming_app(self, cfg):
        low = run_alone(cfg, "BLK", 1)
        high = run_alone(cfg, "BLK", 16)
        assert high.samples[0].bw > 1.5 * low.samples[0].bw

    def test_latency_rises_with_tlp(self, cfg):
        low = run_alone(cfg, "BLK", 1)
        high = run_alone(cfg, "BLK", 24)
        assert (
            high.samples[0].avg_mem_latency > low.samples[0].avg_mem_latency
        )

    def test_cache_sensitive_app_thrashes_at_high_tlp(self, cfg):
        low = run_alone(cfg, "BFS", 2)
        high = run_alone(cfg, "BFS", 24)
        assert high.samples[0].cmr > low.samples[0].cmr, (
            "aggregate footprint beyond cache capacity must raise CMR"
        )

    def test_streaming_app_is_cache_insensitive(self, cfg):
        result = run_alone(cfg, "BLK", 8)
        assert result.samples[0].cmr > 0.95
        assert result.samples[0].eb == pytest.approx(
            result.samples[0].bw, rel=0.05
        )

    def test_streaming_app_has_row_locality(self, cfg):
        result = run_alone(cfg, "BLK", 8)
        random_access = run_alone(cfg, "GUPS", 8)
        assert (
            result.samples[0].row_hit_rate
            > random_access.samples[0].row_hit_rate + 0.2
        )

    def test_compute_bound_app_barely_uses_memory(self, cfg):
        result = run_alone(cfg, "LUD", 8)
        assert result.samples[0].bw < 0.1
        assert result.dram_utilization < 0.2


class TestSharedResourceContention:
    def test_corunner_tlp_hurts_the_other_app(self, cfg):
        gentle = run_pair(cfg, "JPEG", "TRD", 8, 1)
        hostile = run_pair(cfg, "JPEG", "TRD", 8, 24)
        assert hostile.samples[0].ipc < 0.9 * gentle.samples[0].ipc

    def test_shared_run_slower_than_alone(self, cfg):
        alone = run_alone(cfg, "JPEG", 8)
        shared = run_pair(cfg, "JPEG", "TRD", 8, 8)
        assert shared.samples[0].ipc < alone.samples[0].ipc

    def test_l2_contention_visible_in_miss_rates(self, cfg):
        gentle = run_pair(cfg, "BFS", "BLK", 4, 1)
        hostile = run_pair(cfg, "BFS", "BLK", 4, 24)
        assert (
            hostile.samples[0].l2_miss_rate
            > gentle.samples[0].l2_miss_rate
        )

    def test_total_bw_bounded_by_peak(self, cfg):
        result = run_pair(cfg, "BLK", "TRD", 24, 24)
        assert (
            result.samples[0].bw + result.samples[1].bw <= 1.0 + 1e-9
        )


class TestEBPremise:
    """IPC tracks EB within an application — Equation 1 / Figure 2d."""

    @pytest.mark.parametrize("abbr", ["BFS", "BLK", "JPEG", "TRD"])
    def test_ipc_eb_correlation_across_tlp(self, cfg, abbr):
        points = []
        for tlp in (1, 2, 4, 8, 16, 24):
            s = run_alone(cfg, abbr, tlp).samples[0]
            points.append((s.ipc, s.eb))
        n = len(points)
        mi = sum(p[0] for p in points) / n
        me = sum(p[1] for p in points) / n
        cov = sum((i - mi) * (e - me) for i, e in points)
        vi = sum((i - mi) ** 2 for i, _ in points)
        ve = sum((e - me) ** 2 for _, e in points)
        corr = cov / (vi * ve) ** 0.5 if vi > 0 and ve > 0 else 1.0
        assert corr > 0.7, f"{abbr}: IPC must track EB (got corr={corr:.2f})"


class TestStationarity:
    def test_short_and_long_runs_agree(self, cfg):
        """Profiling-length runs approximate steady state (within ~15%)."""
        short = run_pair(cfg, "FFT", "TRD", 8, 8, cycles=40_000, warmup=8_000)
        long = run_pair(cfg, "FFT", "TRD", 8, 8, cycles=200_000,
                        warmup=40_000)
        for app in (0, 1):
            assert short.samples[app].ipc == pytest.approx(
                long.samples[app].ipc, rel=0.15
            )
