"""Tests for the runtime controllers (DynCTA, Mod+Bypass, PBS online).

Controller *decision logic* is tested against a stub simulator with
fabricated window samples, so each rule is exercised deterministically;
end-to-end controller behaviour on the real simulator is covered at the
bottom and in test_integration.py.
"""

import pytest

from repro.config import small_config
from repro.core.controller import (
    COUNTER_RELAY_CYCLES,
    BaseController,
    StaticController,
)
from repro.core.dyncta import DynCTAController
from repro.core.modbypass import ModBypassController
from repro.core.pbs import PBSController
from repro.sim.engine import EventQueue, Simulator
from repro.sim.stats import AppStats, WindowSample
from repro.workloads.table4 import app_by_abbr


class StubSim:
    """Just enough Simulator surface for controller unit tests."""

    def __init__(self):
        self.events = EventQueue()
        self.tlp: dict[int, int] = {}
        self.bypass: dict[int, bool] = {}

    def set_tlp(self, app_id, tlp):
        self.tlp[app_id] = tlp

    def set_l2_bypass(self, app_id, bypass):
        self.bypass[app_id] = bypass

    def flush(self):
        self.events.run_until(self.events.now + 1e6)


def window(app_id=0, eb=0.3, cmr=0.5, latency=500.0, ipc=0.1) -> WindowSample:
    return WindowSample(
        app_id=app_id, cycles=1000.0, insts=int(ipc * 1000), ipc=ipc,
        l1_miss_rate=cmr, l2_miss_rate=1.0, cmr=cmr, bw=eb * cmr, eb=eb,
        avg_mem_latency=latency, row_hit_rate=0.5,
    )


class TestBaseController:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            StaticController({}, sample_period=0)

    def test_actuation_is_delayed_by_relay_latency(self):
        sim = StubSim()
        ctrl = StaticController({})
        ctrl.actuate(sim, 0, 4)
        assert sim.tlp == {}, "not applied before the relay latency"
        sim.events.run_until(COUNTER_RELAY_CYCLES)
        assert sim.tlp == {0: 4}


class TestStaticController:
    def test_sets_combo_at_start_then_never_changes(self):
        sim = StubSim()
        ctrl = StaticController({0: 4, 1: 8})
        ctrl.start(sim, 0.0)
        assert sim.tlp == {0: 4, 1: 8}
        ctrl.on_window(sim, 1000.0, {0: window(0), 1: window(1)})
        sim.flush()
        assert sim.tlp == {0: 4, 1: 8}


class TestDynCTA:
    def make(self, **kw):
        ctrl = DynCTAController(2, lat_high=1500, lat_low=700, **kw)
        sim = StubSim()
        ctrl.start(sim, 0.0)
        sim.flush()
        return ctrl, sim

    def test_starts_at_max_tlp_by_default(self):
        ctrl, sim = self.make()
        assert sim.tlp == {0: 24, 1: 24}

    def test_high_latency_steps_down(self):
        ctrl, sim = self.make()
        ctrl.on_window(sim, 1000.0, {0: window(0, latency=5000),
                                     1: window(1, latency=500)})
        sim.flush()
        assert sim.tlp[0] == 16, "one lattice step down from 24"
        assert sim.tlp[1] == 24, "co-runner untouched (local decisions)"

    def test_low_latency_steps_up(self):
        ctrl, sim = self.make(initial_tlp=4)
        ctrl.on_window(sim, 1000.0, {0: window(0, latency=100),
                                     1: window(1, latency=500)})
        sim.flush()
        assert sim.tlp[0] == 6

    def test_mid_latency_holds(self):
        ctrl, sim = self.make(initial_tlp=8)
        ctrl.on_window(sim, 1000.0, {0: window(0, latency=1000),
                                     1: window(1, latency=1000)})
        sim.flush()
        assert sim.tlp == {0: 8, 1: 8}

    def test_saturates_at_bottom(self):
        ctrl, sim = self.make(initial_tlp=1)
        for t in (1000.0, 2000.0):
            ctrl.on_window(sim, t, {0: window(0, latency=9999),
                                    1: window(1, latency=9999)})
        sim.flush()
        assert sim.tlp == {0: 1, 1: 1}

    def test_decisions_logged(self):
        ctrl, sim = self.make()
        ctrl.on_window(sim, 1000.0, {0: window(0, latency=5000),
                                     1: window(1)})
        assert ctrl.decisions == [(1000.0, 0, 16)]

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError):
            DynCTAController(2, lat_high=100, lat_low=200)


class TestModBypass:
    def make(self):
        ctrl = ModBypassController(2, lat_high=1500, lat_low=700)
        ctrl.WARMUP_WINDOWS = 0  # decision logic under test, not warmup
        sim = StubSim()
        ctrl.start(sim, 0.0)
        sim.flush()
        return ctrl, sim

    def test_no_decisions_during_warmup(self):
        ctrl = ModBypassController(2)
        sim = StubSim()
        ctrl.start(sim, 0.0)
        sim.flush()
        for t in range(1, ctrl.WARMUP_WINDOWS + 1):
            ctrl.on_window(sim, float(t), {0: window(0, cmr=0.99),
                                           1: window(1, cmr=0.99)})
        assert sim.bypass == {}, "no bypass decisions while caches warm"

    def test_cache_averse_app_gets_bypassed_after_hysteresis(self):
        ctrl, sim = self.make()
        ctrl.on_window(sim, 1000.0, {0: window(0, cmr=0.98),
                                     1: window(1, cmr=0.3)})
        assert sim.bypass == {}, "one window of evidence is not enough"
        ctrl.on_window(sim, 2000.0, {0: window(0, cmr=0.98),
                                     1: window(1, cmr=0.3)})
        assert sim.bypass == {0: True}
        assert 0 in ctrl.bypassed

    def test_evidence_resets_on_contrary_window(self):
        ctrl, sim = self.make()
        ctrl.on_window(sim, 1000.0, {0: window(0, cmr=0.98), 1: window(1)})
        ctrl.on_window(sim, 2000.0, {0: window(0, cmr=0.5), 1: window(1)})
        ctrl.on_window(sim, 3000.0, {0: window(0, cmr=0.98), 1: window(1)})
        assert sim.bypass == {}

    def test_readmission_when_miss_rate_recovers(self):
        ctrl, sim = self.make()
        for t in (1.0, 2.0):
            ctrl.on_window(sim, t, {0: window(0, cmr=0.98), 1: window(1)})
        assert sim.bypass == {0: True}
        for t in (3.0, 4.0):
            ctrl.on_window(sim, t, {0: window(0, cmr=0.4), 1: window(1)})
        assert sim.bypass == {0: False}

    def test_also_modulates_tlp(self):
        ctrl, sim = self.make()
        ctrl.on_window(sim, 1000.0, {0: window(0, latency=5000),
                                     1: window(1)})
        sim.flush()
        assert sim.tlp[0] == 16


class TestPBSControllerOnRealSim:
    def _run(self, metric, scale=None, cycles=150_000):
        cfg = small_config()
        ctrl = PBSController(metric, n_apps=2, scale=scale, sample_period=800)
        sim = Simulator(
            cfg, [app_by_abbr("BLK"), app_by_abbr("TRD")],
            controller=ctrl, seed=3,
        )
        result = sim.run(cycles, warmup=10_000,
                         initial_tlp={0: 24, 1: 24})
        return ctrl, result

    def test_search_settles_on_a_lattice_combo(self):
        ctrl, result = self._run("ws")
        assert ctrl.final_combo is not None
        assert all(lv in small_config().tlp_levels for lv in ctrl.final_combo)
        assert ctrl.log.critical_app in (0, 1)

    def test_tlp_timeline_shows_probe_then_settle(self):
        ctrl, result = self._run("ws")
        # Probing moves TLP many times; after settling it stays put.
        assert len(result.tlp_timeline) > 10
        final = ctrl.final_combo
        assert result.final_tlp == {0: final[0], 1: final[1]}

    def test_sampled_scaling_mode(self):
        ctrl, result = self._run("fi", scale="sampled")
        assert ctrl._scale is not None
        assert all(s > 0 for s in ctrl._scale)
        assert ctrl.final_combo is not None

    def test_explicit_scale_sequence(self):
        ctrl, _ = self._run("hs", scale=[0.5, 0.25])
        assert ctrl._scale == [0.5, 0.25]

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            PBSController("nope", 2)


class TestPBSControllerDrift:
    """Drive the controller with fabricated windows through a full
    search, settlement, and a drift-triggered re-search."""

    def make_settled(self):
        ctrl = PBSController(
            "ws", n_apps=2, sample_period=1000,
            levels=(1, 24), probe_levels=(1, 24), warmup_windows=0,
        )
        ctrl.SETTLE_WINDOWS = 0
        ctrl.MEASURE_WINDOWS = 1
        sim = StubSim()
        ctrl.start(sim, 0.0)
        sim.flush()
        t = 0.0
        # Feed constant EBs until the search completes.
        for _ in range(40):
            if ctrl._settled:
                break
            t += 1000.0
            ctrl.on_window(sim, t, {0: window(0, eb=0.4),
                                    1: window(1, eb=0.4)})
            sim.flush()
        assert ctrl._settled, "search must settle"
        return ctrl, sim, t

    def test_settles_and_survives_good_windows(self):
        ctrl, sim, t = self.make_settled()
        for _ in range(5):
            t += 1000.0
            ctrl.on_window(sim, t, {0: window(0, eb=0.4),
                                    1: window(1, eb=0.4)})
        assert ctrl.search_count == 1

    def test_drift_triggers_research(self):
        ctrl, sim, t = self.make_settled()
        # Establish the settled objective with one good window.
        t += 1000.0
        ctrl.on_window(sim, t, {0: window(0, eb=0.4), 1: window(1, eb=0.4)})
        # Then collapse it far below the drift threshold, repeatedly.
        for _ in range(ctrl.DRIFT_PATIENCE + 1):
            t += 1000.0
            ctrl.on_window(sim, t, {0: window(0, eb=0.01),
                                    1: window(1, eb=0.01)})
            sim.flush()
        assert ctrl.search_count == 2, "drift must restart the search"

    def test_research_cap(self):
        ctrl, sim, t = self.make_settled()
        ctrl.search_count = ctrl.MAX_RESEARCHES + 1  # cap exhausted
        t += 1000.0
        ctrl.on_window(sim, t, {0: window(0, eb=0.4), 1: window(1, eb=0.4)})
        for _ in range(ctrl.DRIFT_PATIENCE + 2):
            t += 1000.0
            ctrl.on_window(sim, t, {0: window(0, eb=0.01),
                                    1: window(1, eb=0.01)})
        assert ctrl.search_count == ctrl.MAX_RESEARCHES + 1
