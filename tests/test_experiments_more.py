"""Tests for the heavier experiment drivers on minimal workload sets."""

import pytest

from repro.config import small_config
from repro.core.runner import RunLengths
from repro.experiments.common import ExperimentContext, ResultStore
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig7 import run_fig7
from repro.experiments.sensitivity import (
    run_core_split,
    run_l2_partition,
    run_three_apps,
)


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    return ExperimentContext(
        config=small_config(),
        lengths=RunLengths.quick(),
        seed=5,
        store=ResultStore(tmp_path_factory.mktemp("results")),
    )


class TestFig4:
    def test_single_pair(self, ctx):
        result = run_fig4(ctx, pairs=(("BLK", "TRD"),))
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.workload == "BLK_TRD"
        # optWS cannot lose to bestTLP: same surface, exhaustive search.
        assert row.ws_opt >= row.ws_base - 1e-9
        assert "Figure 4" in result.render()


class TestFig7:
    def test_structure(self, ctx):
        result = run_fig7(ctx, pair_names=("BLK", "TRD"))
        assert len(result.scale) == 2
        assert set(result.eb_diff) == {1, 4, 8, 24}
        for series in result.eb_diff.values():
            assert len(series) == 8
        for combo in (result.pbs_fi_combo, result.opt_fi_combo,
                      result.pbs_hs_combo, result.opt_hs_combo):
            assert all(lv in small_config().tlp_levels for lv in combo)
        assert "Figure 7" in result.render()


class TestSensitivity:
    @pytest.fixture()
    def wide_ctx(self, tmp_path):
        """Six cores so three applications and uneven splits fit."""
        return ExperimentContext(
            config=small_config().with_(n_cores=6),
            lengths=RunLengths.quick(),
            seed=5,
            store=ResultStore(tmp_path),
        )

    def test_three_apps(self, wide_ctx):
        result = run_three_apps(
            wide_ctx, names=("BLK", "TRD", "JPEG"),
            schemes=("besttlp", "maxtlp"),
        )
        assert set(result.ws) == {"besttlp", "maxtlp"}
        assert all(ws > 0 for ws in result.ws.values())
        assert "three-application" in result.render()

    def test_three_apps_needs_cores(self, ctx):
        with pytest.raises(ValueError, match="cannot host"):
            run_three_apps(ctx, names=("BLK", "TRD", "JPEG"))

    def test_core_split(self, wide_ctx):
        result = run_core_split(
            wide_ctx, pair_names=("BLK", "TRD"), schemes=("besttlp",)
        )
        assert len(result.ws) >= 2, "uneven and even splits evaluated"
        for values in result.ws.values():
            assert values["besttlp"] > 0
        assert "core-partitioning" in result.render()

    def test_l2_partition(self, ctx):
        result = run_l2_partition(
            ctx, pair_names=("BLK", "TRD"), schemes=("besttlp",)
        )
        assert set(result.ws) == {"shared L2", "way-partitioned L2"}
        for values in result.ws.values():
            assert values["besttlp"] > 0
        assert "L2-partitioning" in result.render()


class TestObservation2:
    def test_structure(self, ctx):
        from repro.experiments.fig4 import run_observation2

        result = run_observation2(ctx, pairs=(("BLK", "TRD"),))
        assert set(result.rows) == {"BLK_TRD"}
        opt_it, opt_ws, ratio = result.rows["BLK_TRD"]
        assert len(opt_it) == len(opt_ws) == 2
        assert 0.0 < ratio <= 1.0 + 1e-9
        assert "Observation 2" in result.render()


class TestRobustness:
    def test_structure(self, ctx):
        from repro.experiments.robustness import run_robustness

        result = run_robustness(
            ctx, seeds=(5, 6), workloads=(("BLK", "TRD"),),
            schemes=("besttlp", "opt-ws"),
        )
        assert set(result.gmeans) == {5, 6}
        for seed in (5, 6):
            assert result.gmeans[seed]["besttlp"] == 1.0
            assert result.gmeans[seed]["opt-ws"] >= 1.0 - 1e-9
        assert result.ordering_stable("opt-ws", "besttlp")
        mean, std = result.spread("opt-ws")
        assert mean >= 1.0 and std >= 0.0
        assert "robustness" in result.render()


class TestSamplingSweep:
    def test_structure(self, ctx):
        from repro.experiments.sampling import run_sampling_sweep

        sweep = run_sampling_sweep(
            ctx, pair_names=("BLK", "TRD"), periods=(800, 1600)
        )
        assert set(sweep.rows) == {800, 1600}
        for ws, _combo, search_cycles in sweep.rows.values():
            assert ws > 0
            assert search_cycles >= 0
        assert sweep.flat_region_spread >= 1.0
        assert "monitoring-interval" in sweep.render()


class TestLatencyStudy:
    def test_structure(self, ctx):
        from repro.experiments.latency import run_latency_study

        study = run_latency_study(ctx, pair_names=("BLK", "TRD"))
        assert set(study.combos) == {"bestTLP+bestTLP", "optWS"}
        for label in study.combos:
            assert study.queue_depth[label] >= 0
            for app in (0, 1):
                s = study.latency[label][app]
                assert s["p50"] <= s["p99"]
                assert 0.0 <= study.l2_share[label][app] <= 1.0
        assert "latency" in study.render()
