"""Tests for repro.core.offline: BF-*, opt*, and PBS-Offline searches."""

import pytest

from repro.core.offline import (
    brute_force_search,
    oracle_search,
    pbs_offline_search,
    sampled_scale,
)
from repro.core.tlp import all_combos
from repro.sim.engine import SimResult
from repro.sim.stats import WindowSample


def result_for(ebs: dict[int, float], ipcs: dict[int, float]) -> SimResult:
    samples = {
        a: WindowSample(
            app_id=a, cycles=1000.0, insts=int(ipcs[a] * 1000), ipc=ipcs[a],
            l1_miss_rate=0.5, l2_miss_rate=1.0, cmr=0.5, bw=ebs[a] * 0.5,
            eb=ebs[a], avg_mem_latency=400.0, row_hit_rate=0.5,
        )
        for a in ebs
    }
    return SimResult(samples=samples, cycles=1000.0, tlp_timeline=[])


def synthetic_surface(eb_fn, ipc_fn):
    """Build a full 64-combo surface from analytic EB/IPC functions."""
    surface = {}
    for combo in all_combos(2):
        ebs = {a: eb_fn(a, combo) for a in (0, 1)}
        ipcs = {a: ipc_fn(a, combo) for a in (0, 1)}
        surface[combo] = result_for(ebs, ipcs)
    return surface


def cliff_eb(app, combo, critical=0, cliff=4):
    if app == critical:
        return 1.0 if combo[app] <= cliff else 0.1
    return min(combo[app], 8) / 8 * 0.5


SURFACE = synthetic_surface(
    cliff_eb, lambda a, c: cliff_eb(a, c) * (0.4 if a == 0 else 0.8)
)


class TestBruteForce:
    def test_finds_global_eb_ws_argmax(self):
        combo = brute_force_search(SURFACE, "ws", 2)
        ebs = [SURFACE[combo].samples[a].eb for a in (0, 1)]
        best = max(
            sum(SURFACE[c].samples[a].eb for a in (0, 1)) for c in SURFACE
        )
        assert sum(ebs) == pytest.approx(best)

    def test_fi_prefers_balance(self):
        combo = brute_force_search(SURFACE, "fi", 2)
        s = SURFACE[combo].samples
        assert abs(s[0].eb - s[1].eb) <= 0.1

    def test_scale_changes_fi_choice(self):
        unscaled = brute_force_search(SURFACE, "fi", 2)
        scaled = brute_force_search(SURFACE, "fi", 2, scale=[1.0, 0.25])
        assert scaled != unscaled

    def test_rejects_empty_surface(self):
        with pytest.raises(ValueError):
            brute_force_search({}, "ws", 2)


class TestOracle:
    def test_maximizes_sd_metric(self):
        combo = oracle_search(SURFACE, "ws", alone_ipcs=[0.4, 0.8])
        def ws(c):
            return sum(
                SURFACE[c].samples[a].ipc / [0.4, 0.8][a] for a in (0, 1)
            )
        assert ws(combo) == pytest.approx(max(ws(c) for c in SURFACE))

    def test_oracle_at_least_as_good_as_any_fixed_combo(self):
        combo = oracle_search(SURFACE, "hs", alone_ipcs=[0.4, 0.8])
        from repro.metrics.slowdown import harmonic_speedup
        def hs(c):
            sds = [SURFACE[c].samples[a].ipc / [0.4, 0.8][a] for a in (0, 1)]
            return harmonic_speedup(sds)
        for other in ((24, 24), (1, 1), (4, 8)):
            assert hs(combo) >= hs(other) - 1e-12

    def test_rejects_nonpositive_alone(self):
        with pytest.raises(ValueError):
            oracle_search(SURFACE, "ws", alone_ipcs=[0.0, 1.0])


class TestSampledScale:
    def test_reads_probe_combos(self):
        scale = sampled_scale(SURFACE, 2, ref_level=8, min_level=1)
        assert scale[0] == pytest.approx(SURFACE[(8, 1)].samples[0].eb)
        assert scale[1] == pytest.approx(SURFACE[(1, 8)].samples[1].eb)

    def test_missing_probe_raises(self):
        partial = {c: r for c, r in SURFACE.items() if c != (8, 1)}
        with pytest.raises(KeyError):
            sampled_scale(partial, 2, ref_level=8)

    def test_zero_eb_guarded(self):
        surface = synthetic_surface(lambda a, c: 0.0, lambda a, c: 0.1)
        scale = sampled_scale(surface, 2)
        assert all(s > 0 for s in scale)


class TestPBSOffline:
    def test_matches_cliff_structure(self):
        combo, log = pbs_offline_search(SURFACE, "ws", 2)
        assert log.critical_app == 0
        assert log.fixed_level == 4
        assert combo[0] == 4

    def test_uses_fraction_of_the_surface(self):
        _, log = pbs_offline_search(SURFACE, "ws", 2)
        assert log.n_samples < len(SURFACE) / 2

    def test_close_to_brute_force_on_patterned_surface(self):
        pbs_combo, _ = pbs_offline_search(SURFACE, "ws", 2)
        bf_combo = brute_force_search(SURFACE, "ws", 2)
        def ebws(c):
            return sum(SURFACE[c].samples[a].eb for a in (0, 1))
        assert ebws(pbs_combo) >= 0.95 * ebws(bf_combo)

    def test_missing_combo_raises(self):
        partial = {c: r for c, r in SURFACE.items() if c[1] != 24}
        with pytest.raises(KeyError):
            pbs_offline_search(partial, "ws", 2)
