"""Tests for the analytical-model validation helpers."""

import pytest

from repro.analysis.model import LinearFit, fit_ipc_vs_eb, predict_ws_from_eb
from repro.config import small_config
from repro.core.runner import AloneProfile, RunLengths, profile_alone, profile_surface
from repro.workloads.table4 import app_by_abbr


class TestLinearFit:
    def test_exact_line(self):
        fit = fit_ipc_vs_eb([(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r2 == pytest.approx(1.0)
        assert fit.predict(3.0) == pytest.approx(7.0)

    def test_noisy_line_has_partial_r2(self):
        fit = fit_ipc_vs_eb([(0, 0.0), (1, 1.2), (2, 1.8), (3, 3.1)])
        assert 0.9 < fit.r2 < 1.0

    def test_constant_y_is_perfect(self):
        fit = fit_ipc_vs_eb([(0, 2.0), (1, 2.0), (2, 2.0)])
        assert fit.r2 == pytest.approx(1.0)
        assert fit.slope == pytest.approx(0.0)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_ipc_vs_eb([(1.0, 1.0)])


class TestEquationValidation:
    @pytest.fixture(scope="class")
    def setup(self):
        cfg = small_config()
        apps = [app_by_abbr("BLK"), app_by_abbr("TRD")]
        lengths = RunLengths.quick()
        alone = [profile_alone(cfg, a, cfg.n_cores // 2, lengths=lengths,
                               seed=2) for a in apps]
        surface = profile_surface(cfg, apps, lengths=lengths, seed=2)
        return alone, surface

    def test_eq1_linear_on_real_surface(self, setup):
        from repro.analysis.model import validate_eq1

        _, surface = setup
        for app_id in (0, 1):
            fit = validate_eq1(surface, app_id)
            assert fit.n == 64
            assert fit.slope > 0, "IPC must grow with EB"
            assert fit.r2 > 0.5, "Equation 1 must hold qualitatively"

    def test_eq5_predicts_ws(self, setup):
        from repro.analysis.model import validate_eq5

        alone, surface = setup
        fit = validate_eq5(surface, alone)
        assert fit.slope > 0
        assert fit.r2 > 0.5

    def test_predict_ws_shape(self, setup):
        alone, surface = setup
        result = surface[(8, 8)]
        predicted = predict_ws_from_eb(result, alone)
        assert predicted > 0
        # prediction is the sum of two scaled EBs, each bounded by the
        # shared/alone ratio
        assert predicted <= sum(
            result.samples[a].eb / alone[a].eb_alone for a in (0, 1)
        ) + 1e-12
