"""Tests for open-system tenancy: core splitting, the attach/detach
lifecycle, arrival schedules, the policy registry, and pooled
open-system jobs."""

from __future__ import annotations

import pickle

import pytest

from repro.core.controller import StaticController
from repro.core.policy import (
    available_policies,
    get_policy,
    make_policy,
    register_policy,
)
from repro.exec import OpenSimJob, run_jobs, run_open_sim_job
from repro.experiments.common import _result_to_dict
from repro.sim.engine import Simulator
from repro.sim.tenancy import TenancyEvent, split_cores
from repro.workloads.arrivals import ArrivalSchedule
from repro.workloads.table4 import app_by_abbr

from tests.conftest import run_small_pair


class TestSplitCores:
    def test_remainder_is_distributed_not_lost(self):
        assert split_cores(8, 3) == (3, 3, 2)

    def test_even_split(self):
        assert split_cores(8, 2) == (4, 4)
        assert split_cores(8, 1) == (8,)

    @pytest.mark.parametrize("n_cores,n_apps", [(30, 4), (7, 3), (5, 5)])
    def test_always_sums_to_n_cores(self, n_cores, n_apps):
        split = split_cores(n_cores, n_apps)
        assert sum(split) == n_cores
        assert len(split) == n_apps
        # Remainder goes to the front; counts never differ by more than 1.
        assert max(split) - min(split) <= 1
        assert sorted(split, reverse=True) == list(split)

    def test_zero_apps_rejected(self):
        with pytest.raises(ValueError, match="at least one application"):
            split_cores(8, 0)

    def test_more_apps_than_cores_rejected(self):
        with pytest.raises(ValueError, match="more applications than cores"):
            split_cores(2, 3)


class TestTenancyEvent:
    def test_attach_carries_profile(self):
        ev = TenancyEvent(cycle=100, action="attach", profile=app_by_abbr("LUD"))
        assert ev.action == "attach"
        assert ev.profile.abbr == "LUD"

    def test_detach_carries_app_id(self):
        ev = TenancyEvent(cycle=100, action="detach", app_id=1)
        assert ev.app_id == 1

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown tenancy action"):
            TenancyEvent(cycle=100, action="evict", app_id=0)

    def test_cycle_zero_rejected(self):
        with pytest.raises(ValueError, match="after cycle 0"):
            TenancyEvent(cycle=0, action="detach", app_id=0)

    def test_attach_requires_profile(self):
        with pytest.raises(ValueError, match="profile"):
            TenancyEvent(cycle=100, action="attach")

    def test_detach_requires_app_id(self):
        with pytest.raises(ValueError, match="app_id"):
            TenancyEvent(cycle=100, action="detach")


class TestCoreSplitValidation:
    def test_multi_app_under_allocation_rejected(self, small_cfg):
        apps = [app_by_abbr("BLK"), app_by_abbr("TRD")]
        with pytest.raises(ValueError, match="under-allocates"):
            Simulator(small_cfg, apps, core_split=(1, 0))

    def test_single_app_under_allocation_allowed(self, small_cfg):
        # Alone-profile runs deliberately use half the GPU.
        sim = Simulator(small_cfg, [app_by_abbr("BLK")], core_split=(1,))
        assert len(sim.cores_of_app[0]) == 1

    def test_default_split_uses_every_core(self, medium_cfg):
        apps = [app_by_abbr(a) for a in ("BLK", "TRD", "LUD")]
        sim = Simulator(medium_cfg, apps)
        counts = [len(sim.cores_of_app[a]) for a in (0, 1, 2)]
        assert counts == [3, 3, 2]


def _churn_events():
    return (
        TenancyEvent(cycle=3000, action="attach", profile=app_by_abbr("LUD")),
        TenancyEvent(cycle=5000, action="detach", app_id=0),
    )


class TestEngineChurn:
    def _run(self, medium_cfg, controller=None):
        sim = Simulator(
            medium_cfg,
            [app_by_abbr("BLK"), app_by_abbr("TRD")],
            controller=controller,
            seed=7,
            arrivals=_churn_events(),
        )
        result = sim.run(6000, warmup=1500, initial_tlp={0: 8, 1: 8})
        return sim, result

    def test_roster_timeline_records_both_events(self, medium_cfg):
        _sim, result = self._run(medium_cfg)
        assert [r["event"] for r in result.roster] == ["attach", "detach"]
        attach, detach = result.roster
        assert attach == {
            "cycle": 3000.0,
            "event": "attach",
            "app": 2,
            "abbr": "LUD",
            "roster": [0, 1, 2],
            "cores": [3, 3, 2],
        }
        assert detach["roster"] == [1, 2]
        assert detach["cores"] == [4, 4]

    def test_cores_rebound_to_survivors(self, medium_cfg):
        sim, _result = self._run(medium_cfg)
        assert len(sim.cores_of_app[0]) == 0
        assert len(sim.cores_of_app[1]) == 4
        assert len(sim.cores_of_app[2]) == 4
        assert all(c.app_id in (1, 2) for c in sim.cores)
        assert sim.live_apps == [1, 2]

    def test_detached_app_leaves_actuator_state(self, medium_cfg):
        sim, result = self._run(medium_cfg)
        assert 0 not in sim.current_tlp
        assert result.final_tlp.get(0) is None or 0 not in result.final_tlp
        # Late actuations aimed at the departed app are silently ignored.
        sim.set_tlp(0, 4)
        assert 0 not in sim.current_tlp

    def test_arrival_starts_at_max_tlp(self, medium_cfg):
        sim, _result = self._run(medium_cfg)
        assert sim.current_tlp[2] == sim.config.max_tlp

    def test_windows_never_straddle_a_roster_change(self, medium_cfg):
        _sim, result = self._run(medium_cfg)
        churn_cycles = [r["cycle"] for r in result.roster]
        cuts = [cut for cut, _w in result.windows]
        assert all(c in cuts for c in churn_cycles)
        prev = None
        for cut in cuts:
            if prev is not None:
                assert not any(prev < c < cut for c in churn_cycles)
            prev = cut

    def test_attach_beyond_capacity_rejected(self, small_cfg):
        sim = Simulator(small_cfg, [app_by_abbr("BLK"), app_by_abbr("TRD")])
        with pytest.raises(ValueError, match="occupy all"):
            sim.tenancy.attach(app_by_abbr("LUD"), 0)

    def test_detach_last_app_rejected(self, small_cfg):
        sim = Simulator(small_cfg, [app_by_abbr("BLK")])
        with pytest.raises(ValueError, match="last live application"):
            sim.tenancy.detach(0, 0)

    def test_detach_unknown_app_rejected(self, small_cfg):
        sim = Simulator(small_cfg, [app_by_abbr("BLK"), app_by_abbr("TRD")])
        with pytest.raises(ValueError, match="not live"):
            sim.tenancy.detach(7, 0)


class TestClosedSystemIdentity:
    """A run with an empty arrival schedule is the closed system."""

    _FIELDS = (
        "insts", "l1_accesses", "l1_misses", "l2_accesses", "l2_misses",
        "dram_lines", "mem_requests", "mem_latency_sum",
    )

    def test_empty_arrivals_is_bit_identical(self, small_cfg):
        plain = run_small_pair(small_cfg, "BLK", "TRD")
        with_arrivals = run_small_pair(small_cfg, "BLK", "TRD", arrivals=())
        assert with_arrivals.roster == []
        assert _result_to_dict(plain) == _result_to_dict(with_arrivals)

    def test_closed_roster_key_is_omitted(self, small_cfg):
        result = run_small_pair(small_cfg, "BLK", "TRD")
        assert "roster" not in _result_to_dict(result)


class _Snapshotting(StaticController):
    """Static controller that snapshots cumulative counters at every
    window cut *and* every roster change, so conservation can be checked
    across churn boundaries."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.snaps = []

    def _snap(self, sim, now):
        self.snaps.append(
            (float(now), {a: s.copy() for a, s in sim.collector.apps.items()})
        )

    def on_window(self, sim, now, windows):
        super().on_window(sim, now, windows)
        self._snap(sim, now)

    def on_attach(self, sim, now, app_id):
        self._snap(sim, now)

    def on_detach(self, sim, now, app_id):
        self._snap(sim, now)


class TestOpenWindowConservation:
    """Extends TestWindowConservation (test_engine.py) across churn."""

    def _run(self, medium_cfg):
        ctrl = _Snapshotting(combo={0: 8, 1: 8}, sample_period=500)
        sim = Simulator(
            medium_cfg,
            [app_by_abbr("BLK"), app_by_abbr("TRD")],
            controller=ctrl,
            seed=5,
            arrivals=_churn_events(),
        )
        result = sim.run(6000, warmup=1500, initial_tlp={0: 8, 1: 8})
        return sim, result, ctrl.snaps

    def test_window_insts_sum_to_cumulative_across_churn(self, medium_cfg):
        _sim, result, snaps = self._run(medium_cfg)
        last_cut, last_snap = max(snaps, key=lambda s: s[0])
        for app, stats in last_snap.items():
            total = sum(
                w[app].insts
                for cut, w in result.windows
                if cut <= last_cut and app in w
            )
            assert total == stats.insts

    def test_counters_monotone_across_roster_changes(self, medium_cfg):
        _sim, _result, snaps = self._run(medium_cfg)
        prev = None
        for _now, snap in snaps:
            if prev is not None:
                for app in prev:
                    if app not in snap:
                        continue
                    for f in TestClosedSystemIdentity._FIELDS:
                        assert getattr(snap[app], f) >= getattr(prev[app], f)
            prev = snap

    def test_arrival_counters_start_from_zero(self, medium_cfg):
        _sim, _result, snaps = self._run(medium_cfg)
        first_with_2 = next(snap for _now, snap in snaps if 2 in snap)
        # The attach-time snapshot runs before app 2 executes anything.
        assert first_with_2[2].insts == 0


class TestArrivalSchedule:
    def _apps(self, *abbrs):
        return tuple(app_by_abbr(a) for a in abbrs)

    def test_closed_schedule(self):
        sched = ArrivalSchedule.closed(self._apps("BLK", "TRD"))
        assert sched.is_closed
        assert sched.events == ()

    def test_empty_initial_rejected(self):
        with pytest.raises(ValueError, match="at least one initial"):
            ArrivalSchedule(initial=())

    def test_unsorted_events_rejected(self):
        events = (
            TenancyEvent(cycle=500, action="detach", app_id=0),
            TenancyEvent(cycle=100, action="detach", app_id=1),
        )
        with pytest.raises(ValueError, match="cycle order"):
            ArrivalSchedule(initial=self._apps("BLK"), events=events)

    def _seeded(self, seed=11, **kwargs):
        defaults = dict(
            max_cycles=200_000,
            seed=seed,
            mean_interarrival=20_000,
            mean_lifetime=40_000,
            max_live=3,
            min_live=1,
        )
        defaults.update(kwargs)
        return ArrivalSchedule.seeded(
            self._apps("BLK", "TRD"),
            self._apps("LUD", "BFS"),
            **defaults,
        )

    def test_same_seed_same_trace(self):
        a, b = self._seeded(seed=11), self._seeded(seed=11)
        assert a == b

    def test_different_seed_different_trace(self):
        assert self._seeded(seed=11) != self._seeded(seed=12)

    def test_seeded_trace_has_churn_in_both_directions(self):
        sched = self._seeded()
        actions = {ev.action for ev in sched.events}
        assert actions == {"attach", "detach"}
        assert not sched.is_closed

    def test_events_sorted_and_within_horizon(self):
        sched = self._seeded()
        cycles = [ev.cycle for ev in sched.events]
        assert cycles == sorted(cycles)
        assert all(0 < c < 200_000 for c in cycles)

    def test_roster_bounds_respected(self):
        sched = self._seeded(min_live=2, max_live=3)
        live = set(range(2))
        next_id = 2
        for ev in sched.events:
            if ev.action == "attach":
                live.add(next_id)
                next_id += 1
            else:
                live.discard(ev.app_id)
            assert 2 <= len(live) <= 3

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="min_live"):
            self._seeded(min_live=0)
        with pytest.raises(ValueError, match="exceeds max_live"):
            self._seeded(max_live=1)
        with pytest.raises(ValueError, match="positive"):
            self._seeded(mean_interarrival=0)

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError, match="candidate"):
            ArrivalSchedule.seeded(
                self._apps("BLK"),
                (),
                max_cycles=1000,
                seed=1,
                mean_interarrival=100,
                mean_lifetime=100,
                max_live=2,
            )


class TestPolicyRegistry:
    def test_builtin_policies_available(self):
        names = available_policies()
        for expected in (
            "pbs-ws", "pbs-fi", "pbs-hs", "dyncta", "ccws", "modbypass",
            "static",
        ):
            assert expected in names

    def test_make_policy_builds_a_controller(self):
        ctrl = make_policy("pbs-ws", n_apps=2, sample_period=500)
        assert ctrl.n_apps == 2
        assert hasattr(ctrl, "on_window")
        assert hasattr(ctrl, "on_attach")
        assert hasattr(ctrl, "on_detach")

    def test_unknown_policy_lists_available(self):
        with pytest.raises(KeyError, match="pbs-ws"):
            make_policy("no-such-policy")

    def test_duplicate_registration_rejected(self):
        factory = get_policy("static")
        # Re-registering the same object is an idempotent no-op...
        assert register_policy("static", factory) is factory
        # ...but a different factory under a taken name is an error.
        with pytest.raises(ValueError, match="already registered"):
            register_policy("static", get_policy("dyncta"))

    def test_all_registered_factories_pickle(self):
        for name in available_policies():
            factory = get_policy(name)
            assert pickle.loads(pickle.dumps(factory)) is factory


class TestOpenSimJob:
    def _job(self, small_cfg, tag=None):
        events = (
            TenancyEvent(cycle=3000, action="attach", profile=app_by_abbr("LUD")),
        )
        return OpenSimJob(
            config=small_cfg,
            initial=(app_by_abbr("BLK"),),
            events=events,
            policy="static",
            cycles=5000,
            warmup=1500,
            policy_kwargs=(("combo", None),),
            seed=9,
            tag=tag,
        )

    def test_job_is_picklable(self, small_cfg):
        job = self._job(small_cfg)
        assert pickle.loads(pickle.dumps(job)) == job

    def test_serial_vs_pooled_identity(self, small_cfg):
        job = self._job(small_cfg)
        serial = run_open_sim_job(job)
        (pooled,) = run_jobs(run_open_sim_job, [job], n_jobs=2)
        assert _result_to_dict(serial) == _result_to_dict(pooled)
        assert [r["event"] for r in pooled.roster] == ["attach"]
