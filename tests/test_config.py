"""Tests for repro.config: presets, validation, derived quantities."""

import pytest

from repro.config import (
    MAX_TLP,
    TLP_LEVELS,
    CacheGeometry,
    DRAMTimings,
    GPUConfig,
    medium_config,
    paper_config,
    small_config,
)


class TestTLPLevels:
    def test_eight_levels(self):
        assert len(TLP_LEVELS) == 8

    def test_sixty_four_two_app_combinations(self):
        assert len(TLP_LEVELS) ** 2 == 64

    def test_levels_ascending_and_unique(self):
        assert list(TLP_LEVELS) == sorted(set(TLP_LEVELS))

    def test_max_tlp_is_24(self):
        # 48 warps per core over two schedulers (paper §II)
        assert MAX_TLP == 24
        assert TLP_LEVELS[-1] == MAX_TLP


class TestCacheGeometry:
    def test_sets_and_lines(self):
        geom = CacheGeometry(size_bytes=16 * 1024, assoc=4, line_bytes=128)
        assert geom.n_sets == 32
        assert geom.n_lines == 128

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(size_bytes=1000, assoc=4, line_bytes=128)

    def test_l2_slice_geometry(self):
        geom = CacheGeometry(size_bytes=256 * 1024, assoc=16)
        assert geom.n_sets == 128
        assert geom.n_lines == 2048


class TestDRAMTimings:
    def test_row_miss_slower_than_row_hit(self):
        t = DRAMTimings()
        assert t.row_miss_service > t.row_hit_service

    def test_row_miss_is_precharge_activate_cas(self):
        t = DRAMTimings()
        assert t.row_miss_service == t.t_rp + t.t_rcd + t.t_cl


class TestGPUConfig:
    def test_paper_preset_matches_table1(self):
        cfg = paper_config()
        assert cfg.n_cores == 24
        assert cfg.n_channels == 6
        assert cfg.l1.size_bytes == 16 * 1024
        assert cfg.l1.assoc == 4
        assert cfg.l2_per_channel.size_bytes == 256 * 1024
        assert cfg.l2_per_channel.assoc == 16
        assert cfg.banks_per_channel == 16
        assert cfg.bank_groups_per_channel == 4
        assert cfg.interleave_bytes == 256
        assert cfg.max_warps_per_core == 48
        assert cfg.schedulers_per_core == 2

    def test_max_tlp_derivation(self):
        cfg = paper_config()
        assert cfg.max_tlp == 24

    def test_peak_bandwidth_in_lines_per_cycle(self):
        cfg = paper_config()
        assert cfg.peak_bw_lines_per_cycle == pytest.approx(
            cfg.n_channels / cfg.dram.burst_cycles
        )

    def test_l2_total(self):
        cfg = paper_config()
        assert cfg.l2_total_bytes == 6 * 256 * 1024

    def test_medium_preserves_cache_per_core_ratio(self):
        paper, medium = paper_config(), medium_config()
        assert (
            paper.l1.size_bytes == medium.l1.size_bytes
        ), "per-core L1 must not change with scale"
        assert paper.n_cores / paper.n_channels == pytest.approx(
            medium.n_cores / medium.n_channels
        ), "cores per memory channel must be preserved"

    def test_small_config_valid(self):
        cfg = small_config()
        assert cfg.n_cores >= 2
        assert cfg.max_tlp == 24

    def test_rejects_odd_core_count(self):
        with pytest.raises(ValueError):
            GPUConfig(n_cores=7)

    def test_rejects_tlp_levels_above_max(self):
        with pytest.raises(ValueError):
            GPUConfig(tlp_levels=(1, 2, 100))

    def test_rejects_indivisible_warps_per_scheduler(self):
        with pytest.raises(ValueError):
            GPUConfig(max_warps_per_core=47)

    def test_with_replaces_fields(self):
        cfg = paper_config().with_(n_cores=12)
        assert cfg.n_cores == 12
        assert cfg.n_channels == paper_config().n_channels

    def test_configs_are_frozen(self):
        cfg = paper_config()
        with pytest.raises(Exception):
            cfg.n_cores = 10  # type: ignore[misc]
